//! Partial-aggregate state shared by the SQL executor and the store's
//! pushed-down grouped scans.
//!
//! The paper's fleet queries ("failure rate by component × day", §4) are
//! aggregate-shaped, so the planner decomposes each aggregate into a
//! per-shard partial — count / exact sum / exact sum-of-squares / min /
//! max — that any number of shards can compute independently and merge.
//! The contract that makes pushdown testable with `assert_eq!` is
//! **order independence**: folding the same multiset of rows through any
//! grouping of [`AggPartial::observe`] and [`AggPartial::merge`] calls
//! yields bitwise-identical finished values. Floating-point `+` is not
//! associative, so sums go through [`ExactSum`], a Kulisch-style
//! fixed-point superaccumulator that represents the exact mathematical
//! sum and rounds once at the end; min/max break `total_cmp` ties with
//! the canonical representation order ([`repr_cmp`]) instead of
//! first-seen order.

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt::Write as _;

/// Base-2³² limbs covering every finite f64 bit position (2045 + 53
/// mantissa bits ≈ 2098) plus headroom for carries and the sign.
const LIMBS: usize = 68;

/// Exact, order-independent sum of f64 values.
///
/// Finite inputs are accumulated as fixed-point integers scaled by
/// 2⁻¹⁰⁷⁴ (a Kulisch accumulator): every finite f64 is an integer
/// multiple of that scale, so addition is exact and therefore associative
/// and commutative. Non-finite inputs set flags combined with IEEE
/// addition semantics: any NaN poisons the sum, `+∞` and `−∞` together
/// yield NaN, otherwise the infinity's sign wins. [`ExactSum::value`]
/// rounds the exact total to the nearest f64 (ties to even), so the
/// result is a pure function of the input multiset — independent of the
/// order or sharding of `add`/`merge` calls.
///
/// Divergences from a running f64 `+=`, both deliberate: a sum that
/// overflows transiently but cancels back into range stays finite, and a
/// sum of `-0.0`s is `+0.0`.
#[derive(Clone)]
pub struct ExactSum {
    /// Signed base-2³² digits, little-endian; only the top limb may hold
    /// a value outside `[0, 2³²)` after renormalization.
    limbs: [i64; LIMBS],
    /// Adds since the last renormalization (bounds per-limb magnitude).
    pending: u32,
    /// Saw a NaN.
    nan: bool,
    /// Saw `+∞`.
    pos_inf: bool,
    /// Saw `−∞`.
    neg_inf: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum {
            limbs: [0; LIMBS],
            pending: 0,
            nan: false,
            pos_inf: false,
            neg_inf: false,
        }
    }
}

impl std::fmt::Debug for ExactSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactSum")
            .field("value", &self.value())
            .finish()
    }
}

impl PartialEq for ExactSum {
    fn eq(&self, other: &Self) -> bool {
        self.value().to_bits() == other.value().to_bits()
    }
}

impl ExactSum {
    /// Empty sum (`value()` is `+0.0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            self.nan = true;
            return;
        }
        if x.is_infinite() {
            if x > 0.0 {
                self.pos_inf = true;
            } else {
                self.neg_inf = true;
            }
            return;
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let be = ((bits >> 52) & 0x7ff) as u32;
        let frac = bits & ((1u64 << 52) - 1);
        // value = mant × 2^(off − 1074); subnormals share off = 0.
        let (mant, off) = if be == 0 {
            (frac, 0usize)
        } else {
            (frac | (1 << 52), (be - 1) as usize)
        };
        if mant == 0 {
            return; // ±0.0 contributes nothing
        }
        let mut v = (mant as u128) << (off % 32);
        let mut i = off / 32;
        while v != 0 {
            let chunk = (v & 0xffff_ffff) as i64;
            if neg {
                self.limbs[i] -= chunk;
            } else {
                self.limbs[i] += chunk;
            }
            v >>= 32;
            i += 1;
        }
        self.pending += 1;
        if self.pending >= 1 << 30 {
            self.renorm();
        }
    }

    /// Fold another sum into this one. Exact: equivalent to having added
    /// every input of `other` directly.
    pub fn merge(&mut self, other: &ExactSum) {
        self.nan |= other.nan;
        self.pos_inf |= other.pos_inf;
        self.neg_inf |= other.neg_inf;
        self.renorm();
        for (a, b) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            *a += *b;
        }
        self.renorm();
    }

    /// Carry-propagate so every limb but the top is in `[0, 2³²)`; the
    /// top limb keeps the signed overflow.
    fn renorm(&mut self) {
        let mut carry = 0i64;
        for i in 0..LIMBS {
            let t = self.limbs[i] + carry;
            if i == LIMBS - 1 {
                self.limbs[i] = t;
            } else {
                let low = t & 0xffff_ffff;
                carry = (t - low) >> 32;
                self.limbs[i] = low;
            }
        }
        self.pending = 0;
    }

    /// The sum, rounded once to the nearest f64 (ties to even).
    pub fn value(&self) -> f64 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return f64::NAN;
        }
        if self.pos_inf {
            return f64::INFINITY;
        }
        if self.neg_inf {
            return f64::NEG_INFINITY;
        }
        // Canonical magnitude digits + sign.
        let mut d = self.limbs;
        let mut carry = 0i64;
        for x in d.iter_mut() {
            let t = *x + carry;
            let low = t & 0xffff_ffff;
            carry = (t - low) >> 32;
            *x = low;
        }
        // |sum| < 2^(32·(LIMBS−1)), so the final carry is the sign.
        let negative = carry < 0;
        if negative {
            // Two's-complement negate over base-2³² digits.
            let mut c = 1i64;
            for x in d.iter_mut() {
                let t = (0xffff_ffff ^ *x) + c;
                *x = t & 0xffff_ffff;
                c = t >> 32;
            }
        }
        let Some(top) = d.iter().rposition(|&x| x != 0) else {
            return 0.0;
        };
        let msb = top * 32 + (31 - (d[top] as u32).leading_zeros() as usize);
        let sign_bit = if negative { 1u64 << 63 } else { 0 };
        if msb <= 52 {
            // Fits a mantissa: exact as (sub)normal, scaled by 2^-1074
            // (both factors below 2^53, so the product is exact).
            let m = (d[0] as u64) | ((d[1] as u64) << 32);
            let mag = (m as f64) * f64::from_bits(1);
            return if negative { -mag } else { mag };
        }
        let get = |i: usize| -> u64 { ((d[i / 32] as u64) >> (i % 32)) & 1 };
        let mut m = 0u64;
        for b in 0..53 {
            m |= get(msb - 52 + b) << b;
        }
        let guard = get(msb - 53) == 1;
        let cut = msb - 53;
        let mut sticky = false;
        for (j, &limb) in d.iter().enumerate() {
            let base = j * 32;
            if base >= cut {
                break;
            }
            let dd = limb as u64;
            if dd == 0 {
                continue;
            }
            if base + 32 <= cut || dd & ((1u64 << (cut - base)) - 1) != 0 {
                sticky = true;
                break;
            }
        }
        let mut e = msb;
        if guard && (sticky || m & 1 == 1) {
            m += 1;
            if m == 1 << 53 {
                m >>= 1;
                e += 1;
            }
        }
        let unbiased = e as i64 - 1074;
        if unbiased > 1023 {
            return if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        f64::from_bits(sign_bit | (((unbiased + 1023) as u64) << 52) | (m & ((1 << 52) - 1)))
    }
}

/// Deterministic tie-break for values that compare equal under
/// [`Value::total_cmp`] but differ in representation — the only such pair
/// is an integer and its exact float image (e.g. `Int(1)` vs
/// `Float(1.0)`), possibly nested in lists/maps. MIN/MAX take the
/// extremum under the lexicographic order `(total_cmp, repr_cmp)`, which
/// is a pure function of the input multiset, so parallel partials and the
/// sequential executor pick the same representative.
pub fn repr_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::List(_) => 5,
            Value::Map(_) => 6,
        }
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.to_bits().cmp(&y.to_bits()),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::List(x), Value::List(y)) => {
            for (i, j) in x.iter().zip(y.iter()) {
                let c = repr_cmp(i, j);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((ka, va), (kb, vb)) in x.iter().zip(y.iter()) {
                let c = ka.cmp(kb).then_with(|| repr_cmp(va, vb));
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

/// `(total_cmp, repr_cmp)` — the total order MIN/MAX minimize/maximize.
fn canon_cmp(a: &Value, b: &Value) -> Ordering {
    a.total_cmp(b).then_with(|| repr_cmp(a, b))
}

/// What one pushed-down aggregate reads from each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggInput {
    /// `COUNT(*)`: every row counts, no column read.
    CountStar,
    /// A plain column, by its index in the table schema row.
    Column(usize),
}

/// Mergeable state for one aggregate within one group: enough to finish
/// COUNT/SUM/AVG/MIN/MAX (and, via the sum of squares, future
/// variance-style aggregates) without revisiting rows.
#[derive(Debug, Clone, Default)]
pub struct AggPartial {
    /// Non-null values observed (rows, for `COUNT(*)`).
    pub count: u64,
    /// Exact sum of the numeric view of observed values.
    pub sum: ExactSum,
    /// Exact sum of squares (for future VAR/STDDEV rollups).
    pub sum_sq: ExactSum,
    /// Minimum under `(total_cmp, repr_cmp)`.
    pub min: Option<Value>,
    /// Maximum under `(total_cmp, repr_cmp)`.
    pub max: Option<Value>,
}

/// Structural equality with bitwise float comparison (`repr_cmp ==
/// Equal`), so states holding NaN still compare equal to themselves —
/// the equivalence the pushdown tests assert.
impl PartialEq for AggPartial {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.sum_sq == other.sum_sq
            && opt_repr_eq(&self.min, &other.min)
            && opt_repr_eq(&self.max, &other.max)
    }
}

/// `repr_cmp`-based equality over optional values (see [`AggPartial`]'s
/// `PartialEq`).
fn opt_repr_eq(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => repr_cmp(x, y) == Ordering::Equal,
        _ => false,
    }
}

impl AggPartial {
    /// Fresh, empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one value in. Nulls are skipped (SQL aggregate semantics).
    pub fn observe(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum.add(x);
            self.sum_sq.add(x * x);
        }
        match &self.min {
            Some(m) if canon_cmp(v, m) != Ordering::Less => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if canon_cmp(v, m) != Ordering::Greater => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Fold one row in for `COUNT(*)` (no column value involved).
    pub fn observe_count_star(&mut self) {
        self.count += 1;
    }

    /// Fold another partial in; equivalent to having observed all of its
    /// inputs directly, in any order.
    pub fn merge(&mut self, other: &AggPartial) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.sum_sq.merge(&other.sum_sq);
        if let Some(v) = &other.min {
            match &self.min {
                Some(m) if canon_cmp(v, m) != Ordering::Less => {}
                _ => self.min = Some(v.clone()),
            }
        }
        if let Some(v) = &other.max {
            match &self.max {
                Some(m) if canon_cmp(v, m) != Ordering::Greater => {}
                _ => self.max = Some(v.clone()),
            }
        }
    }
}

/// One group's partial state as produced by a store's grouped scan. A
/// store may return several partials for the same key (e.g. one per
/// shard); the executor merges them by canonical key.
#[derive(Debug, Clone)]
pub struct GroupPartial {
    /// The GROUP BY column values.
    pub key: Vec<Value>,
    /// Smallest run id that contributed — the executor orders merged
    /// groups by this, reproducing the sequential first-seen order.
    pub first_id: u64,
    /// One partial per requested aggregate, in request order.
    pub aggs: Vec<AggPartial>,
}

/// Structural equality with bitwise float comparison, like
/// [`AggPartial`]'s `PartialEq` (group keys may hold NaN metric values).
impl PartialEq for GroupPartial {
    fn eq(&self, other: &Self) -> bool {
        self.first_id == other.first_id
            && self.key.len() == other.key.len()
            && self
                .key
                .iter()
                .zip(other.key.iter())
                .all(|(a, b)| repr_cmp(a, b) == Ordering::Equal)
            && self.aggs == other.aggs
    }
}

impl GroupPartial {
    /// Fresh state for a group first seen in run `first_id`, with one
    /// empty partial per requested aggregate.
    pub fn new(key: Vec<Value>, first_id: u64, n_aggs: usize) -> Self {
        GroupPartial {
            key,
            first_id,
            aggs: vec![AggPartial::new(); n_aggs],
        }
    }

    /// Fold another partial for the same group key in.
    pub fn merge(&mut self, other: &GroupPartial) {
        self.first_id = self.first_id.min(other.first_id);
        for (a, b) in self.aggs.iter_mut().zip(other.aggs.iter()) {
            a.merge(b);
        }
    }
}

/// Canonical string key for a row of values, used by hashed DISTINCT and
/// group-by hashing.
///
/// Two rows get the same key iff elementwise `Value::loose_eq` holds
/// (i.e. `total_cmp == Equal`): cross-type comparisons are never equal
/// except the numeric interleave, where an integer-valued float that
/// round-trips through `i64` exactly shares the integer's key and any
/// other float (NaNs, -0.0, fractional) keys on its exact bits. The one
/// divergence from pairwise `loose_eq` is the regime above 2^53 where
/// float precision makes `loose_eq` non-transitive; the hashed key is
/// deterministic there.
pub fn canonical_row_key(row: &[Value]) -> String {
    let mut key = String::with_capacity(row.len() * 8);
    for v in row {
        canonical_value_key(v, &mut key);
    }
    key
}

/// Append one value's canonical key (see [`canonical_row_key`]).
pub fn canonical_value_key(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("n;"),
        Value::Bool(b) => {
            let _ = write!(out, "b{};", u8::from(*b));
        }
        Value::Int(i) => {
            let _ = write!(out, "i{i};");
        }
        Value::Float(f) => {
            // `total_cmp` compares Int × Float by converting the int to
            // f64; a float is loose-equal to an int iff it is that int's
            // exact f64 image, i.e. iff it survives the i64 round-trip
            // bit-for-bit (rules out NaN, -0.0, fractions, out-of-range).
            let i = *f as i64;
            if (i as f64).to_bits() == f.to_bits() {
                let _ = write!(out, "i{i};");
            } else {
                let _ = write!(out, "f{:x};", f.to_bits());
            }
        }
        Value::Str(s) => {
            let _ = write!(out, "s{}:{s};", s.len());
        }
        Value::List(items) => {
            let _ = write!(out, "l{}[", items.len());
            for item in items {
                canonical_value_key(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            let _ = write!(out, "m{}{{", entries.len());
            for (k, val) in entries {
                let _ = write!(out, "s{}:{k};", k.len());
                canonical_value_key(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(vals: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &v in vals {
            s.add(v);
        }
        s.value()
    }

    #[test]
    fn exact_sum_matches_f64_on_exact_cases() {
        assert_eq!(sum_of(&[]).to_bits(), 0.0f64.to_bits());
        assert_eq!(sum_of(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(sum_of(&[1.5, -0.5]), 1.0);
        assert_eq!(sum_of(&[-1.0, -2.0]), -3.0);
        // Smallest subnormal survives.
        let tiny = f64::from_bits(1);
        assert_eq!(sum_of(&[tiny]).to_bits(), tiny.to_bits());
        assert_eq!(sum_of(&[tiny, -tiny]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn exact_sum_is_order_independent() {
        let vals = [
            1e308,
            -1e308,
            1e-308,
            0.1,
            0.2,
            -0.30000000000000004,
            3.5e-320,
            1e16,
            1.0,
            -1e16,
            123.456,
            -0.1,
        ];
        let forward = sum_of(&vals);
        let mut rev = vals;
        rev.reverse();
        assert_eq!(forward.to_bits(), sum_of(&rev).to_bits());
        // A rotation, too.
        let mut rot = vals.to_vec();
        rot.rotate_left(5);
        assert_eq!(forward.to_bits(), sum_of(&rot).to_bits());
    }

    #[test]
    fn exact_sum_merge_equals_sequential() {
        let vals = [0.1, 0.2, 0.3, 1e100, -1e100, 7.25, -0.4];
        let seq = sum_of(&vals);
        for split in 0..=vals.len() {
            let mut a = ExactSum::new();
            let mut b = ExactSum::new();
            for &v in &vals[..split] {
                a.add(v);
            }
            for &v in &vals[split..] {
                b.add(v);
            }
            a.merge(&b);
            assert_eq!(a.value().to_bits(), seq.to_bits(), "split at {split}");
        }
    }

    #[test]
    fn exact_sum_cancellation_is_exact() {
        // Running f64 += would lose the 1.0 entirely.
        assert_eq!(sum_of(&[1e100, 1.0, -1e100]), 1.0);
    }

    #[test]
    fn exact_sum_rounds_ties_to_even() {
        let two53 = 9007199254740992.0; // 2^53
        assert_eq!(sum_of(&[two53, 1.0]), two53, "tie rounds to even");
        assert_eq!(
            sum_of(&[two53, 1.0, f64::from_bits(1)]),
            two53 + 2.0,
            "sticky breaks the tie up"
        );
        assert_eq!(sum_of(&[two53, 2.0]), two53 + 2.0);
    }

    #[test]
    fn exact_sum_nonfinite_flags() {
        assert!(sum_of(&[f64::NAN, 1.0]).is_nan());
        assert_eq!(sum_of(&[f64::INFINITY, -1e308]), f64::INFINITY);
        assert_eq!(sum_of(&[f64::NEG_INFINITY, 1.0]), f64::NEG_INFINITY);
        assert!(sum_of(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
    }

    #[test]
    fn exact_sum_overflow_to_infinity() {
        assert_eq!(sum_of(&[1e308, 1e308]), f64::INFINITY);
        assert_eq!(sum_of(&[-1e308, -1e308]), f64::NEG_INFINITY);
        // Transient overflow that cancels stays finite (exactness).
        assert_eq!(sum_of(&[1e308, 1e308, -1e308]), 1e308);
    }

    #[test]
    fn exact_sum_negative_zero_inputs_yield_positive_zero() {
        assert_eq!(sum_of(&[-0.0, -0.0]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn partial_observe_merge_equivalence() {
        let vals: Vec<Value> = vec![
            Value::Int(3),
            Value::Float(3.0),
            Value::Null,
            Value::Float(0.1),
            Value::Int(-2),
            Value::Float(f64::NAN),
        ];
        let mut seq = AggPartial::new();
        for v in &vals {
            seq.observe(v);
        }
        for split in 0..=vals.len() {
            let mut a = AggPartial::new();
            let mut b = AggPartial::new();
            for v in &vals[..split] {
                a.observe(v);
            }
            for v in &vals[split..] {
                b.observe(v);
            }
            a.merge(&b);
            assert_eq!(a, seq, "split at {split}");
        }
        assert_eq!(seq.count, 5, "null skipped");
        // Int(3) and Float(3.0) tie under total_cmp; repr_cmp breaks the
        // tie the same way regardless of observation order.
        let mut rev = AggPartial::new();
        for v in vals.iter().rev() {
            rev.observe(v);
        }
        assert_eq!(rev, seq, "reverse order picks the same min/max");
    }

    #[test]
    fn repr_cmp_breaks_int_float_ties() {
        assert_eq!(repr_cmp(&Value::Int(1), &Value::Float(1.0)), Ordering::Less);
        assert_eq!(
            repr_cmp(&Value::Float(1.0), &Value::Int(1)),
            Ordering::Greater
        );
        assert_eq!(repr_cmp(&Value::Int(1), &Value::Int(1)), Ordering::Equal);
    }

    #[test]
    fn canonical_keys_agree_with_loose_eq() {
        let a = vec![Value::Int(1), Value::Str("x".into())];
        let b = vec![Value::Float(1.0), Value::Str("x".into())];
        assert_eq!(canonical_row_key(&a), canonical_row_key(&b));
        let c = vec![Value::Float(1.5)];
        let d = vec![Value::Int(1)];
        assert_ne!(canonical_row_key(&c), canonical_row_key(&d));
        // NaN keys on its exact bits: equal to itself, distinct from 0.
        let nan = vec![Value::Float(f64::NAN)];
        assert_eq!(canonical_row_key(&nan), canonical_row_key(&nan.clone()));
        assert_ne!(
            canonical_row_key(&nan),
            canonical_row_key(&[Value::Float(0.0)])
        );
    }
}
