//! Relational view of the store for the SQL layer (§4.2: "users can query
//! the logs and metadata via SQL").
//!
//! Nine virtual tables are exposed: `components`, `component_runs`,
//! `io_pointers`, `metrics`, `summaries` (the live monitoring plane's
//! per-(component, metric) streaming summaries), `rollups` (compaction
//! rollups of aged-out runs), `events` (the observability journal),
//! `incidents`, and `diagnoses` (ranked root-cause hypotheses). [`scan`]
//! materializes a table as rows of [`Value`]s in the column order given by
//! [`table_schema`].

use crate::error::{Result, StoreError};
use crate::event::{DiagnosisRecord, EventFilter, IncidentRecord, ObservabilityEvent};
use crate::record::{ComponentRunRecord, MetricRecord, RunId};
use crate::scan::RunFilter;
use crate::store::Store;
use crate::value::Value;
use mltrace_metrics::MonitorSummary;

/// A materialized row.
pub type Row = Vec<Value>;

/// The virtual tables exposed to SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table {
    /// Component metadata.
    Components,
    /// Component run logs.
    ComponentRuns,
    /// I/O pointers.
    IoPointers,
    /// Metric points.
    Metrics,
    /// Live monitoring-plane summaries (one row per observed
    /// `(component, metric)` key).
    Summaries,
    /// Compaction rollups of runs aged out by retention.
    Rollups,
    /// The observability journal (run lifecycle, triggers, alerts, WAL).
    Events,
    /// Incident lifecycle records folded from Page-tier alerts.
    Incidents,
    /// Ranked root-cause hypotheses from the diagnosis engine (one row per
    /// (incident key, rank)).
    Diagnoses,
}

impl Table {
    /// Resolve a (case-insensitive) table name.
    pub fn parse(name: &str) -> Option<Table> {
        match name.to_ascii_lowercase().as_str() {
            "components" => Some(Table::Components),
            "component_runs" | "runs" => Some(Table::ComponentRuns),
            "io_pointers" | "iopointers" => Some(Table::IoPointers),
            "metrics" => Some(Table::Metrics),
            "summaries" | "monitor" => Some(Table::Summaries),
            "rollups" => Some(Table::Rollups),
            "events" | "journal" => Some(Table::Events),
            "incidents" => Some(Table::Incidents),
            "diagnoses" => Some(Table::Diagnoses),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Table::Components => "components",
            Table::ComponentRuns => "component_runs",
            Table::IoPointers => "io_pointers",
            Table::Metrics => "metrics",
            Table::Summaries => "summaries",
            Table::Rollups => "rollups",
            Table::Events => "events",
            Table::Incidents => "incidents",
            Table::Diagnoses => "diagnoses",
        }
    }
}

/// Column names of a table, in scan order.
pub fn table_schema(table: Table) -> &'static [&'static str] {
    match table {
        Table::Components => &["name", "description", "owner", "tags"],
        Table::ComponentRuns => &[
            "id",
            "component",
            "start_ms",
            "end_ms",
            "duration_ms",
            "status",
            "inputs",
            "outputs",
            "code_hash",
            "notes",
            "dependencies",
            "trigger_failures",
        ],
        Table::IoPointers => &["name", "ptype", "flag", "created_ms", "artifact"],
        Table::Metrics => &["component", "run_id", "name", "value", "ts_ms"],
        Table::Summaries => &[
            "component",
            "metric",
            "window",
            "count",
            "mean",
            "p50",
            "p95",
            "p99",
            "null_rate",
            "drift_score",
            "drift_method",
        ],
        Table::Rollups => &[
            "component",
            "window_start_ms",
            "window_end_ms",
            "run_count",
            "failed_count",
            "mean_duration_ms",
        ],
        Table::Events => &[
            "id",
            "ts_ms",
            "kind",
            "severity",
            "component",
            "run_id",
            "detail",
        ],
        Table::Incidents => &[
            "key",
            "state",
            "severity",
            "subject",
            "opened_ms",
            "last_fire_ms",
            "resolved_ms",
            "fire_count",
            "suppressed_count",
            "burn_ms",
            "detail",
        ],
        Table::Diagnoses => &[
            "incident_key",
            "rank",
            "suspect",
            "evidence_kind",
            "score",
            "onset_ms",
        ],
    }
}

/// Materialize all rows of a table.
pub fn scan(store: &dyn Store, table: Table) -> Result<Vec<Row>> {
    match table {
        Table::Components => Ok(store
            .components()?
            .into_iter()
            .map(|c| {
                vec![
                    Value::from(c.name),
                    Value::from(c.description),
                    Value::from(c.owner),
                    Value::from(c.tags),
                ]
            })
            .collect()),
        Table::ComponentRuns => scan_runs_rows(store, &RunFilter::default(), None),
        Table::IoPointers => Ok(store
            .io_pointers()?
            .into_iter()
            .map(|p| {
                vec![
                    Value::from(p.name),
                    Value::from(p.ptype.name()),
                    Value::from(p.flag),
                    Value::from(p.created_ms),
                    Value::from(p.artifact),
                ]
            })
            .collect()),
        Table::Metrics => scan_metrics_rows(store, None, None),
        Table::Summaries => scan_summary_rows(store, None, None),
        Table::Rollups => {
            let mut rows = Vec::new();
            for comp in store.components()? {
                for s in store.summaries(&comp.name)? {
                    rows.push(vec![
                        Value::from(s.component),
                        Value::from(s.window_start_ms),
                        Value::from(s.window_end_ms),
                        Value::from(s.run_count),
                        Value::from(s.failed_count),
                        Value::from(s.mean_duration_ms),
                    ]);
                }
            }
            Ok(rows)
        }
        Table::Events => scan_events_rows(store, &EventFilter::all(), None),
        Table::Incidents => Ok(store.incidents()?.iter().map(incident_row).collect()),
        Table::Diagnoses => scan_diagnosis_rows(store, None, None),
    }
}

/// Convert one journal event into its `events` row (the column order of
/// [`table_schema`]). The structured payload is not a column: SQL filters
/// on the typed fields; the payload travels with the record for trace
/// export and `tail`.
pub fn event_row(e: &ObservabilityEvent) -> Row {
    vec![
        Value::from(e.id.0),
        Value::from(e.ts_ms),
        Value::from(e.kind.name()),
        Value::from(e.severity.name()),
        Value::from(e.component.clone()),
        e.run_id
            .map(|RunId(i)| Value::from(i))
            .unwrap_or(Value::Null),
        Value::from(e.detail.clone()),
    ]
}

/// Convert one incident into its `incidents` row.
pub fn incident_row(i: &IncidentRecord) -> Row {
    vec![
        Value::from(i.key.clone()),
        Value::from(i.state.name()),
        Value::from(i.severity.name()),
        Value::from(i.subject.clone()),
        Value::from(i.opened_ms),
        Value::from(i.last_fire_ms),
        i.resolved_ms.map(Value::from).unwrap_or(Value::Null),
        Value::from(i.fire_count),
        Value::from(i.suppressed_count),
        Value::from(i.burn_ms),
        Value::from(i.detail.clone()),
    ]
}

/// Convert one diagnosis row into its `diagnoses` row. The score is
/// always finite by the engine's contract, but a non-finite value would
/// surface as NULL (the `summaries` discipline) rather than a NaN float.
pub fn diagnosis_row(d: &DiagnosisRecord) -> Row {
    vec![
        Value::from(d.incident_key.clone()),
        Value::from(d.rank),
        Value::from(d.suspect.clone()),
        Value::from(d.evidence_kind.clone()),
        if d.score.is_finite() {
            Value::Float(d.score)
        } else {
            Value::Null
        },
        Value::from(d.onset_ms),
    ]
}

/// Materialize `diagnoses` rows, optionally restricted to one incident
/// key and/or one suspect (the pushdown the planner extracts from
/// equality conjuncts). Rows come back in (incident key, rank) order.
pub fn scan_diagnosis_rows(
    store: &dyn Store,
    incident_key: Option<&str>,
    suspect: Option<&str>,
) -> Result<Vec<Row>> {
    let all = store.diagnoses()?;
    let scanned = all.len() as u64;
    let rows: Vec<Row> = all
        .iter()
        .filter(|d| incident_key.is_none_or(|k| d.incident_key == k))
        .filter(|d| suspect.is_none_or(|s| d.suspect == s))
        .map(diagnosis_row)
        .collect();
    if let Some(t) = store.telemetry() {
        t.add("query.rows_scanned", scanned);
        t.add("query.rows_returned", rows.len() as u64);
    }
    Ok(rows)
}

/// Materialize `events` rows through the journal's filtered scan. The
/// store-side scan already records `query.rows_scanned` /
/// `query.rows_returned`, so this is a pure conversion.
pub fn scan_events_rows(
    store: &dyn Store,
    filter: &EventFilter,
    limit: Option<usize>,
) -> Result<Vec<Row>> {
    Ok(store
        .scan_events(None, filter, limit)?
        .iter()
        .map(event_row)
        .collect())
}

/// Convert one run record into its `component_runs` row (the column order
/// of [`table_schema`]).
pub fn run_row(r: &ComponentRunRecord) -> Row {
    let failures: Vec<String> = r
        .triggers
        .iter()
        .filter(|t| !t.passed)
        .map(|t| t.trigger.clone())
        .collect();
    vec![
        Value::from(r.id.0),
        Value::from(r.component.clone()),
        Value::from(r.start_ms),
        Value::from(r.end_ms),
        Value::from(r.end_ms.saturating_sub(r.start_ms)),
        Value::from(r.status.name()),
        Value::from(r.inputs.clone()),
        Value::from(r.outputs.clone()),
        Value::from(r.code_hash.clone()),
        Value::from(r.notes.clone()),
        Value::List(r.dependencies.iter().map(|d| Value::from(d.0)).collect()),
        Value::from(failures),
    ]
}

/// Extract a single `component_runs` column from a run record without
/// materializing the full row — the grouped partial-aggregate scan reads
/// only the grouped/aggregated columns per record. Must agree with
/// [`run_row`] position for position.
pub fn run_column_value(r: &ComponentRunRecord, idx: usize) -> Value {
    match idx {
        0 => Value::from(r.id.0),
        1 => Value::from(r.component.clone()),
        2 => Value::from(r.start_ms),
        3 => Value::from(r.end_ms),
        4 => Value::from(r.end_ms.saturating_sub(r.start_ms)),
        5 => Value::from(r.status.name()),
        6 => Value::from(r.inputs.clone()),
        7 => Value::from(r.outputs.clone()),
        8 => Value::from(r.code_hash.clone()),
        9 => Value::from(r.notes.clone()),
        10 => Value::List(r.dependencies.iter().map(|d| Value::from(d.0)).collect()),
        11 => {
            let failures: Vec<String> = r
                .triggers
                .iter()
                .filter(|t| !t.passed)
                .map(|t| t.trigger.clone())
                .collect();
            Value::from(failures)
        }
        _ => Value::Null,
    }
}

/// Convert one monitoring-plane summary into its `summaries` row. The
/// `window` column counts *completed* windows; non-finite stats (an empty
/// plane key cannot occur, but quantiles before any finite point can be
/// NaN) surface as NULL rather than a float NaN that no SQL comparison
/// would ever match.
pub fn summary_row(s: &MonitorSummary) -> Row {
    let float = |f: f64| {
        if f.is_finite() {
            Value::Float(f)
        } else {
            Value::Null
        }
    };
    vec![
        Value::from(s.component.clone()),
        Value::from(s.metric.clone()),
        Value::from(s.windows),
        Value::from(s.count),
        float(s.mean),
        float(s.p50),
        float(s.p95),
        float(s.p99),
        float(s.null_rate),
        float(s.drift_score),
        Value::from(s.drift_method.clone()),
    ]
}

/// Materialize `summaries` rows, optionally restricted to one component
/// and/or one metric (the pushdown the planner extracts from equality
/// conjuncts). The plane is in-memory state, so the "scan" is a snapshot
/// of every key followed by the pushed restriction.
pub fn scan_summary_rows(
    store: &dyn Store,
    component: Option<&str>,
    metric: Option<&str>,
) -> Result<Vec<Row>> {
    let all = store.monitor_summaries()?;
    let scanned = all.len() as u64;
    let rows: Vec<Row> = all
        .iter()
        .filter(|s| component.is_none_or(|c| s.component == c))
        .filter(|s| metric.is_none_or(|m| s.metric == m))
        .map(summary_row)
        .collect();
    if let Some(t) = store.telemetry() {
        t.add("query.rows_scanned", scanned);
        t.add("query.rows_returned", rows.len() as u64);
    }
    Ok(rows)
}

/// Convert one metric point into its `metrics` row.
pub fn metric_row(m: &MetricRecord) -> Row {
    vec![
        Value::from(m.component.clone()),
        m.run_id
            .map(|RunId(i)| Value::from(i))
            .unwrap_or(Value::Null),
        Value::from(m.name.clone()),
        Value::from(m.value),
        Value::from(m.ts_ms),
    ]
}

/// Materialize `component_runs` rows through the batched scan, converting
/// only runs that survive `filter` (and `limit`) to [`Value`] rows. With
/// no limit the scan streams in bounded chunks so peak record memory is
/// independent of the match count.
pub fn scan_runs_rows(
    store: &dyn Store,
    filter: &RunFilter,
    limit: Option<usize>,
) -> Result<Vec<Row>> {
    match limit {
        Some(cap) => Ok(store
            .scan_runs(None, filter, Some(cap))?
            .iter()
            .map(run_row)
            .collect()),
        None => {
            let mut rows = Vec::new();
            store.scan_runs_chunked(None, filter, 4096, &mut |batch| {
                rows.extend(batch.iter().map(run_row));
                true
            })?;
            Ok(rows)
        }
    }
}

/// Materialize `metrics` rows, optionally restricted to one component and
/// truncated at `limit` points.
///
/// Mirrors the full scan's registered-components-only semantics: metric
/// points logged for a component that was never registered do not appear,
/// with or without the `component` restriction — a pushed-down
/// `component = 'x'` predicate must not widen the result.
pub fn scan_metrics_rows(
    store: &dyn Store,
    component: Option<&str>,
    limit: Option<usize>,
) -> Result<Vec<Row>> {
    let cap = limit.unwrap_or(usize::MAX);
    let mut rows = Vec::new();
    if cap == 0 {
        return Ok(rows);
    }
    let names: Vec<String> = match component {
        Some(c) => match store.component(c)? {
            Some(rec) => vec![rec.name],
            None => return Ok(rows),
        },
        None => store.components()?.into_iter().map(|c| c.name).collect(),
    };
    let mut scanned = 0u64;
    'outer: for comp in &names {
        for name in store.metric_names(comp)? {
            for m in store.metrics(comp, &name)? {
                scanned += 1;
                rows.push(metric_row(&m));
                if rows.len() >= cap {
                    break 'outer;
                }
            }
        }
    }
    if let Some(t) = store.telemetry() {
        t.add("query.rows_scanned", scanned);
        t.add("query.rows_returned", rows.len() as u64);
    }
    Ok(rows)
}

/// Index of a column in a table's schema, or an error naming the table.
pub fn column_index(table: Table, column: &str) -> Result<usize> {
    table_schema(table)
        .iter()
        .position(|c| c.eq_ignore_ascii_case(column))
        .ok_or_else(|| StoreError::NotFound(format!("column {column} in table {}", table.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, EventSeverity, IncidentState};
    use crate::memory::MemoryStore;
    use crate::record::{
        ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, TriggerOutcomeRecord,
    };

    fn seeded() -> MemoryStore {
        let s = MemoryStore::new();
        let mut c = ComponentRecord::named("etl");
        c.owner = "data-eng".into();
        s.register_component(c).unwrap();
        s.upsert_io_pointer(IoPointerRecord::new("raw.csv", 1))
            .unwrap();
        s.log_run(ComponentRunRecord {
            component: "etl".into(),
            start_ms: 10,
            end_ms: 30,
            outputs: vec!["raw.csv".into()],
            triggers: vec![TriggerOutcomeRecord {
                trigger: "no_nulls".into(),
                phase: "after".into(),
                passed: false,
                detail: "".into(),
                values: Default::default(),
            }],
            ..Default::default()
        })
        .unwrap();
        s.log_metric(MetricRecord {
            component: "etl".into(),
            run_id: None,
            name: "rows".into(),
            value: 5.0,
            ts_ms: 11,
        })
        .unwrap();
        s.log_events(vec![
            ObservabilityEvent::new(EventKind::RunFinished, EventSeverity::Info, 30)
                .component("etl")
                .run(RunId(1)),
            ObservabilityEvent::new(EventKind::AlertFired, EventSeverity::Page, 31)
                .component("etl")
                .detail("null-rate breach"),
        ])
        .unwrap();
        s.upsert_incident(IncidentRecord {
            key: "etl/null-rate".into(),
            state: IncidentState::Open,
            severity: EventSeverity::Page,
            subject: "etl".into(),
            opened_ms: 31,
            last_fire_ms: 31,
            resolved_ms: None,
            fire_count: 1,
            suppressed_count: 0,
            burn_ms: 0,
            detail: "null-rate breach".into(),
        })
        .unwrap();
        s.put_diagnosis(
            "etl/null-rate",
            vec![
                DiagnosisRecord {
                    incident_key: "etl/null-rate".into(),
                    rank: 1,
                    suspect: "etl".into(),
                    evidence_kind: "run_failed".into(),
                    score: 3.0,
                    onset_ms: 10,
                    distance: 0,
                    detail: "run#1 failed".into(),
                },
                DiagnosisRecord {
                    incident_key: "etl/null-rate".into(),
                    rank: 2,
                    suspect: "upstream".into(),
                    evidence_kind: "drift_onset".into(),
                    score: 1.8,
                    onset_ms: 8,
                    distance: 1,
                    detail: "drift onset".into(),
                },
            ],
        )
        .unwrap();
        s
    }

    #[test]
    fn table_parsing_and_names() {
        assert_eq!(Table::parse("RUNS"), Some(Table::ComponentRuns));
        assert_eq!(Table::parse("component_runs"), Some(Table::ComponentRuns));
        assert_eq!(Table::parse("bogus"), None);
        assert_eq!(Table::Metrics.name(), "metrics");
    }

    #[test]
    fn scan_component_runs_has_schema_arity() {
        let s = seeded();
        let rows = scan(&s, Table::ComponentRuns).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), table_schema(Table::ComponentRuns).len());
        let dur_idx = column_index(Table::ComponentRuns, "duration_ms").unwrap();
        assert_eq!(rows[0][dur_idx], Value::Int(20));
        let tf_idx = column_index(Table::ComponentRuns, "trigger_failures").unwrap();
        assert_eq!(rows[0][tf_idx], Value::from(vec!["no_nulls"]));
    }

    #[test]
    fn scan_all_tables() {
        let s = seeded();
        for t in [
            Table::Components,
            Table::ComponentRuns,
            Table::IoPointers,
            Table::Metrics,
            Table::Summaries,
            Table::Rollups,
            Table::Events,
            Table::Incidents,
            Table::Diagnoses,
        ] {
            let rows = scan(&s, t).unwrap();
            for row in &rows {
                assert_eq!(row.len(), table_schema(t).len(), "table {}", t.name());
            }
        }
        assert_eq!(scan(&s, Table::Metrics).unwrap().len(), 1);
        assert_eq!(scan(&s, Table::Events).unwrap().len(), 2);
        assert_eq!(scan(&s, Table::Incidents).unwrap().len(), 1);
        assert_eq!(scan(&s, Table::Diagnoses).unwrap().len(), 2);
    }

    #[test]
    fn diagnoses_table_materializes_and_pushes_down() {
        let s = seeded();
        assert_eq!(Table::parse("diagnoses"), Some(Table::Diagnoses));
        assert_eq!(Table::parse("DIAGNOSES"), Some(Table::Diagnoses));
        let rows = scan(&s, Table::Diagnoses).unwrap();
        assert_eq!(rows.len(), 2);
        let rank_idx = column_index(Table::Diagnoses, "rank").unwrap();
        let suspect_idx = column_index(Table::Diagnoses, "suspect").unwrap();
        let score_idx = column_index(Table::Diagnoses, "score").unwrap();
        assert_eq!(rows[0][rank_idx], Value::Int(1));
        assert_eq!(rows[0][suspect_idx], Value::from("etl"));
        assert_eq!(rows[0][score_idx], Value::Float(3.0));
        // Key/suspect pushdown restricts without widening.
        assert_eq!(
            scan_diagnosis_rows(&s, Some("etl/null-rate"), None)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            scan_diagnosis_rows(&s, Some("etl/null-rate"), Some("upstream")).unwrap(),
            vec![rows[1].clone()]
        );
        assert!(scan_diagnosis_rows(&s, Some("absent"), None)
            .unwrap()
            .is_empty());
        assert!(scan_diagnosis_rows(&s, None, Some("absent"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn summaries_table_reads_the_monitoring_plane() {
        let s = seeded();
        assert_eq!(Table::parse("summaries"), Some(Table::Summaries));
        assert_eq!(Table::parse("MONITOR"), Some(Table::Summaries));
        assert_eq!(Table::parse("rollups"), Some(Table::Rollups));
        // `seeded` logged one point of etl/rows: one plane key, one row.
        let rows = scan(&s, Table::Summaries).unwrap();
        assert_eq!(rows.len(), 1);
        let comp_idx = column_index(Table::Summaries, "component").unwrap();
        let count_idx = column_index(Table::Summaries, "count").unwrap();
        let mean_idx = column_index(Table::Summaries, "mean").unwrap();
        let method_idx = column_index(Table::Summaries, "drift_method").unwrap();
        assert_eq!(rows[0][comp_idx], Value::from("etl"));
        assert_eq!(rows[0][count_idx], Value::Int(1));
        assert_eq!(rows[0][mean_idx], Value::Float(5.0));
        assert_eq!(rows[0][method_idx], Value::from(""));
        // Component/metric pushdown restricts without widening.
        assert_eq!(scan_summary_rows(&s, Some("etl"), None).unwrap().len(), 1);
        assert_eq!(
            scan_summary_rows(&s, Some("etl"), Some("rows")).unwrap(),
            vec![rows[0].clone()]
        );
        assert!(scan_summary_rows(&s, Some("etl"), Some("nope"))
            .unwrap()
            .is_empty());
        assert!(scan_summary_rows(&s, Some("absent"), None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn column_index_case_insensitive_and_errors() {
        assert_eq!(column_index(Table::Components, "OWNER").unwrap(), 2);
        assert!(column_index(Table::Components, "nope").is_err());
    }

    #[test]
    fn scan_runs_rows_filter_and_limit_match_full_scan() {
        let s = seeded();
        for i in 0..5u64 {
            s.log_run(ComponentRunRecord {
                component: if i % 2 == 0 { "etl" } else { "other" }.into(),
                start_ms: 100 + i,
                end_ms: 110 + i,
                ..Default::default()
            })
            .unwrap();
        }
        let all = scan(&s, Table::ComponentRuns).unwrap();
        assert_eq!(
            scan_runs_rows(&s, &RunFilter::default(), None).unwrap(),
            all
        );
        let comp_idx = column_index(Table::ComponentRuns, "component").unwrap();
        let filtered =
            scan_runs_rows(&s, &RunFilter::default().with_component("etl"), None).unwrap();
        let naive: Vec<Row> = all
            .iter()
            .filter(|r| r[comp_idx] == Value::from("etl"))
            .cloned()
            .collect();
        assert_eq!(filtered, naive);
        let limited = scan_runs_rows(&s, &RunFilter::default(), Some(2)).unwrap();
        assert_eq!(limited, all[..2].to_vec());
    }

    #[test]
    fn events_and_incidents_tables_materialize() {
        let s = seeded();
        assert_eq!(Table::parse("events"), Some(Table::Events));
        assert_eq!(Table::parse("JOURNAL"), Some(Table::Events));
        assert_eq!(Table::parse("incidents"), Some(Table::Incidents));
        let rows = scan(&s, Table::Events).unwrap();
        let kind_idx = column_index(Table::Events, "kind").unwrap();
        let run_idx = column_index(Table::Events, "run_id").unwrap();
        assert_eq!(rows[0][kind_idx], Value::from("run_finished"));
        assert_eq!(rows[0][run_idx], Value::Int(1));
        assert_eq!(rows[1][run_idx], Value::Null, "unstamped event is NULL");
        // The filtered scan matches a naive post-filter of the full scan.
        let filtered = scan_events_rows(
            &s,
            &EventFilter::all().with_kind(EventKind::AlertFired),
            None,
        )
        .unwrap();
        let naive: Vec<Row> = rows
            .iter()
            .filter(|r| r[kind_idx] == Value::from("alert_fired"))
            .cloned()
            .collect();
        assert_eq!(filtered, naive);
        assert_eq!(
            scan_events_rows(&s, &EventFilter::all(), Some(1)).unwrap(),
            rows[..1].to_vec()
        );
        let inc = scan(&s, Table::Incidents).unwrap();
        let state_idx = column_index(Table::Incidents, "state").unwrap();
        let resolved_idx = column_index(Table::Incidents, "resolved_ms").unwrap();
        assert_eq!(inc[0][state_idx], Value::from("open"));
        assert_eq!(inc[0][resolved_idx], Value::Null);
    }

    #[test]
    fn scan_metrics_rows_component_pushdown_matches_full_scan() {
        let s = seeded();
        // Metric points for an unregistered component stay invisible,
        // with or without the component restriction.
        s.log_metric(MetricRecord {
            component: "ghost".into(),
            run_id: None,
            name: "m".into(),
            value: 1.0,
            ts_ms: 0,
        })
        .unwrap();
        let all = scan(&s, Table::Metrics).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(scan_metrics_rows(&s, None, None).unwrap(), all);
        assert_eq!(scan_metrics_rows(&s, Some("etl"), None).unwrap(), all);
        assert!(scan_metrics_rows(&s, Some("ghost"), None)
            .unwrap()
            .is_empty());
        assert!(scan_metrics_rows(&s, Some("etl"), Some(0))
            .unwrap()
            .is_empty());
    }
}
