//! Relational view of the store for the SQL layer (§4.2: "users can query
//! the logs and metadata via SQL").
//!
//! Five virtual tables are exposed: `components`, `component_runs`,
//! `io_pointers`, `metrics`, and `summaries`. [`scan`] materializes a table
//! as rows of [`Value`]s in the column order given by [`table_schema`].

use crate::error::{Result, StoreError};
use crate::record::RunId;
use crate::store::Store;
use crate::value::Value;

/// A materialized row.
pub type Row = Vec<Value>;

/// The virtual tables exposed to SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table {
    /// Component metadata.
    Components,
    /// Component run logs.
    ComponentRuns,
    /// I/O pointers.
    IoPointers,
    /// Metric points.
    Metrics,
    /// Compaction summaries.
    Summaries,
}

impl Table {
    /// Resolve a (case-insensitive) table name.
    pub fn parse(name: &str) -> Option<Table> {
        match name.to_ascii_lowercase().as_str() {
            "components" => Some(Table::Components),
            "component_runs" | "runs" => Some(Table::ComponentRuns),
            "io_pointers" | "iopointers" => Some(Table::IoPointers),
            "metrics" => Some(Table::Metrics),
            "summaries" => Some(Table::Summaries),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Table::Components => "components",
            Table::ComponentRuns => "component_runs",
            Table::IoPointers => "io_pointers",
            Table::Metrics => "metrics",
            Table::Summaries => "summaries",
        }
    }
}

/// Column names of a table, in scan order.
pub fn table_schema(table: Table) -> &'static [&'static str] {
    match table {
        Table::Components => &["name", "description", "owner", "tags"],
        Table::ComponentRuns => &[
            "id",
            "component",
            "start_ms",
            "end_ms",
            "duration_ms",
            "status",
            "inputs",
            "outputs",
            "code_hash",
            "notes",
            "dependencies",
            "trigger_failures",
        ],
        Table::IoPointers => &["name", "ptype", "flag", "created_ms", "artifact"],
        Table::Metrics => &["component", "run_id", "name", "value", "ts_ms"],
        Table::Summaries => &[
            "component",
            "window_start_ms",
            "window_end_ms",
            "run_count",
            "failed_count",
            "mean_duration_ms",
        ],
    }
}

/// Materialize all rows of a table.
pub fn scan(store: &dyn Store, table: Table) -> Result<Vec<Row>> {
    match table {
        Table::Components => Ok(store
            .components()?
            .into_iter()
            .map(|c| {
                vec![
                    Value::from(c.name),
                    Value::from(c.description),
                    Value::from(c.owner),
                    Value::from(c.tags),
                ]
            })
            .collect()),
        Table::ComponentRuns => {
            let mut rows = Vec::new();
            for id in store.run_ids()? {
                let Some(r) = store.run(id)? else { continue };
                let failures: Vec<String> = r
                    .triggers
                    .iter()
                    .filter(|t| !t.passed)
                    .map(|t| t.trigger.clone())
                    .collect();
                rows.push(vec![
                    Value::from(r.id.0),
                    Value::from(r.component),
                    Value::from(r.start_ms),
                    Value::from(r.end_ms),
                    Value::from(r.end_ms.saturating_sub(r.start_ms)),
                    Value::from(r.status.name()),
                    Value::from(r.inputs),
                    Value::from(r.outputs),
                    Value::from(r.code_hash),
                    Value::from(r.notes),
                    Value::List(r.dependencies.iter().map(|d| Value::from(d.0)).collect()),
                    Value::from(failures),
                ]);
            }
            Ok(rows)
        }
        Table::IoPointers => Ok(store
            .io_pointers()?
            .into_iter()
            .map(|p| {
                vec![
                    Value::from(p.name),
                    Value::from(p.ptype.name()),
                    Value::from(p.flag),
                    Value::from(p.created_ms),
                    Value::from(p.artifact),
                ]
            })
            .collect()),
        Table::Metrics => {
            let mut rows = Vec::new();
            for comp in store.components()? {
                for name in store.metric_names(&comp.name)? {
                    for m in store.metrics(&comp.name, &name)? {
                        rows.push(vec![
                            Value::from(m.component),
                            m.run_id
                                .map(|RunId(i)| Value::from(i))
                                .unwrap_or(Value::Null),
                            Value::from(m.name),
                            Value::from(m.value),
                            Value::from(m.ts_ms),
                        ]);
                    }
                }
            }
            Ok(rows)
        }
        Table::Summaries => {
            let mut rows = Vec::new();
            for comp in store.components()? {
                for s in store.summaries(&comp.name)? {
                    rows.push(vec![
                        Value::from(s.component),
                        Value::from(s.window_start_ms),
                        Value::from(s.window_end_ms),
                        Value::from(s.run_count),
                        Value::from(s.failed_count),
                        Value::from(s.mean_duration_ms),
                    ]);
                }
            }
            Ok(rows)
        }
    }
}

/// Index of a column in a table's schema, or an error naming the table.
pub fn column_index(table: Table, column: &str) -> Result<usize> {
    table_schema(table)
        .iter()
        .position(|c| c.eq_ignore_ascii_case(column))
        .ok_or_else(|| StoreError::NotFound(format!("column {column} in table {}", table.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use crate::record::{
        ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, TriggerOutcomeRecord,
    };

    fn seeded() -> MemoryStore {
        let s = MemoryStore::new();
        let mut c = ComponentRecord::named("etl");
        c.owner = "data-eng".into();
        s.register_component(c).unwrap();
        s.upsert_io_pointer(IoPointerRecord::new("raw.csv", 1))
            .unwrap();
        s.log_run(ComponentRunRecord {
            component: "etl".into(),
            start_ms: 10,
            end_ms: 30,
            outputs: vec!["raw.csv".into()],
            triggers: vec![TriggerOutcomeRecord {
                trigger: "no_nulls".into(),
                phase: "after".into(),
                passed: false,
                detail: "".into(),
                values: Default::default(),
            }],
            ..Default::default()
        })
        .unwrap();
        s.log_metric(MetricRecord {
            component: "etl".into(),
            run_id: None,
            name: "rows".into(),
            value: 5.0,
            ts_ms: 11,
        })
        .unwrap();
        s
    }

    #[test]
    fn table_parsing_and_names() {
        assert_eq!(Table::parse("RUNS"), Some(Table::ComponentRuns));
        assert_eq!(Table::parse("component_runs"), Some(Table::ComponentRuns));
        assert_eq!(Table::parse("bogus"), None);
        assert_eq!(Table::Metrics.name(), "metrics");
    }

    #[test]
    fn scan_component_runs_has_schema_arity() {
        let s = seeded();
        let rows = scan(&s, Table::ComponentRuns).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), table_schema(Table::ComponentRuns).len());
        let dur_idx = column_index(Table::ComponentRuns, "duration_ms").unwrap();
        assert_eq!(rows[0][dur_idx], Value::Int(20));
        let tf_idx = column_index(Table::ComponentRuns, "trigger_failures").unwrap();
        assert_eq!(rows[0][tf_idx], Value::from(vec!["no_nulls"]));
    }

    #[test]
    fn scan_all_tables() {
        let s = seeded();
        for t in [
            Table::Components,
            Table::ComponentRuns,
            Table::IoPointers,
            Table::Metrics,
            Table::Summaries,
        ] {
            let rows = scan(&s, t).unwrap();
            for row in &rows {
                assert_eq!(row.len(), table_schema(t).len(), "table {}", t.name());
            }
        }
        assert_eq!(scan(&s, Table::Metrics).unwrap().len(), 1);
    }

    #[test]
    fn column_index_case_insensitive_and_errors() {
        assert_eq!(column_index(Table::Components, "OWNER").unwrap(), 2);
        assert!(column_index(Table::Components, "nope").is_err());
    }
}
