//! Artifact-store persistence: a single-file snapshot format so stored
//! payloads survive restarts alongside the WAL (the WAL durably records
//! *pointers* and their content addresses; this file durably records the
//! chunks those addresses resolve to).
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "MLTA" | version u32
//! chunk_count u64
//!   per chunk: digest u128 | refcount u64 | len u64 | bytes
//! artifact_count u64
//!   per artifact: id_len u64 | id bytes | payload_len u64 |
//!                 chunk_count u64 | digests u128...
//! logical_bytes u64
//! ```

use crate::artifact::ArtifactStore;
use crate::error::{Result, StoreError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MLTA";
const VERSION: u32 = 1;

impl ArtifactStore {
    /// Write a snapshot of every chunk and artifact to `path`
    /// (atomically, via a sibling temp file).
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        {
            let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
            w.write_all(MAGIC)?;
            w.write_all(&VERSION.to_le_bytes())?;
            let (chunks, artifacts, logical) = self.export_state();
            w.write_all(&(chunks.len() as u64).to_le_bytes())?;
            for (digest, refcount, payload) in &chunks {
                w.write_all(&digest.to_le_bytes())?;
                w.write_all(&refcount.to_le_bytes())?;
                w.write_all(&(payload.len() as u64).to_le_bytes())?;
                w.write_all(payload)?;
            }
            w.write_all(&(artifacts.len() as u64).to_le_bytes())?;
            for (id, len, digests) in &artifacts {
                w.write_all(&(id.len() as u64).to_le_bytes())?;
                w.write_all(id.as_bytes())?;
                w.write_all(&(*len as u64).to_le_bytes())?;
                w.write_all(&(digests.len() as u64).to_le_bytes())?;
                for d in digests {
                    w.write_all(&d.to_le_bytes())?;
                }
            }
            w.write_all(&logical.to_le_bytes())?;
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a snapshot written by [`ArtifactStore::write_snapshot`] into a
    /// fresh store (keeping the default chunker configuration for new
    /// writes).
    pub fn read_snapshot(path: impl AsRef<Path>) -> Result<ArtifactStore> {
        let mut r = BufReader::new(std::fs::File::open(path.as_ref())?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StoreError::Corrupt("bad artifact snapshot magic".into()));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported artifact snapshot version {version}"
            )));
        }
        let chunk_count = read_u64(&mut r)? as usize;
        let mut chunks = Vec::with_capacity(chunk_count.min(1 << 20));
        for _ in 0..chunk_count {
            let digest = read_u128(&mut r)?;
            let refcount = read_u64(&mut r)?;
            let len = read_u64(&mut r)? as usize;
            let mut payload = vec![0u8; len];
            r.read_exact(&mut payload)?;
            chunks.push((digest, refcount, payload));
        }
        let artifact_count = read_u64(&mut r)? as usize;
        let mut artifacts = Vec::with_capacity(artifact_count.min(1 << 20));
        for _ in 0..artifact_count {
            let id_len = read_u64(&mut r)? as usize;
            let mut id = vec![0u8; id_len];
            r.read_exact(&mut id)?;
            let id = String::from_utf8(id)
                .map_err(|_| StoreError::Corrupt("artifact id not utf-8".into()))?;
            let len = read_u64(&mut r)? as usize;
            let digest_count = read_u64(&mut r)? as usize;
            let mut digests = Vec::with_capacity(digest_count.min(1 << 20));
            for _ in 0..digest_count {
                digests.push(read_u128(&mut r)?);
            }
            artifacts.push((id, len, digests));
        }
        let logical = read_u64(&mut r)?;
        let store = ArtifactStore::default();
        store
            .import_state(chunks, artifacts, logical)
            .map_err(StoreError::Corrupt)?;
        Ok(store)
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u128(r: &mut impl Read) -> Result<u128> {
    let mut b = [0u8; 16];
    r.read_exact(&mut b)?;
    Ok(u128::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            out.extend_from_slice(&state.wrapping_mul(0x2545F4914F6CDD1D).to_le_bytes());
        }
        out.truncate(n);
        out
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mltrace-artsnap-{name}-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn snapshot_round_trips_everything() {
        let store = ArtifactStore::default();
        let a = payload(100_000, 3);
        let mut b = a.clone();
        b.extend_from_slice(&payload(20_000, 5));
        let id_a = store.put(&a);
        let id_b = store.put(&b);
        let id_dup = store.put(&a); // refcounted duplicate
        assert_eq!(id_a, id_dup);
        let before = store.stats();

        let path = tmp("roundtrip");
        store.write_snapshot(&path).unwrap();
        let restored = ArtifactStore::read_snapshot(&path).unwrap();
        assert_eq!(restored.stats(), before);
        assert_eq!(restored.get(&id_a).unwrap(), a);
        assert_eq!(restored.get(&id_b).unwrap(), b);

        // Refcounts survived: deleting one reference of `a` keeps it.
        restored.delete(&id_a).unwrap();
        assert_eq!(restored.get(&id_b).unwrap(), b, "shared chunks intact");
        // New writes still work after restore.
        let c = restored.put(&payload(5_000, 9));
        assert!(restored.contains(&c));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ArtifactStore::default();
        let path = tmp("empty");
        store.write_snapshot(&path).unwrap();
        let restored = ArtifactStore::read_snapshot(&path).unwrap();
        assert_eq!(restored.stats().artifacts, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(
            ArtifactStore::read_snapshot(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let store = ArtifactStore::default();
        store.put(&payload(50_000, 7));
        let path = tmp("trunc");
        store.write_snapshot(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(ArtifactStore::read_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
