//! Content-addressed artifact store with chunk-level deduplication.
//!
//! §5.1 of the paper: the system must "store copies of data and artifacts
//! (e.g., saved functions or models) and deduplicate them on successive
//! runs", which is hard when artifacts are "large (e.g., DNNs) and
//! frequently-changing (e.g., continual learning or retraining)".
//!
//! Successive model versions differ in small deltas, so whole-file
//! addressing dedups nothing. This store splits payloads with
//! content-defined chunking (a gear rolling hash), addresses each chunk by
//! its FNV-1a-128 digest, and refcounts chunks so deleting one artifact
//! version never corrupts another. Insertions or deletions in the payload
//! shift chunk *boundaries* only locally, so unchanged regions keep their
//! chunk identities and dedup survives byte shifts — the property
//! fixed-size chunking lacks.

use crate::error::{Result, StoreError};
use crate::hash::{fnv1a_128, hex128};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Chunking configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChunkerConfig {
    /// Minimum chunk size in bytes (boundaries are suppressed before this).
    pub min_size: usize,
    /// Mask determining expected chunk size: a boundary occurs when
    /// `gear & mask == 0`, giving an expected size of `mask + 1` bytes past
    /// the minimum.
    pub mask: u64,
    /// Hard maximum chunk size.
    pub max_size: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        // ~8 KiB expected chunks: small enough to dedup model deltas,
        // large enough to keep per-chunk overhead low.
        ChunkerConfig {
            min_size: 2 * 1024,
            mask: (1 << 13) - 1,
            max_size: 64 * 1024,
        }
    }
}

/// 256-entry random gear table for the rolling hash, generated from a
/// fixed-seed xorshift so chunk boundaries are stable across builds.
fn gear_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut t = [0u64; 256];
        for slot in t.iter_mut() {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            *slot = state.wrapping_mul(0x2545F4914F6CDD1D);
        }
        t
    })
}

/// Split `data` into content-defined chunks. Every byte belongs to exactly
/// one chunk; concatenating the chunks reproduces `data`.
pub fn chunk_boundaries(data: &[u8], cfg: &ChunkerConfig) -> Vec<(usize, usize)> {
    let table = gear_table();
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut gear: u64 = 0;
    let mut i = 0usize;
    while i < data.len() {
        gear = (gear << 1).wrapping_add(table[data[i] as usize]);
        let len = i - start + 1;
        if (len >= cfg.min_size && gear & cfg.mask == 0) || len >= cfg.max_size {
            chunks.push((start, i + 1));
            start = i + 1;
            gear = 0;
        }
        i += 1;
    }
    if start < data.len() || data.is_empty() {
        chunks.push((start, data.len()));
    }
    chunks
}

/// Identifier of a stored artifact: hex digest over its chunk digests.
pub type ArtifactId = String;

/// Snapshot form of the chunk table: (digest, refcount, payload).
pub(crate) type ChunkExport = Vec<(u128, u64, Vec<u8>)>;
/// Snapshot form of the artifact table: (id, length, chunk digests).
pub(crate) type ArtifactExport = Vec<(String, usize, Vec<u128>)>;

#[derive(Debug, Clone)]
struct ArtifactMeta {
    chunks: Vec<u128>,
    len: usize,
}

#[derive(Default)]
struct ArtifactInner {
    chunks: HashMap<u128, (Bytes, u64)>, // digest → (payload, refcount)
    artifacts: HashMap<ArtifactId, ArtifactMeta>,
    logical_bytes: u64,
    stored_bytes: u64,
}

/// Deduplication statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArtifactStats {
    /// Number of stored artifacts.
    pub artifacts: usize,
    /// Number of distinct chunks held.
    pub chunks: usize,
    /// Sum of artifact sizes as written by clients.
    pub logical_bytes: u64,
    /// Bytes actually held after dedup.
    pub stored_bytes: u64,
}

impl ArtifactStats {
    /// logical / stored; 1.0 means no dedup benefit.
    pub fn dedup_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            if self.logical_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.logical_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// In-memory content-addressed chunk store.
///
/// ```
/// use mltrace_store::ArtifactStore;
///
/// let store = ArtifactStore::default();
/// let id = store.put(b"model weights v1");
/// assert_eq!(store.get(&id).unwrap(), b"model weights v1");
/// assert_eq!(store.put(b"model weights v1"), id, "content addressed");
/// ```
pub struct ArtifactStore {
    cfg: ChunkerConfig,
    inner: RwLock<ArtifactInner>,
}

impl Default for ArtifactStore {
    fn default() -> Self {
        Self::new(ChunkerConfig::default())
    }
}

impl ArtifactStore {
    /// Create a store with the given chunking configuration.
    pub fn new(cfg: ChunkerConfig) -> Self {
        ArtifactStore {
            cfg,
            inner: RwLock::new(ArtifactInner::default()),
        }
    }

    /// Store a payload, returning its content address. Re-storing identical
    /// or near-identical payloads reuses existing chunks.
    pub fn put(&self, data: &[u8]) -> ArtifactId {
        let bounds = chunk_boundaries(data, &self.cfg);
        let digests: Vec<u128> = bounds
            .iter()
            .map(|&(s, e)| fnv1a_128(&data[s..e]))
            .collect();
        // Artifact id = digest of the chunk-digest list (plus length, so
        // the empty artifact is addressable).
        let mut idbytes = Vec::with_capacity(digests.len() * 16 + 8);
        for d in &digests {
            idbytes.extend_from_slice(&d.to_le_bytes());
        }
        idbytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
        let id = hex128(fnv1a_128(&idbytes));

        let mut g = self.inner.write();
        if g.artifacts.contains_key(&id) {
            // Identical payload already stored: bump chunk refcounts so a
            // later delete of either reference is safe.
            for d in &digests {
                if let Some((_, rc)) = g.chunks.get_mut(d) {
                    *rc += 1;
                }
            }
            g.logical_bytes += data.len() as u64;
            return id;
        }
        for (&(s, e), &d) in bounds.iter().zip(digests.iter()) {
            match g.chunks.get_mut(&d) {
                Some((_, rc)) => *rc += 1,
                None => {
                    g.stored_bytes += (e - s) as u64;
                    g.chunks.insert(d, (Bytes::copy_from_slice(&data[s..e]), 1));
                }
            }
        }
        g.logical_bytes += data.len() as u64;
        g.artifacts.insert(
            id.clone(),
            ArtifactMeta {
                chunks: digests,
                len: data.len(),
            },
        );
        id
    }

    /// Reassemble a stored artifact.
    pub fn get(&self, id: &str) -> Result<Vec<u8>> {
        let g = self.inner.read();
        let meta = g
            .artifacts
            .get(id)
            .ok_or_else(|| StoreError::NotFound(format!("artifact {id}")))?;
        let mut out = Vec::with_capacity(meta.len);
        for d in &meta.chunks {
            let (bytes, _) = g
                .chunks
                .get(d)
                .ok_or_else(|| StoreError::Corrupt(format!("missing chunk {d:032x}")))?;
            out.extend_from_slice(bytes);
        }
        Ok(out)
    }

    /// True if the artifact is stored.
    pub fn contains(&self, id: &str) -> bool {
        self.inner.read().artifacts.contains_key(id)
    }

    /// Drop one reference to an artifact, freeing chunks whose refcount
    /// reaches zero. Supports the paper's GDPR forward-deletion: removing a
    /// client-derived model never breaks other artifacts sharing chunks.
    pub fn delete(&self, id: &str) -> Result<()> {
        let mut g = self.inner.write();
        let meta = g
            .artifacts
            .remove(id)
            .ok_or_else(|| StoreError::NotFound(format!("artifact {id}")))?;
        for d in &meta.chunks {
            let remove = match g.chunks.get_mut(d) {
                Some((bytes, rc)) => {
                    *rc -= 1;
                    if *rc == 0 {
                        g.stored_bytes -= bytes.len() as u64;
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if remove {
                g.chunks.remove(d);
            }
        }
        g.logical_bytes = g.logical_bytes.saturating_sub(meta.len as u64);
        Ok(())
    }

    /// Export all state for snapshotting: (digest, refcount, payload)
    /// chunks, (id, length, chunk digests) artifacts, and logical bytes.
    pub(crate) fn export_state(&self) -> (ChunkExport, ArtifactExport, u64) {
        let g = self.inner.read();
        let chunks = g
            .chunks
            .iter()
            .map(|(&d, (bytes, rc))| (d, *rc, bytes.to_vec()))
            .collect();
        let artifacts = g
            .artifacts
            .iter()
            .map(|(id, meta)| (id.clone(), meta.len, meta.chunks.clone()))
            .collect();
        (chunks, artifacts, g.logical_bytes)
    }

    /// Restore state exported by [`ArtifactStore::export_state`] into an
    /// empty store. Validates that every artifact's chunks are present.
    pub(crate) fn import_state(
        &self,
        chunks: ChunkExport,
        artifacts: ArtifactExport,
        logical_bytes: u64,
    ) -> std::result::Result<(), String> {
        let mut g = self.inner.write();
        if !g.artifacts.is_empty() || !g.chunks.is_empty() {
            return Err("import into a non-empty store".into());
        }
        let mut stored = 0u64;
        for (digest, refcount, payload) in chunks {
            stored += payload.len() as u64;
            g.chunks.insert(digest, (Bytes::from(payload), refcount));
        }
        for (id, len, digests) in artifacts {
            for d in &digests {
                if !g.chunks.contains_key(d) {
                    return Err(format!("artifact {id} references missing chunk {d:032x}"));
                }
            }
            g.artifacts.insert(
                id,
                ArtifactMeta {
                    chunks: digests,
                    len,
                },
            );
        }
        g.stored_bytes = stored;
        g.logical_bytes = logical_bytes;
        Ok(())
    }

    /// Current dedup statistics.
    pub fn stats(&self) -> ArtifactStats {
        let g = self.inner.read();
        ArtifactStats {
            artifacts: g.artifacts.len(),
            chunks: g.chunks.len(),
            logical_bytes: g.logical_bytes,
            stored_bytes: g.stored_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudorandom payload (xorshift), aperiodic so the
    /// content-defined chunker finds natural boundaries.
    fn payload(n: usize, seed: u8) -> Vec<u8> {
        let mut state: u64 = 0x1234_5678_9abc_def0 ^ (seed as u64) << 32 | 1;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let word = state.wrapping_mul(0x2545F4914F6CDD1D);
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.truncate(n);
        out
    }

    #[test]
    fn chunks_cover_input_exactly() {
        let data = payload(100_000, 1);
        let cfg = ChunkerConfig::default();
        let bounds = chunk_boundaries(&data, &cfg);
        let mut pos = 0;
        for &(s, e) in &bounds {
            assert_eq!(s, pos);
            assert!(e > s);
            pos = e;
        }
        assert_eq!(pos, data.len());
        for &(s, e) in &bounds[..bounds.len() - 1] {
            assert!(e - s >= cfg.min_size, "chunk under min");
            assert!(e - s <= cfg.max_size, "chunk over max");
        }
    }

    #[test]
    fn empty_payload_is_one_empty_chunk() {
        let bounds = chunk_boundaries(&[], &ChunkerConfig::default());
        assert_eq!(bounds, vec![(0, 0)]);
    }

    #[test]
    fn put_get_round_trip() {
        let store = ArtifactStore::default();
        let data = payload(50_000, 3);
        let id = store.put(&data);
        assert!(store.contains(&id));
        assert_eq!(store.get(&id).unwrap(), data);
        assert!(store.get("nope").is_err());
    }

    #[test]
    fn identical_payloads_share_all_chunks() {
        let store = ArtifactStore::default();
        let data = payload(40_000, 5);
        let a = store.put(&data);
        let b = store.put(&data);
        assert_eq!(a, b);
        let st = store.stats();
        assert_eq!(st.logical_bytes, 80_000);
        assert!(st.stored_bytes <= 40_000 + 100);
        assert!(st.dedup_ratio() > 1.9);
    }

    #[test]
    fn shifted_payload_still_dedups() {
        // Insert 100 bytes at the front: fixed-size chunking would re-store
        // everything; content-defined chunking re-stores only a prefix.
        let store = ArtifactStore::default();
        let base = payload(200_000, 7);
        store.put(&base);
        let mut shifted = payload(100, 99);
        shifted.extend_from_slice(&base);
        store.put(&shifted);
        let st = store.stats();
        // Stored should be far less than logical (400 KB).
        assert!(
            (st.stored_bytes as f64) < 0.6 * st.logical_bytes as f64,
            "stored {} vs logical {}",
            st.stored_bytes,
            st.logical_bytes
        );
    }

    #[test]
    fn small_delta_model_versions_dedup() {
        let store = ArtifactStore::default();
        let mut model = payload(500_000, 11);
        store.put(&model);
        // "Retrain": rewrite one contiguous 1% region (a layer's weights).
        let delta = payload(5_000, 23);
        model[200_000..205_000].copy_from_slice(&delta);
        store.put(&model);
        let st = store.stats();
        assert!(
            st.dedup_ratio() > 1.7,
            "unchanged regions should dedup, ratio {}",
            st.dedup_ratio()
        );
    }

    #[test]
    fn delete_respects_refcounts() {
        let store = ArtifactStore::default();
        let data = payload(30_000, 13);
        let a = store.put(&data);
        let b = store.put(&data); // same id, refcounted
        assert_eq!(a, b);
        store.delete(&a).unwrap();
        // Second reference gone with the artifact entry, but chunks survive
        // only while referenced: after first delete artifact id is gone.
        assert!(!store.contains(&a));
        assert!(store.delete(&a).is_err());
    }

    #[test]
    fn delete_frees_unshared_chunks_only() {
        let store = ArtifactStore::default();
        let base = payload(100_000, 17);
        let a = store.put(&base);
        let mut v2 = base.clone();
        v2.extend_from_slice(&payload(50_000, 19));
        let b = store.put(&v2);
        let before = store.stats().stored_bytes;
        store.delete(&a).unwrap();
        let after = store.stats();
        assert!(after.stored_bytes <= before);
        // b must still reassemble correctly.
        assert_eq!(store.get(&b).unwrap(), v2);
    }

    #[test]
    fn stats_empty_store() {
        let store = ArtifactStore::default();
        let st = store.stats();
        assert_eq!(st.artifacts, 0);
        assert_eq!(st.dedup_ratio(), 1.0);
    }
}
