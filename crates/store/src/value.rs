//! Dynamically-typed values stored in component-run metadata, trigger
//! results, and metric records, and surfaced to the SQL layer.
//!
//! The paper's storage layer must hold heterogeneous per-run state (string
//! identifiers, numeric aggregates, nested structures captured by triggers),
//! so the store exposes one self-describing value type rather than a fixed
//! schema.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically-typed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "t", content = "v")]
pub enum Value {
    /// Absent / unknown value. Sorts before everything else.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is permitted but compares as the smallest float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list of values.
    List(Vec<Value>),
    /// String-keyed map of values (ordered for deterministic output).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Name of the value's type, used in error messages and `typeof`-style
    /// SQL output.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats coerce to `f64`, bools to 0/1.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (no float truncation: a float must be integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view with SQL-ish truthiness for numerics.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0 && !f.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Total ordering across all value types, used for ORDER BY and index
    /// comparisons. Nulls first, then bools, numbers (ints and floats
    /// interleaved by numeric value), strings, lists, maps.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                List(_) => 4,
                Map(_) => 5,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Map(a), Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let c = ka.cmp(kb);
                    if c != Ordering::Equal {
                        return c;
                    }
                    let c = va.total_cmp(vb);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Loose equality used by SQL `=`: numeric types compare by value.
    pub fn loose_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        // Saturate rather than wrap: run ids / timestamps fit comfortably.
        Value::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::from(true).type_name(), "bool");
        assert_eq!(Value::from(1i64).type_name(), "int");
        assert_eq!(Value::from(1.5).type_name(), "float");
        assert_eq!(Value::from("x").type_name(), "str");
        assert_eq!(Value::List(vec![]).type_name(), "list");
        assert_eq!(Value::Map(BTreeMap::new()).type_name(), "map");
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(true).as_f64(), Some(1.0));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::from(4.0).as_i64(), Some(4));
        assert_eq!(Value::from(4.5).as_i64(), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::from(0i64).truthy());
        assert!(Value::from(0.1).truthy());
        assert!(!Value::from("").truthy());
        assert!(Value::from("a").truthy());
        assert!(!Value::Float(f64::NAN).truthy());
    }

    #[test]
    fn cross_type_ordering_is_total() {
        let vals = vec![
            Value::Null,
            Value::from(false),
            Value::from(true),
            Value::from(-1i64),
            Value::from(0.5),
            Value::from(2i64),
            Value::from("a"),
            Value::List(vec![Value::from(1i64)]),
        ];
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(sorted, vals, "constructed list was already in order");
    }

    #[test]
    fn int_float_interleave() {
        assert_eq!(
            Value::from(1i64).total_cmp(&Value::from(1.0)),
            Ordering::Equal
        );
        assert_eq!(
            Value::from(1i64).total_cmp(&Value::from(1.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::from(2.5).total_cmp(&Value::from(2i64)),
            Ordering::Greater
        );
        assert!(Value::from(1i64).loose_eq(&Value::from(1.0)));
    }

    #[test]
    fn nan_sorts_deterministically() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a.total_cmp(&b), Ordering::Equal);
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::from(vec![1i64, 2]);
        let b = Value::from(vec![1i64, 3]);
        let c = Value::from(vec![1i64, 2, 0]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(a.total_cmp(&c), Ordering::Less);
    }

    #[test]
    fn display_round_trips_common_values() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from(3.0).to_string(), "3.0");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
    }

    #[test]
    fn serde_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::from(vec![1i64, 2]));
        let v = Value::Map(m);
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_and_from_conversions() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
        assert_eq!(Value::from(7u64), Value::Int(7));
        assert_eq!(Value::from(usize::MAX), Value::Int(i64::MAX));
    }
}
