//! In-memory [`Store`] implementation with the secondary indexes the
//! paper's execution layer needs at runtime (producer/consumer indexes for
//! dependency inference, per-component run lists for history queries).
//!
//! # Sharded locking
//!
//! The paper's §3.4 scale scenario adds Ω(1 million) IOPointer and
//! ComponentRun nodes per day; a single global lock would serialize every
//! writer thread on the ingest path. State is therefore split into
//! independently-locked regions:
//!
//! * run records are sharded by run id (`id % SHARD_COUNT`),
//! * the per-component run lists and the producer/consumer indexes are
//!   sharded by name hash,
//! * components, I/O pointers, metrics, and summaries each sit behind
//!   their own per-table lock,
//! * run ids come from a lock-free atomic counter, so [`Store::log_run`]
//!   never takes a global exclusive lock and N writer threads scale.
//!
//! Reads (the hot path for queries) take the shared lock of exactly the
//! shard they touch. Cross-shard reads (e.g. [`Store::run_ids`],
//! [`Store::stats`]) visit shards one at a time and therefore observe a
//! near-point-in-time snapshot, which is all the query layer needs.
//!
//! The batched [`Store::log_runs`] override additionally groups index
//! updates per shard, taking each shard lock once per batch instead of
//! once per record, and avoids the per-record key clones of the scalar
//! path.

use crate::aggregate::{canonical_row_key, AggInput, GroupPartial};
use crate::error::{Result, StoreError};
use crate::event::{
    DiagnosisRecord, EventBus, EventFilter, EventId, EventKind, EventSeverity, IncidentRecord,
    IncidentState, ObservabilityEvent, EVENT_KINDS,
};
use crate::record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, RunId,
    RunStatus,
};
use crate::scan::{IndexRoute, RunFilter};
use crate::schema::run_column_value;
use crate::store::{IndexFootprint, IndexStats, RunBundle, Store, StoreStats};
use crate::value::Value;
use mltrace_metrics::{
    AlertManager, AlertRule, Comparator, Incident, IncidentChange, IncidentManager, IncidentPhase,
    MonitorConfig, MonitorPlane, MonitorSummary, Severity, WindowRoll,
};
use mltrace_telemetry::{Counter, Gauge, Histogram, Telemetry};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of lock shards for runs and name-keyed indexes. A power of two
/// so shard selection is a mask; 16 is comfortably above the writer
/// parallelism an embedded observability store sees.
const SHARD_COUNT: usize = 16;

/// Shard index for a run id.
#[inline]
fn run_shard(id: u64) -> usize {
    (id as usize) & (SHARD_COUNT - 1)
}

/// Shard index for a name (component or I/O pointer), FNV-1a.
#[inline]
fn name_shard(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARD_COUNT - 1)
}

/// Insert `id` into an ascending id list, deduplicating. The common case
/// (ids arrive in order) is an O(1) append; concurrent writers that lose
/// the race insert at the sorted position instead.
fn insert_sorted<T: Ord + Copy>(list: &mut Vec<T>, id: T) {
    match list.last() {
        None => list.push(id),
        Some(&last) if last < id => list.push(id),
        Some(&last) if last == id => {}
        _ => {
            let pos = list.partition_point(|&r| r < id);
            if list.get(pos).copied() != Some(id) {
                list.insert(pos, id);
            }
        }
    }
}

/// Number of [`RunStatus`] variants, sizing the status index.
const STATUS_COUNT: usize = 3;

/// Posting-list slot for a status ([`RunStatus`] deliberately carries no
/// `Hash`/`Ord`, so the index is a fixed array rather than a map).
#[inline]
fn status_slot(status: RunStatus) -> usize {
    match status {
        RunStatus::Success => 0,
        RunStatus::Failed => 1,
        RunStatus::TriggerFailed => 2,
    }
}

/// Number of [`EventKind`] variants, sizing the kind index.
const EVENT_KIND_COUNT: usize = EVENT_KINDS.len();

/// Posting-list slot for an event kind (its position in [`EVENT_KINDS`]).
#[inline]
fn kind_slot(kind: EventKind) -> usize {
    EVENT_KINDS
        .iter()
        .position(|k| *k == kind)
        .expect("EVENT_KINDS enumerates every kind")
}

/// Metric series and the per-component name directory, kept under one
/// lock so the two can never disagree.
#[derive(Default)]
struct MetricsTable {
    /// (component, metric) → points ascending by ts
    series: HashMap<(String, String), Vec<MetricRecord>>,
    /// component → ordered metric names
    names: HashMap<String, Vec<String>>,
}

impl MetricsTable {
    fn log(&mut self, m: MetricRecord) {
        let names = self.names.entry(m.component.clone()).or_default();
        if let Err(pos) = names.binary_search(&m.name) {
            names.insert(pos, m.name.clone());
        }
        let series = self
            .series
            .entry((m.component.clone(), m.name.clone()))
            .or_default();
        // Points normally arrive in time order; tolerate stragglers.
        match series.last() {
            Some(last) if last.ts_ms > m.ts_ms => {
                let pos = series.partition_point(|p| p.ts_ms <= m.ts_ms);
                series.insert(pos, m);
            }
            _ => series.push(m),
        }
    }
}

type IdIndexShard = RwLock<HashMap<String, Vec<RunId>>>;

/// Pre-resolved telemetry handles for the store's hot paths (handle
/// lookup by name takes a registry read lock; the ingest path should pay
/// only relaxed atomic ops).
struct StoreTelemetry {
    registry: Telemetry,
    /// Runs logged through any ingest path.
    runs_logged: Counter,
    /// Metric points logged.
    metrics_logged: Counter,
    /// `log_run_bundle` transactions.
    bundles: Counter,
    /// Pointer upserts.
    pointer_upserts: Counter,
    /// Runs removed by deletion/compaction.
    runs_deleted: Counter,
    /// Runs re-inserted by WAL replay.
    runs_restored: Counter,
    /// Times a writer found a shard lock contended (`try_write` failed
    /// and it had to block) — the direct measure of whether 16 shards
    /// are enough for the writer parallelism actually seen.
    shard_contention: Counter,
    /// End-to-end `log_run_bundle` latency.
    bundle_latency: Histogram,
    /// Run records examined by snapshot scans (filter evaluated against a
    /// borrowed record, no clone yet).
    rows_scanned: Counter,
    /// Run records that survived scan filter + limit and were cloned out.
    rows_returned: Counter,
    /// Shard-lock acquisitions made by snapshot scans. Together with
    /// `rows_scanned`/`rows_returned` this makes pushdown selectivity and
    /// the locks-per-row amortization directly observable.
    scan_locks: Counter,
    /// Journal events appended through any path.
    events_logged: Counter,
    /// Scans that resolved their candidate set from a secondary index.
    index_hits: Counter,
    /// Index-routed scans that fell back to a full shard scan (route not
    /// applicable to the filter).
    index_misses: Counter,
    /// Approximate resident bytes across all secondary indexes, refreshed
    /// whenever the footprint is computed.
    index_bytes: Gauge,
    /// Monitoring-plane windows completed (reference freezes included).
    plane_windows_rolled: Counter,
    /// Monitoring-plane windows scored against a frozen reference.
    plane_drift_scored: Counter,
    /// Scored windows where a drift method crossed its threshold.
    plane_drift_breaches: Counter,
}

impl StoreTelemetry {
    fn new(registry: Telemetry) -> Self {
        StoreTelemetry {
            runs_logged: registry.counter("store.runs_logged_total"),
            metrics_logged: registry.counter("store.metrics_logged_total"),
            bundles: registry.counter("store.bundles_total"),
            pointer_upserts: registry.counter("store.pointer_upserts_total"),
            runs_deleted: registry.counter("store.runs_deleted_total"),
            runs_restored: registry.counter("store.runs_restored_total"),
            shard_contention: registry.counter("store.shard_contention_total"),
            bundle_latency: registry.histogram("store.log_run_bundle"),
            rows_scanned: registry.counter("query.rows_scanned"),
            rows_returned: registry.counter("query.rows_returned"),
            scan_locks: registry.counter("query.scan_locks_total"),
            events_logged: registry.counter("store.events_logged_total"),
            index_hits: registry.counter("query.index_hits_total"),
            index_misses: registry.counter("query.index_misses_total"),
            index_bytes: registry.gauge("store.index_bytes"),
            plane_windows_rolled: registry.counter("pipeline.monitor_windows_rolled_total"),
            plane_drift_scored: registry.counter("pipeline.monitor_drift_scored_total"),
            plane_drift_breaches: registry.counter("pipeline.monitor_drift_breaches_total"),
            registry,
        }
    }
}

/// In-memory store. Cheap to create; share via `Arc` (or borrow across
/// scoped threads) for concurrent use.
pub struct MemoryStore {
    /// Next run id to assign. Pre-allocated atomically so `log_run` and
    /// `log_runs` never take a global exclusive lock.
    next_run_id: AtomicU64,
    runs_removed: AtomicU64,
    components: RwLock<BTreeMap<String, ComponentRecord>>,
    /// Run records, sharded by `id % SHARD_COUNT`.
    run_shards: Box<[RwLock<HashMap<u64, ComponentRunRecord>>]>,
    /// component name → run ids ascending, sharded by component hash.
    by_component: Box<[IdIndexShard]>,
    /// io name → producing runs ascending, sharded by io hash.
    producers: Box<[IdIndexShard]>,
    /// io name → consuming runs ascending, sharded by io hash.
    consumers: Box<[IdIndexShard]>,
    /// `start_ms` → run ids ascending: the time-ordered secondary index
    /// behind windowed history queries and the planner's `StartTime`
    /// route. One lock (not sharded): writers touch it once per batch.
    by_start: RwLock<BTreeMap<u64, Vec<RunId>>>,
    /// status → run ids ascending, slot per [`status_slot`].
    by_status: RwLock<[Vec<RunId>; STATUS_COUNT]>,
    /// event kind → event ids ascending, slot per [`kind_slot`].
    events_by_kind: RwLock<[Vec<EventId>; EVENT_KIND_COUNT]>,
    io_pointers: RwLock<BTreeMap<String, IoPointerRecord>>,
    metrics: RwLock<MetricsTable>,
    /// component → compaction summaries ascending by window start
    summaries: RwLock<HashMap<String, Vec<CompactionSummary>>>,
    /// Next journal event id. Atomic for the same reason as `next_run_id`:
    /// id assignment must not take the journal lock.
    next_event_id: AtomicU64,
    /// The observability journal, ascending by event id. Append-only
    /// (retention is future work), one lock taken once per batch.
    events: RwLock<Vec<ObservabilityEvent>>,
    /// Incidents keyed by dedup key.
    incidents: RwLock<BTreeMap<String, IncidentRecord>>,
    /// Ranked root-cause hypotheses keyed by incident key. Re-diagnosing
    /// an incident replaces its rows (mirrors incident upsert semantics).
    diagnoses: RwLock<BTreeMap<String, Vec<DiagnosisRecord>>>,
    /// In-process fan-out of journal events to live subscribers.
    bus: EventBus,
    /// Self-telemetry handles (see the `tele` module docs).
    tele: StoreTelemetry,
    /// The always-on monitoring plane: per-(component, metric) streaming
    /// window summaries with drift scoring, fed on every metric ingest.
    monitor: MonitorPlane,
    /// Alert/incident state for drift breaches surfaced by the plane.
    drift_router: Mutex<DriftRouter>,
    /// Worker-thread override for grouped partial-aggregate scans.
    /// `0` (the default) means auto: `available_parallelism` capped at
    /// [`SHARD_COUNT`]. Benchmarks pin it to compare 1-vs-N scaling.
    scan_workers: AtomicUsize,
}

/// Folds drift breaches from the monitoring plane into the same
/// alert-cooldown + deduplicated-incident machinery SLA pages use. One
/// lazily-installed `Page` rule per `(component, metric)` key.
struct DriftRouter {
    alerts: AlertManager,
    incidents: IncidentManager,
    installed: HashSet<String>,
}

impl DriftRouter {
    fn new() -> Self {
        DriftRouter {
            alerts: AlertManager::new(),
            incidents: IncidentManager::new(0),
            installed: HashSet::new(),
        }
    }

    /// Install the drift page rule for `key` on first breach. The rule
    /// describes the healthy direction (`score <= 0`), so any positive
    /// drift score violates it and fires.
    fn ensure_rule(&mut self, key: &str) {
        if self.installed.insert(key.to_string()) {
            self.alerts.add_rule(AlertRule {
                id: key.to_string(),
                metric: key.to_string(),
                comparator: Comparator::Lte,
                threshold: 0.0,
                severity: Severity::Page,
                cooldown_ms: 0,
            });
        }
    }
}

/// Dedup key for a drift incident on one (component, metric) key.
fn drift_key(component: &str, metric: &str) -> String {
    format!("drift:{component}/{metric}")
}

/// Map an alert tier onto a journal severity (drift routing).
fn severity_to_event(s: Severity) -> EventSeverity {
    match s {
        Severity::Log => EventSeverity::Info,
        Severity::Warn => EventSeverity::Warn,
        Severity::Page => EventSeverity::Page,
    }
}

/// Convert a live drift incident into its persisted record.
fn drift_incident_record(inc: &Incident, now_ms: u64) -> IncidentRecord {
    IncidentRecord {
        key: inc.key.clone(),
        state: match inc.phase {
            IncidentPhase::Open => IncidentState::Open,
            IncidentPhase::Acknowledged => IncidentState::Acknowledged,
            IncidentPhase::Resolved => IncidentState::Resolved,
        },
        severity: severity_to_event(inc.severity),
        subject: inc.subject.clone(),
        opened_ms: inc.opened_ms,
        last_fire_ms: inc.last_fire_ms,
        resolved_ms: inc.resolved_ms,
        fire_count: inc.fire_count,
        suppressed_count: inc.suppressed_count,
        burn_ms: inc.burn_ms(now_ms),
        detail: inc.detail.clone(),
    }
}

fn shard_vec<T: Default>() -> Box<[RwLock<T>]> {
    (0..SHARD_COUNT)
        .map(|_| RwLock::new(T::default()))
        .collect()
}

/// Fold one matching run into a worker-local group map keyed by the
/// canonical row key of its GROUP BY values (empty `group_cols` means one
/// global group). Shared by every worker of a grouped scan.
fn observe_run_grouped(
    groups: &mut HashMap<String, GroupPartial>,
    run: &ComponentRunRecord,
    group_cols: &[usize],
    aggs: &[AggInput],
) {
    let key_vals: Vec<Value> = group_cols
        .iter()
        .map(|&c| run_column_value(run, c))
        .collect();
    let key = canonical_row_key(&key_vals);
    let entry = groups
        .entry(key)
        .or_insert_with(|| GroupPartial::new(key_vals, run.id.0, aggs.len()));
    entry.first_id = entry.first_id.min(run.id.0);
    for (state, input) in entry.aggs.iter_mut().zip(aggs) {
        match input {
            AggInput::CountStar => state.observe_count_star(),
            AggInput::Column(i) => state.observe(&run_column_value(run, *i)),
        }
    }
}

impl Default for MemoryStore {
    /// Same as [`MemoryStore::new`]. (A derived `Default` would leave
    /// `next_run_id` at zero and hand out `RunId(0)`, diverging from a
    /// `new()`-constructed store whose first id is `RunId(1)`.)
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryStore {
    /// Create an empty store with its own telemetry registry.
    pub fn new() -> Self {
        Self::with_telemetry(Telemetry::new())
    }

    /// Create an empty store with a specific monitoring-plane
    /// configuration (e.g. a disabled plane for the E15 overhead
    /// baseline, or tighter windows for tests).
    pub fn with_monitor_config(config: MonitorConfig) -> Self {
        Self::with_telemetry_and_monitor(Telemetry::new(), config)
    }

    /// Create an empty store reporting into an existing telemetry
    /// registry (so e.g. a WAL wrapper and its inner memory store share
    /// one registry).
    pub fn with_telemetry(registry: Telemetry) -> Self {
        Self::with_telemetry_and_monitor(registry, MonitorConfig::default())
    }

    /// Create an empty store with both an adopted telemetry registry and
    /// a monitoring-plane configuration.
    pub fn with_telemetry_and_monitor(registry: Telemetry, config: MonitorConfig) -> Self {
        MemoryStore {
            next_run_id: AtomicU64::new(1),
            runs_removed: AtomicU64::new(0),
            components: RwLock::new(BTreeMap::new()),
            run_shards: shard_vec(),
            by_component: shard_vec(),
            producers: shard_vec(),
            consumers: shard_vec(),
            by_start: RwLock::new(BTreeMap::new()),
            by_status: RwLock::new(std::array::from_fn(|_| Vec::new())),
            events_by_kind: RwLock::new(std::array::from_fn(|_| Vec::new())),
            io_pointers: RwLock::new(BTreeMap::new()),
            metrics: RwLock::new(MetricsTable::default()),
            summaries: RwLock::new(HashMap::new()),
            next_event_id: AtomicU64::new(1),
            events: RwLock::new(Vec::new()),
            incidents: RwLock::new(BTreeMap::new()),
            diagnoses: RwLock::new(BTreeMap::new()),
            bus: EventBus::new(&registry),
            tele: StoreTelemetry::new(registry),
            monitor: MonitorPlane::new(config),
            drift_router: Mutex::new(DriftRouter::new()),
            scan_workers: AtomicUsize::new(0),
        }
    }

    /// Override the number of worker threads grouped partial-aggregate
    /// scans use (`0` restores auto: `available_parallelism` capped at
    /// the shard count). Results are identical at any setting — only
    /// wall-clock changes — so this is a benchmarking/tuning knob.
    pub fn set_scan_workers(&self, n: usize) {
        self.scan_workers.store(n, Ordering::Relaxed);
    }

    /// Resolved worker count for a grouped scan: the override if set,
    /// else available parallelism, never more than one per shard.
    fn scan_worker_count(&self) -> usize {
        let n = match self.scan_workers.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            n => n,
        };
        n.clamp(1, SHARD_COUNT)
    }

    /// The store's monitoring plane (always-on streaming summaries).
    pub fn monitor_plane(&self) -> &MonitorPlane {
        &self.monitor
    }

    /// Validate and apply a metric batch to the metrics table and feed
    /// the monitoring plane, returning the window rolls the batch caused.
    /// This is the side-effect-free half of metric ingest: callers that
    /// own the journal (the `Store` impl here, the WAL wrapper) route the
    /// rolls; replay paths discard them because the events they produced
    /// online were persisted and replay on their own.
    pub(crate) fn ingest_metrics(&self, metrics: Vec<MetricRecord>) -> Result<Vec<WindowRoll>> {
        if metrics.is_empty() {
            return Ok(Vec::new());
        }
        for m in &metrics {
            if m.name.is_empty() {
                return Err(StoreError::InvalidRecord("metric name is empty".into()));
            }
        }
        let count = metrics.len() as u64;
        let rolls = if self.monitor.enabled() {
            self.monitor.observe_batch(
                metrics
                    .iter()
                    .map(|m| (m.component.as_str(), m.name.as_str(), m.value, m.ts_ms)),
            )
        } else {
            Vec::new()
        };
        let mut g = self.metrics.write();
        for m in metrics {
            g.log(m);
        }
        drop(g);
        self.tele.metrics_logged.add(count);
        if !rolls.is_empty() {
            self.tele.plane_windows_rolled.add(rolls.len() as u64);
            let scored = rolls.iter().filter(|r| r.score.is_some()).count() as u64;
            let breached = rolls
                .iter()
                .filter(|r| r.score.as_ref().is_some_and(|s| s.drifted))
                .count() as u64;
            self.tele.plane_drift_scored.add(scored);
            self.tele.plane_drift_breaches.add(breached);
        }
        Ok(rolls)
    }

    /// Replay path for one metric record: metrics table + plane, no
    /// journaling or alerting (the WAL already holds the events the roll
    /// produced online).
    pub(crate) fn restore_metric(&self, m: MetricRecord) -> Result<()> {
        self.ingest_metrics(vec![m]).map(|_| ())
    }

    /// Journal scored window rolls and route drift breaches through the
    /// alert → incident machinery. `store` is the store the side effects
    /// go through — `self` for a bare memory store, the WAL wrapper for a
    /// durable one, so drift events and incidents persist in the log.
    pub(crate) fn route_rolls(&self, store: &dyn Store, rolls: &[WindowRoll]) -> Result<()> {
        let mut events = Vec::new();
        let mut router = self.drift_router.lock();
        for roll in rolls {
            let Some(score) = &roll.score else { continue };
            let severity = if score.drifted {
                EventSeverity::Page
            } else {
                EventSeverity::Info
            };
            events.push(
                ObservabilityEvent::new(EventKind::DriftScored, severity, roll.ts_ms)
                    .component(roll.component.clone())
                    .detail(format!(
                        "{}/{} window {}: {} score {:.4} over {} points vs {}-point reference{}",
                        roll.component,
                        roll.metric,
                        roll.window,
                        score.method,
                        score.score,
                        roll.points,
                        score.reference_points,
                        if score.drifted { " (drift)" } else { "" },
                    ))
                    .payload("metric", Value::from(roll.metric.clone()))
                    .payload("method", Value::from(score.method.clone()))
                    .payload("score", Value::Float(score.score))
                    .payload("window", Value::Int(roll.window as i64))
                    .payload("points", Value::Int(roll.points as i64)),
            );
            if !score.drifted {
                continue;
            }
            let key = drift_key(&roll.component, &roll.metric);
            router.ensure_rule(&key);
            let outcomes = router
                .alerts
                .observe_outcomes(&key, score.score, roll.ts_ms);
            for outcome in outcomes {
                match router.incidents.fold(&outcome) {
                    IncidentChange::Opened => {
                        let inc = router.incidents.get(&key).expect("just opened");
                        store.upsert_incident(drift_incident_record(inc, roll.ts_ms))?;
                        events.push(
                            ObservabilityEvent::new(
                                EventKind::IncidentOpened,
                                EventSeverity::Page,
                                roll.ts_ms,
                            )
                            .component(roll.component.clone())
                            .detail(inc.detail.clone())
                            .payload("key", Value::from(inc.key.clone())),
                        );
                    }
                    IncidentChange::Refired | IncidentChange::Suppressed => {
                        let inc = router.incidents.get(&key).expect("exists");
                        store.upsert_incident(drift_incident_record(inc, roll.ts_ms))?;
                    }
                    _ => {}
                }
            }
        }
        drop(router);
        if !events.is_empty() {
            store.log_events(events)?;
        }
        Ok(())
    }

    /// Rebuild the drift router's incident dedup state from persisted
    /// incidents (after a WAL replay), so a re-breach after restart
    /// re-fires the existing incident instead of opening a duplicate.
    /// Alert cooldown state is not persisted and restarts empty.
    pub(crate) fn seed_drift_router(&self) {
        let incidents = self.incidents.read();
        let mut router = self.drift_router.lock();
        for rec in incidents.values() {
            if !rec.key.starts_with("drift:") || rec.state == IncidentState::Resolved {
                continue;
            }
            router.ensure_rule(&rec.key);
            router.incidents.adopt(Incident {
                key: rec.key.clone(),
                phase: match rec.state {
                    IncidentState::Open => IncidentPhase::Open,
                    IncidentState::Acknowledged => IncidentPhase::Acknowledged,
                    IncidentState::Resolved => IncidentPhase::Resolved,
                },
                severity: Severity::Page,
                subject: rec.subject.clone(),
                opened_ms: rec.opened_ms,
                last_fire_ms: rec.last_fire_ms,
                resolved_ms: rec.resolved_ms,
                fire_count: rec.fire_count,
                suppressed_count: rec.suppressed_count,
                detail: rec.detail.clone(),
            });
        }
    }

    /// Take a shard write lock, counting the times a writer had to block
    /// behind another holder (shard-contention telemetry).
    #[inline]
    fn write_shard<'a, T>(&self, lock: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
        match lock.try_write() {
            Some(g) => g,
            None => {
                self.tele.shard_contention.incr();
                lock.write()
            }
        }
    }

    /// Re-insert a run with a pre-assigned id. Used by WAL replay; also
    /// keeps `next_run_id` ahead of every replayed id.
    pub(crate) fn restore_run(&self, run: ComponentRunRecord) -> Result<()> {
        run.validate().map_err(StoreError::InvalidRecord)?;
        let id = run.id;
        if self.run_shards[run_shard(id.0)].read().contains_key(&id.0) {
            return Err(StoreError::AlreadyExists(format!("{id}")));
        }
        self.next_run_id.fetch_max(id.0 + 1, Ordering::Relaxed);
        self.index_run(id, &run);
        self.write_shard(&self.run_shards[run_shard(id.0)])
            .insert(id.0, run);
        self.tele.runs_restored.incr();
        Ok(())
    }

    /// Re-insert a journal event with a pre-assigned id. Used by WAL
    /// replay; keeps `next_event_id` ahead of every replayed id and does
    /// NOT fan out on the bus (replayed history is not live traffic).
    pub(crate) fn restore_event(&self, event: ObservabilityEvent) -> Result<()> {
        if event.id.0 == 0 {
            return Err(StoreError::InvalidRecord("restored event has no id".into()));
        }
        self.next_event_id
            .fetch_max(event.id.0 + 1, Ordering::Relaxed);
        let (eid, slot) = (event.id, kind_slot(event.kind));
        {
            let mut g = self.events.write();
            // Replay order is normally ascending (the WAL is append-only);
            // tolerate stragglers so a hand-edited log still loads.
            match g.last() {
                Some(last) if last.id >= event.id => {
                    let pos = g.partition_point(|e| e.id < event.id);
                    g.insert(pos, event);
                }
                _ => g.push(event),
            }
        }
        insert_sorted(&mut self.events_by_kind.write()[slot], eid);
        Ok(())
    }

    /// Current id watermarks and deletion counter, in the order
    /// `(next_run_id, next_event_id, runs_removed)`. Snapshotted into a
    /// checkpoint header: folded state drops deletion history, so the
    /// counters themselves must travel with the snapshot or replay would
    /// regress ids after deletions.
    pub(crate) fn watermarks(&self) -> (u64, u64, u64) {
        (
            self.next_run_id.load(Ordering::Relaxed),
            self.next_event_id.load(Ordering::Relaxed),
            self.runs_removed.load(Ordering::Relaxed),
        )
    }

    /// Restore watermarks from a checkpoint header. `fetch_max` so a
    /// replayed tail that already advanced a counter is never regressed.
    pub(crate) fn restore_watermarks(
        &self,
        next_run_id: u64,
        next_event_id: u64,
        runs_removed: u64,
    ) {
        self.next_run_id.fetch_max(next_run_id, Ordering::Relaxed);
        self.next_event_id
            .fetch_max(next_event_id, Ordering::Relaxed);
        self.runs_removed.fetch_max(runs_removed, Ordering::Relaxed);
    }

    /// Every component with at least one metric series, sorted. Unlike
    /// iterating registered components, this also surfaces metrics logged
    /// for components that were never registered — a checkpoint must fold
    /// those too or they would silently vanish.
    pub(crate) fn metric_components(&self) -> Vec<String> {
        let mut out: Vec<String> = self.metrics.read().names.keys().cloned().collect();
        out.sort_unstable();
        out
    }

    /// Every component with at least one compaction summary, sorted (same
    /// rationale as [`MemoryStore::metric_components`]).
    pub(crate) fn summary_components(&self) -> Vec<String> {
        let mut out: Vec<String> = self.summaries.read().keys().cloned().collect();
        out.sort_unstable();
        out
    }

    /// Add one run to every secondary index: the per-component list, the
    /// producer/consumer indexes, the time-ordered index, and the status
    /// index. Each lock is taken and released independently. Shared by the
    /// scalar ingest path and WAL replay (`restore_run`), so replayed
    /// indexes are rebuilt by construction.
    fn index_run(&self, id: RunId, run: &ComponentRunRecord) {
        let (component, inputs, outputs) = (&run.component, &run.inputs, &run.outputs);
        {
            let mut g = self.write_shard(&self.by_component[name_shard(component)]);
            match g.get_mut(component.as_str()) {
                Some(list) => insert_sorted(list, id),
                None => {
                    g.insert(component.to_owned(), vec![id]);
                }
            }
        }
        {
            let mut g = self.write_shard(&self.by_start);
            insert_sorted(g.entry(run.start_ms).or_default(), id);
        }
        {
            let mut g = self.write_shard(&self.by_status);
            insert_sorted(&mut g[status_slot(run.status)], id);
        }
        // A run may legitimately list the same pointer twice (e.g. a file
        // read in two roles); `insert_sorted` indexes it once per run.
        for io in outputs {
            let mut g = self.write_shard(&self.producers[name_shard(io)]);
            match g.get_mut(io.as_str()) {
                Some(list) => insert_sorted(list, id),
                None => {
                    g.insert(io.clone(), vec![id]);
                }
            }
        }
        for io in inputs {
            let mut g = self.write_shard(&self.consumers[name_shard(io)]);
            match g.get_mut(io.as_str()) {
                Some(list) => insert_sorted(list, id),
                None => {
                    g.insert(io.clone(), vec![id]);
                }
            }
        }
    }

    /// Ids of runs past `since` that match `filter`, ascending, evaluated
    /// against borrowed records under one read lock per shard — the
    /// clone-free phase A of limited and chunked scans. Also counts the
    /// records examined into the scan telemetry.
    fn matching_run_ids(&self, since: Option<RunId>, filter: &RunFilter) -> Vec<RunId> {
        let mut ids = Vec::new();
        let mut scanned = 0u64;
        for shard in self.run_shards.iter() {
            let g = shard.read();
            self.tele.scan_locks.incr();
            for (&id, run) in g.iter() {
                if since.is_some_and(|s| id <= s.0) {
                    continue;
                }
                scanned += 1;
                if filter.matches(run) {
                    ids.push(RunId(id));
                }
            }
        }
        ids.sort_unstable();
        self.tele.rows_scanned.add(scanned);
        ids
    }

    /// Clone the records for `ids` (ascending), grouping the fetches so
    /// each touched shard's lock is taken once — phase B of limited and
    /// chunked scans. Ids deleted since phase A are skipped; the output
    /// stays ascending by id.
    fn fetch_runs_sorted(&self, ids: &[RunId]) -> Vec<ComponentRunRecord> {
        let mut per_shard: Vec<Vec<u64>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for id in ids {
            per_shard[run_shard(id.0)].push(id.0);
        }
        let mut out = Vec::with_capacity(ids.len());
        for (si, shard_ids) in per_shard.into_iter().enumerate() {
            if shard_ids.is_empty() {
                continue;
            }
            let g = self.run_shards[si].read();
            self.tele.scan_locks.incr();
            for id in shard_ids {
                if let Some(run) = g.get(&id) {
                    out.push(run.clone());
                }
            }
        }
        out.sort_unstable_by_key(|r| r.id);
        out
    }

    /// Candidate ids (ascending) from a routed secondary index — phase A
    /// of [`Store::scan_runs_indexed`] and of grouped partial-aggregate
    /// scans. The route must already be `applicable` to the filter. The
    /// candidate set is a superset of the matching rows; callers re-check
    /// the full filter against every candidate record.
    fn route_candidates(&self, filter: &RunFilter, route: IndexRoute) -> Vec<RunId> {
        match route {
            IndexRoute::Component => {
                let name = filter.component.as_deref().expect("checked applicable");
                let g = self.by_component[name_shard(name)].read();
                self.tele.scan_locks.incr();
                g.get(name).cloned().unwrap_or_default()
            }
            IndexRoute::Status => {
                let g = self.by_status.read();
                self.tele.scan_locks.incr();
                g[status_slot(filter.status.expect("checked applicable"))].clone()
            }
            IndexRoute::StartTime => {
                let lo = filter.min_start_ms.unwrap_or(0);
                let hi = filter.max_start_ms.unwrap_or(u64::MAX);
                if lo > hi {
                    Vec::new()
                } else {
                    let g = self.by_start.read();
                    self.tele.scan_locks.incr();
                    let mut ids: Vec<RunId> = g
                        .range(lo..=hi)
                        .flat_map(|(_, v)| v.iter().copied())
                        .collect();
                    drop(g);
                    // Buckets are time-ordered, not id-ordered.
                    ids.sort_unstable();
                    ids
                }
            }
            IndexRoute::IdRange => {
                // Dense enumeration of the live id range; no lock at all.
                let next = self.next_run_id.load(Ordering::Relaxed);
                let lo = filter.min_id.unwrap_or(1).max(1);
                let hi = filter
                    .max_id
                    .unwrap_or(u64::MAX)
                    .min(next.saturating_sub(1));
                if lo > hi {
                    Vec::new()
                } else {
                    (lo..=hi).map(RunId).collect()
                }
            }
        }
    }

    /// Apply pre-grouped index updates, taking each shard lock once.
    /// `groups` maps a name to the ascending ids to merge into its list.
    fn apply_index_groups(&self, shards: &[IdIndexShard], groups: HashMap<&str, Vec<RunId>>) {
        let mut per_shard: Vec<Vec<(&str, Vec<RunId>)>> =
            (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (name, ids) in groups {
            per_shard[name_shard(name)].push((name, ids));
        }
        for (si, entries) in per_shard.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let mut g = self.write_shard(&shards[si]);
            for (name, ids) in entries {
                match g.get_mut(name) {
                    Some(list) => {
                        list.reserve(ids.len());
                        for id in ids {
                            insert_sorted(list, id);
                        }
                    }
                    None => {
                        // Fresh key: the group is already ascending.
                        g.insert(name.to_owned(), ids);
                    }
                }
            }
        }
    }
}

impl Store for MemoryStore {
    fn register_component(&self, rec: ComponentRecord) -> Result<()> {
        if rec.name.is_empty() {
            return Err(StoreError::InvalidRecord("component name is empty".into()));
        }
        self.components.write().insert(rec.name.clone(), rec);
        Ok(())
    }

    fn component(&self, name: &str) -> Result<Option<ComponentRecord>> {
        Ok(self.components.read().get(name).cloned())
    }

    fn components(&self) -> Result<Vec<ComponentRecord>> {
        Ok(self.components.read().values().cloned().collect())
    }

    fn log_run(&self, mut run: ComponentRunRecord) -> Result<RunId> {
        run.validate().map_err(StoreError::InvalidRecord)?;
        let id = RunId(self.next_run_id.fetch_add(1, Ordering::Relaxed));
        run.id = id;
        self.index_run(id, &run);
        self.write_shard(&self.run_shards[run_shard(id.0)])
            .insert(id.0, run);
        self.tele.runs_logged.incr();
        Ok(id)
    }

    fn log_runs(&self, runs: Vec<ComponentRunRecord>) -> Result<Vec<RunId>> {
        if runs.is_empty() {
            return Ok(Vec::new());
        }
        // Validate everything before assigning ids so a bad record logs
        // nothing (and burns no ids).
        for run in &runs {
            run.validate().map_err(StoreError::InvalidRecord)?;
        }
        let base = self
            .next_run_id
            .fetch_add(runs.len() as u64, Ordering::Relaxed);
        // Group index updates locally (borrowed keys, no per-record
        // clones), then merge each group under one shard-lock acquisition.
        {
            let mut comp_groups: HashMap<&str, Vec<RunId>> = HashMap::new();
            let mut prod_groups: HashMap<&str, Vec<RunId>> = HashMap::new();
            let mut cons_groups: HashMap<&str, Vec<RunId>> = HashMap::new();
            let mut start_groups: BTreeMap<u64, Vec<RunId>> = BTreeMap::new();
            let mut status_groups: [Vec<RunId>; STATUS_COUNT] = std::array::from_fn(|_| Vec::new());
            for (i, run) in runs.iter().enumerate() {
                let id = RunId(base + i as u64);
                comp_groups
                    .entry(run.component.as_str())
                    .or_default()
                    .push(id);
                for io in &run.outputs {
                    let list = prod_groups.entry(io.as_str()).or_default();
                    if list.last() != Some(&id) {
                        list.push(id);
                    }
                }
                for io in &run.inputs {
                    let list = cons_groups.entry(io.as_str()).or_default();
                    if list.last() != Some(&id) {
                        list.push(id);
                    }
                }
                start_groups.entry(run.start_ms).or_default().push(id);
                status_groups[status_slot(run.status)].push(id);
            }
            self.apply_index_groups(&self.by_component, comp_groups);
            self.apply_index_groups(&self.producers, prod_groups);
            self.apply_index_groups(&self.consumers, cons_groups);
            {
                let mut g = self.write_shard(&self.by_start);
                for (start, ids) in start_groups {
                    match g.get_mut(&start) {
                        Some(list) => {
                            list.reserve(ids.len());
                            for id in ids {
                                insert_sorted(list, id);
                            }
                        }
                        None => {
                            // Batch ids are ascending within a group.
                            g.insert(start, ids);
                        }
                    }
                }
            }
            {
                let mut g = self.write_shard(&self.by_status);
                for (slot, ids) in status_groups.into_iter().enumerate() {
                    let list = &mut g[slot];
                    list.reserve(ids.len());
                    for id in ids {
                        insert_sorted(list, id);
                    }
                }
            }
        }
        // Move the records into their shards, one lock per touched shard.
        let mut ids = Vec::with_capacity(runs.len());
        let mut per_shard: Vec<Vec<ComponentRunRecord>> =
            (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (i, mut run) in runs.into_iter().enumerate() {
            let id = RunId(base + i as u64);
            run.id = id;
            ids.push(id);
            per_shard[run_shard(id.0)].push(run);
        }
        for (si, records) in per_shard.into_iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let mut g = self.write_shard(&self.run_shards[si]);
            g.reserve(records.len());
            for run in records {
                g.insert(run.id.0, run);
            }
        }
        self.tele.runs_logged.add(ids.len() as u64);
        Ok(ids)
    }

    fn log_run_bundle(&self, bundle: RunBundle) -> Result<RunId> {
        let started = Instant::now();
        {
            let pointer_count = bundle.pointers.len() as u64;
            let mut g = self.io_pointers.write();
            for rec in bundle.pointers {
                upsert_pointer(&mut g, rec)?;
            }
            self.tele.pointer_upserts.add(pointer_count);
        }
        let id = self.log_run(bundle.run)?;
        let mut metrics = bundle.metrics;
        for m in &mut metrics {
            m.run_id = Some(id);
        }
        self.log_metrics(metrics)?;
        let mut events = bundle.events;
        for e in &mut events {
            if e.run_id.is_none() {
                e.run_id = Some(id);
            }
        }
        self.log_events(events)?;
        self.tele.bundles.incr();
        self.tele
            .bundle_latency
            .record(started.elapsed().as_nanos() as u64);
        Ok(id)
    }

    fn run(&self, id: RunId) -> Result<Option<ComponentRunRecord>> {
        Ok(self.run_shards[run_shard(id.0)].read().get(&id.0).cloned())
    }

    fn runs_for_component(&self, name: &str) -> Result<Vec<RunId>> {
        Ok(self.by_component[name_shard(name)]
            .read()
            .get(name)
            .cloned()
            .unwrap_or_default())
    }

    fn latest_run(&self, name: &str) -> Result<Option<ComponentRunRecord>> {
        let last = self.by_component[name_shard(name)]
            .read()
            .get(name)
            .and_then(|ids| ids.last().copied());
        match last {
            Some(id) => self.run(id),
            None => Ok(None),
        }
    }

    fn run_ids(&self) -> Result<Vec<RunId>> {
        let mut ids: Vec<RunId> = Vec::new();
        for shard in self.run_shards.iter() {
            ids.extend(shard.read().keys().map(|&k| RunId(k)));
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn scan_runs(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ComponentRunRecord>> {
        let out = match limit {
            Some(0) => Vec::new(),
            Some(cap) => {
                // Two phases: find matching ids without cloning, then clone
                // only the first `cap` — a selective or limited scan clones
                // min(matches, cap) records instead of every match.
                let mut ids = self.matching_run_ids(since, filter);
                ids.truncate(cap);
                self.fetch_runs_sorted(&ids)
            }
            None => {
                // Single pass: filter under the shard lock, clone matches.
                let mut out = Vec::new();
                let mut scanned = 0u64;
                for shard in self.run_shards.iter() {
                    let g = shard.read();
                    self.tele.scan_locks.incr();
                    for (&id, run) in g.iter() {
                        if since.is_some_and(|s| id <= s.0) {
                            continue;
                        }
                        scanned += 1;
                        if filter.matches(run) {
                            out.push(run.clone());
                        }
                    }
                }
                out.sort_unstable_by_key(|r| r.id);
                self.tele.rows_scanned.add(scanned);
                out
            }
        };
        self.tele.rows_returned.add(out.len() as u64);
        Ok(out)
    }

    fn scan_runs_chunked(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        chunk_size: usize,
        visit: &mut dyn FnMut(&[ComponentRunRecord]) -> bool,
    ) -> Result<()> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        // Resolve the matching ids once (the trait default would rescan
        // every shard per chunk), then clone one chunk at a time so peak
        // memory is bounded by `chunk_size` regardless of match count.
        let ids = self.matching_run_ids(since, filter);
        for chunk_ids in ids.chunks(chunk_size) {
            let batch = self.fetch_runs_sorted(chunk_ids);
            if batch.is_empty() {
                continue;
            }
            self.tele.rows_returned.add(batch.len() as u64);
            if !visit(&batch) {
                break;
            }
        }
        Ok(())
    }

    fn scan_runs_indexed(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
        route: IndexRoute,
    ) -> Result<Option<Vec<ComponentRunRecord>>> {
        if !route.applicable(filter) {
            self.tele.index_misses.incr();
            return Ok(None);
        }
        let mut candidates = self.route_candidates(filter, route);
        if let Some(s) = since {
            let pos = candidates.partition_point(|&id| id <= s);
            candidates.drain(..pos);
        }
        let examined = candidates.len() as u64;
        // Phase B: evaluate the full filter against borrowed records,
        // grouping candidates so each touched shard's lock is taken once.
        let mut per_shard: Vec<Vec<u64>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for id in &candidates {
            per_shard[run_shard(id.0)].push(id.0);
        }
        let mut ids = Vec::new();
        for (si, shard_ids) in per_shard.into_iter().enumerate() {
            if shard_ids.is_empty() {
                continue;
            }
            let g = self.run_shards[si].read();
            self.tele.scan_locks.incr();
            for id in shard_ids {
                if let Some(run) = g.get(&id) {
                    if filter.matches(run) {
                        ids.push(RunId(id));
                    }
                }
            }
        }
        ids.sort_unstable();
        if let Some(cap) = limit {
            ids.truncate(cap);
        }
        let out = self.fetch_runs_sorted(&ids);
        self.tele.rows_scanned.add(examined);
        self.tele.rows_returned.add(out.len() as u64);
        self.tele.index_hits.incr();
        Ok(Some(out))
    }

    fn scan_runs_grouped(
        &self,
        filter: &RunFilter,
        route: Option<IndexRoute>,
        group_cols: &[usize],
        aggs: &[AggInput],
    ) -> Result<Option<Vec<GroupPartial>>> {
        // Per-shard work list: candidate ids from the routed index when
        // one applies (the grouped analogue of `scan_runs_indexed` phase
        // A), else every record in the shard.
        let routed: Option<Vec<Vec<u64>>> = match route {
            Some(r) if r.applicable(filter) => {
                let candidates = self.route_candidates(filter, r);
                let mut per_shard: Vec<Vec<u64>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
                for id in candidates {
                    per_shard[run_shard(id.0)].push(id.0);
                }
                self.tele.index_hits.incr();
                Some(per_shard)
            }
            Some(_) => {
                self.tele.index_misses.incr();
                None
            }
            None => None,
        };
        let workers = self.scan_worker_count();
        // Workers claim shards from a shared counter so a skewed
        // candidate distribution doesn't idle anyone; each shard lock is
        // read by exactly one worker exactly once. Worker-local hash maps
        // mean zero contention during the fold; the (group-count-sized)
        // maps merge on the calling thread afterwards.
        let next_shard = AtomicUsize::new(0);
        let mut merged: HashMap<String, GroupPartial> = HashMap::new();
        let mut scanned = 0u64;
        let mut locks = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next_shard = &next_shard;
                    let routed = routed.as_ref();
                    s.spawn(move || {
                        let mut local: HashMap<String, GroupPartial> = HashMap::new();
                        let mut scanned = 0u64;
                        let mut locks = 0u64;
                        loop {
                            let si = next_shard.fetch_add(1, Ordering::Relaxed);
                            if si >= SHARD_COUNT {
                                break;
                            }
                            match routed {
                                Some(per_shard) => {
                                    let ids = &per_shard[si];
                                    if ids.is_empty() {
                                        continue;
                                    }
                                    let g = self.run_shards[si].read();
                                    locks += 1;
                                    scanned += ids.len() as u64;
                                    for id in ids {
                                        if let Some(run) = g.get(id) {
                                            if filter.matches(run) {
                                                observe_run_grouped(
                                                    &mut local, run, group_cols, aggs,
                                                );
                                            }
                                        }
                                    }
                                }
                                None => {
                                    let g = self.run_shards[si].read();
                                    locks += 1;
                                    scanned += g.len() as u64;
                                    for run in g.values() {
                                        if filter.matches(run) {
                                            observe_run_grouped(&mut local, run, group_cols, aggs);
                                        }
                                    }
                                }
                            }
                        }
                        (local, scanned, locks)
                    })
                })
                .collect();
            for h in handles {
                let (local, w_scanned, w_locks) = h.join().expect("grouped scan worker panicked");
                scanned += w_scanned;
                locks += w_locks;
                for (k, g) in local {
                    match merged.entry(k) {
                        Entry::Occupied(mut e) => e.get_mut().merge(&g),
                        Entry::Vacant(v) => {
                            v.insert(g);
                        }
                    }
                }
            }
        });
        self.tele.rows_scanned.add(scanned);
        self.tele.scan_locks.add(locks);
        // The headline number: a grouped scan returns group-count rows,
        // not row-count rows.
        self.tele.rows_returned.add(merged.len() as u64);
        let mut out: Vec<GroupPartial> = merged.into_values().collect();
        out.sort_unstable_by_key(|g| g.first_id);
        Ok(Some(out))
    }

    fn index_stats(&self) -> Result<Option<IndexStats>> {
        let mut runs = 0u64;
        for shard in self.run_shards.iter() {
            runs += shard.read().len() as u64;
        }
        let mut distinct_components = 0u64;
        for shard in self.by_component.iter() {
            distinct_components += shard.read().values().filter(|v| !v.is_empty()).count() as u64;
        }
        let distinct_statuses = self
            .by_status
            .read()
            .iter()
            .filter(|v| !v.is_empty())
            .count() as u64;
        let (min_start_ms, max_start_ms) = {
            let g = self.by_start.read();
            (g.keys().next().copied(), g.keys().next_back().copied())
        };
        Ok(Some(IndexStats {
            runs,
            distinct_components,
            distinct_statuses,
            min_start_ms,
            max_start_ms,
            next_id: self.next_run_id.load(Ordering::Relaxed),
        }))
    }

    fn index_footprint(&self) -> Result<Vec<IndexFootprint>> {
        const ID_BYTES: u64 = std::mem::size_of::<RunId>() as u64;
        let mut out = Vec::with_capacity(4);
        {
            let (mut keys, mut entries, mut bytes) = (0u64, 0u64, 0u64);
            for shard in self.by_component.iter() {
                for (name, ids) in shard.read().iter() {
                    keys += 1;
                    entries += ids.len() as u64;
                    bytes += name.len() as u64 + ids.len() as u64 * ID_BYTES;
                }
            }
            out.push(IndexFootprint {
                name: "by_component",
                keys,
                entries,
                approx_bytes: bytes,
            });
        }
        {
            let (mut keys, mut entries) = (0u64, 0u64);
            for (_, ids) in self.by_start.read().iter() {
                keys += 1;
                entries += ids.len() as u64;
            }
            out.push(IndexFootprint {
                name: "by_start",
                keys,
                entries,
                approx_bytes: keys * 8 + entries * ID_BYTES,
            });
        }
        {
            let g = self.by_status.read();
            let keys = g.iter().filter(|v| !v.is_empty()).count() as u64;
            let entries = g.iter().map(|v| v.len() as u64).sum::<u64>();
            out.push(IndexFootprint {
                name: "by_status",
                keys,
                entries,
                approx_bytes: entries * ID_BYTES,
            });
        }
        {
            let g = self.events_by_kind.read();
            let keys = g.iter().filter(|v| !v.is_empty()).count() as u64;
            let entries = g.iter().map(|v| v.len() as u64).sum::<u64>();
            out.push(IndexFootprint {
                name: "events_by_kind",
                keys,
                entries,
                approx_bytes: entries * ID_BYTES,
            });
        }
        let total: u64 = out.iter().map(|f| f.approx_bytes).sum();
        self.tele.index_bytes.set(total as i64);
        Ok(out)
    }

    fn component_history(&self, name: &str, limit: usize) -> Result<Vec<ComponentRunRecord>> {
        // The tail of the per-component list, resolved under one index
        // lock. The list is ascending by start time, so the reversed tail
        // is the newest-first order `history` presents.
        let tail: Vec<RunId> = {
            let g = self.by_component[name_shard(name)].read();
            self.tele.scan_locks.incr();
            match g.get(name) {
                Some(ids) => ids.iter().rev().take(limit).copied().collect(),
                None => return Ok(Vec::new()),
            }
        };
        let fetched = self.fetch_runs_sorted(&tail);
        self.tele.rows_scanned.add(fetched.len() as u64);
        self.tele.rows_returned.add(fetched.len() as u64);
        // Re-emit in the tail's order (descending start time), which can
        // differ from id order when runs are logged out of time order.
        let mut by_id: HashMap<u64, ComponentRunRecord> =
            fetched.into_iter().map(|r| (r.id.0, r)).collect();
        Ok(tail.iter().filter_map(|id| by_id.remove(&id.0)).collect())
    }

    fn upsert_io_pointer(&self, rec: IoPointerRecord) -> Result<()> {
        upsert_pointer(&mut self.io_pointers.write(), rec)?;
        self.tele.pointer_upserts.incr();
        Ok(())
    }

    fn io_pointer(&self, name: &str) -> Result<Option<IoPointerRecord>> {
        Ok(self.io_pointers.read().get(name).cloned())
    }

    fn io_pointers(&self) -> Result<Vec<IoPointerRecord>> {
        Ok(self.io_pointers.read().values().cloned().collect())
    }

    fn producers_of(&self, io: &str) -> Result<Vec<RunId>> {
        Ok(self.producers[name_shard(io)]
            .read()
            .get(io)
            .cloned()
            .unwrap_or_default())
    }

    fn consumers_of(&self, io: &str) -> Result<Vec<RunId>> {
        Ok(self.consumers[name_shard(io)]
            .read()
            .get(io)
            .cloned()
            .unwrap_or_default())
    }

    fn set_flag(&self, io: &str, flag: bool) -> Result<bool> {
        let mut g = self.io_pointers.write();
        let rec = g
            .get_mut(io)
            .ok_or_else(|| StoreError::NotFound(format!("io pointer {io}")))?;
        let prev = rec.flag;
        rec.flag = flag;
        Ok(prev)
    }

    fn flagged(&self) -> Result<Vec<String>> {
        Ok(self
            .io_pointers
            .read()
            .values()
            .filter(|p| p.flag)
            .map(|p| p.name.clone())
            .collect())
    }

    fn log_metric(&self, m: MetricRecord) -> Result<()> {
        let rolls = self.ingest_metrics(vec![m])?;
        self.route_rolls(self, &rolls)
    }

    fn log_metrics(&self, metrics: Vec<MetricRecord>) -> Result<()> {
        let rolls = self.ingest_metrics(metrics)?;
        self.route_rolls(self, &rolls)
    }

    fn monitor_summaries(&self) -> Result<Vec<MonitorSummary>> {
        Ok(self.monitor.summaries())
    }

    fn metrics(&self, component: &str, name: &str) -> Result<Vec<MetricRecord>> {
        Ok(self
            .metrics
            .read()
            .series
            .get(&(component.to_owned(), name.to_owned()))
            .cloned()
            .unwrap_or_default())
    }

    fn metric_names(&self, component: &str) -> Result<Vec<String>> {
        Ok(self
            .metrics
            .read()
            .names
            .get(component)
            .cloned()
            .unwrap_or_default())
    }

    fn delete_runs(&self, ids: &[RunId]) -> Result<usize> {
        // Batch the index maintenance: one retain pass per touched list
        // instead of one per victim (bulk deletions — compaction, GDPR —
        // hand in thousands of ids at once).
        let mut removed_set: HashSet<RunId> = HashSet::with_capacity(ids.len());
        let mut components: HashSet<String> = HashSet::new();
        let mut producer_ios: HashSet<String> = HashSet::new();
        let mut consumer_ios: HashSet<String> = HashSet::new();
        let mut starts: Vec<(u64, RunId)> = Vec::new();
        let mut status_victims: [bool; STATUS_COUNT] = [false; STATUS_COUNT];
        for id in ids {
            let run = self.run_shards[run_shard(id.0)].write().remove(&id.0);
            let Some(run) = run else {
                continue;
            };
            removed_set.insert(*id);
            starts.push((run.start_ms, *id));
            status_victims[status_slot(run.status)] = true;
            components.insert(run.component);
            producer_ios.extend(run.outputs);
            consumer_ios.extend(run.inputs);
        }
        if removed_set.is_empty() {
            return Ok(0);
        }
        for component in &components {
            if let Some(list) = self.by_component[name_shard(component)]
                .write()
                .get_mut(component.as_str())
            {
                list.retain(|r| !removed_set.contains(r));
            }
        }
        for io in &producer_ios {
            if let Some(list) = self.producers[name_shard(io)].write().get_mut(io.as_str()) {
                list.retain(|r| !removed_set.contains(r));
            }
        }
        for io in &consumer_ios {
            if let Some(list) = self.consumers[name_shard(io)].write().get_mut(io.as_str()) {
                list.retain(|r| !removed_set.contains(r));
            }
        }
        {
            // Empty time buckets are removed so the index's min/max keys
            // (and the planner's span estimate) stay tight.
            let mut g = self.by_start.write();
            for (start, id) in starts {
                if let Some(list) = g.get_mut(&start) {
                    list.retain(|r| *r != id);
                    if list.is_empty() {
                        g.remove(&start);
                    }
                }
            }
        }
        {
            let mut g = self.by_status.write();
            for (slot, touched) in status_victims.iter().enumerate() {
                if *touched {
                    g[slot].retain(|r| !removed_set.contains(r));
                }
            }
        }
        let removed = removed_set.len();
        self.runs_removed
            .fetch_add(removed as u64, Ordering::Relaxed);
        self.tele.runs_deleted.add(removed as u64);
        Ok(removed)
    }

    fn delete_io_pointers(&self, names: &[String]) -> Result<usize> {
        let mut removed = 0usize;
        {
            let mut g = self.io_pointers.write();
            for name in names {
                if g.remove(name).is_some() {
                    removed += 1;
                }
            }
        }
        for name in names {
            self.producers[name_shard(name)].write().remove(name);
            self.consumers[name_shard(name)].write().remove(name);
        }
        Ok(removed)
    }

    fn put_summary(&self, s: CompactionSummary) -> Result<()> {
        let mut g = self.summaries.write();
        let list = g.entry(s.component.clone()).or_default();
        let pos = list.partition_point(|x| x.window_start_ms <= s.window_start_ms);
        list.insert(pos, s);
        Ok(())
    }

    fn summaries(&self, component: &str) -> Result<Vec<CompactionSummary>> {
        Ok(self
            .summaries
            .read()
            .get(component)
            .cloned()
            .unwrap_or_default())
    }

    fn stats(&self) -> Result<StoreStats> {
        let runs = self.run_shards.iter().map(|s| s.read().len()).sum();
        let metric_points = self.metrics.read().series.values().map(Vec::len).sum();
        Ok(StoreStats {
            components: self.components.read().len(),
            runs,
            io_pointers: self.io_pointers.read().len(),
            metric_points,
            summaries: self.summaries.read().values().map(Vec::len).sum(),
            runs_removed: self.runs_removed.load(Ordering::Relaxed),
            events: self.events.read().len(),
            incidents: self.incidents.read().len(),
            diagnoses: self.diagnoses.read().values().map(Vec::len).sum(),
        })
    }

    fn log_events(&self, mut events: Vec<ObservabilityEvent>) -> Result<Vec<EventId>> {
        if events.is_empty() {
            return Ok(Vec::new());
        }
        // Ids come from the atomic counter; the journal lock is taken once
        // for the whole batch, matching the group-commit shape of the run
        // ingest path.
        let base = self
            .next_event_id
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        let mut ids = Vec::with_capacity(events.len());
        let mut kind_ids = Vec::with_capacity(events.len());
        for (i, e) in events.iter_mut().enumerate() {
            e.id = EventId(base + i as u64);
            ids.push(e.id);
            kind_ids.push((kind_slot(e.kind), e.id));
        }
        // Fan out first only if someone is listening: the common no-
        // subscriber case pays zero Arc allocations.
        let live = if self.bus.subscriber_count() > 0 {
            Some(
                events
                    .iter()
                    .map(|e| Arc::new(e.clone()))
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        {
            let mut g = self.events.write();
            // Concurrent batches may land out of id order; keep the
            // journal sorted so scans can cursor on the id.
            let sorted_append = g.last().is_none_or(|last| last.id.0 < base);
            if sorted_append {
                g.extend(events);
            } else {
                for e in events {
                    let pos = g.partition_point(|x| x.id < e.id);
                    g.insert(pos, e);
                }
            }
        }
        {
            // One kind-index lock per batch, mirroring the journal lock.
            let mut g = self.write_shard(&self.events_by_kind);
            for (slot, id) in kind_ids {
                insert_sorted(&mut g[slot], id);
            }
        }
        if let Some(live) = live {
            self.bus.publish(&live);
        }
        self.tele.events_logged.add(ids.len() as u64);
        Ok(ids)
    }

    fn scan_events(
        &self,
        since: Option<EventId>,
        filter: &EventFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ObservabilityEvent>> {
        let cap = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        if cap == 0 {
            return Ok(out);
        }
        if let Some(kind) = filter.kind {
            // Kind-routed: candidates come from the kind index and are
            // resolved in the journal by binary search, so a rare kind
            // examines its own postings rather than the whole journal.
            // The full filter still runs against every candidate.
            let ids: Vec<EventId> = {
                let idx = self.events_by_kind.read();
                self.tele.scan_locks.incr();
                idx[kind_slot(kind)].clone()
            };
            let g = self.events.read();
            self.tele.scan_locks.incr();
            let start = match since {
                Some(s) => ids.partition_point(|&e| e <= s),
                None => 0,
            };
            let mut scanned = 0u64;
            for &eid in &ids[start..] {
                scanned += 1;
                let pos = g.partition_point(|e| e.id < eid);
                if let Some(e) = g.get(pos) {
                    if e.id == eid && filter.matches(e) {
                        out.push(e.clone());
                        if out.len() >= cap {
                            break;
                        }
                    }
                }
            }
            drop(g);
            self.tele.rows_scanned.add(scanned);
            self.tele.rows_returned.add(out.len() as u64);
            self.tele.index_hits.incr();
            return Ok(out);
        }
        let g = self.events.read();
        self.tele.scan_locks.incr();
        let start = match since {
            Some(s) => g.partition_point(|e| e.id <= s),
            None => 0,
        };
        let mut scanned = 0u64;
        for e in &g[start..] {
            scanned += 1;
            if filter.matches(e) {
                out.push(e.clone());
                if out.len() >= cap {
                    break;
                }
            }
        }
        drop(g);
        self.tele.rows_scanned.add(scanned);
        self.tele.rows_returned.add(out.len() as u64);
        Ok(out)
    }

    fn upsert_incident(&self, incident: IncidentRecord) -> Result<()> {
        if incident.key.is_empty() {
            return Err(StoreError::InvalidRecord("incident key is empty".into()));
        }
        self.incidents
            .write()
            .insert(incident.key.clone(), incident);
        Ok(())
    }

    fn incidents(&self) -> Result<Vec<IncidentRecord>> {
        Ok(self.incidents.read().values().cloned().collect())
    }

    fn put_diagnosis(&self, incident_key: &str, rows: Vec<DiagnosisRecord>) -> Result<()> {
        if incident_key.is_empty() {
            return Err(StoreError::InvalidRecord("incident key is empty".into()));
        }
        let mut g = self.diagnoses.write();
        if rows.is_empty() {
            g.remove(incident_key);
        } else {
            g.insert(incident_key.to_string(), rows);
        }
        Ok(())
    }

    fn diagnoses(&self) -> Result<Vec<DiagnosisRecord>> {
        Ok(self
            .diagnoses
            .read()
            .values()
            .flat_map(|rows| rows.iter().cloned())
            .collect())
    }

    fn event_bus(&self) -> Option<&EventBus> {
        Some(&self.bus)
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.tele.registry)
    }
}

/// Upsert into the pointer table: preserve flag and first-seen time,
/// refresh type and artifact. Shared by the scalar and bundle paths.
fn upsert_pointer(
    table: &mut BTreeMap<String, IoPointerRecord>,
    rec: IoPointerRecord,
) -> Result<()> {
    if rec.name.is_empty() {
        return Err(StoreError::InvalidRecord("io pointer name is empty".into()));
    }
    match table.get_mut(&rec.name) {
        Some(existing) => {
            existing.ptype = rec.ptype;
            if rec.artifact.is_some() {
                existing.artifact = rec.artifact;
            }
        }
        None => {
            table.insert(rec.name.clone(), rec);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PointerType, RunStatus};

    fn run(component: &str, start: u64, inputs: &[&str], outputs: &[&str]) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 10,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn component_upsert_and_ordering() {
        let s = MemoryStore::new();
        s.register_component(ComponentRecord::named("zeta"))
            .unwrap();
        s.register_component(ComponentRecord::named("alpha"))
            .unwrap();
        let mut a = ComponentRecord::named("alpha");
        a.owner = "ml-team".into();
        s.register_component(a).unwrap();
        let all = s.components().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "alpha");
        assert_eq!(all[0].owner, "ml-team");
        assert_eq!(s.component("zeta").unwrap().unwrap().name, "zeta");
        assert!(s.component("nope").unwrap().is_none());
    }

    #[test]
    fn empty_component_name_rejected() {
        let s = MemoryStore::new();
        assert!(matches!(
            s.register_component(ComponentRecord::default()),
            Err(StoreError::InvalidRecord(_))
        ));
    }

    #[test]
    fn run_ids_are_monotonic_and_indexed() {
        let s = MemoryStore::new();
        let a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
        let b = s
            .log_run(run("clean", 200, &["raw.csv"], &["clean.csv"]))
            .unwrap();
        let c = s.log_run(run("etl", 300, &[], &["raw.csv"])).unwrap();
        assert!(a < b && b < c);
        assert_eq!(s.runs_for_component("etl").unwrap(), vec![a, c]);
        assert_eq!(s.producers_of("raw.csv").unwrap(), vec![a, c]);
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![b]);
        assert_eq!(s.latest_run("etl").unwrap().unwrap().id, c);
        assert_eq!(s.run_ids().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn default_store_matches_new() {
        // Regression: a derived Default left next_run_id = 0 and issued
        // RunId(0), diverging from new()'s RunId(1).
        let s = MemoryStore::default();
        let id = s.log_run(run("etl", 100, &[], &[])).unwrap();
        assert_eq!(id, RunId(1));
    }

    #[test]
    fn invalid_run_rejected() {
        let s = MemoryStore::new();
        let mut r = run("x", 100, &[], &[]);
        r.end_ms = 50;
        assert!(s.log_run(r).is_err());
    }

    #[test]
    fn batch_log_runs_matches_scalar() {
        let records = vec![
            run("etl", 100, &[], &["raw.csv"]),
            run("clean", 200, &["raw.csv"], &["clean.csv", "clean.csv"]),
            run("etl", 300, &[], &["raw.csv"]),
            run("infer", 400, &["clean.csv"], &["pred-0"]),
        ];
        let scalar = MemoryStore::new();
        for r in records.clone() {
            scalar.log_run(r).unwrap();
        }
        let batched = MemoryStore::new();
        let ids = batched.log_runs(records).unwrap();
        assert_eq!(ids, vec![RunId(1), RunId(2), RunId(3), RunId(4)]);
        assert_eq!(batched.run_ids().unwrap(), scalar.run_ids().unwrap());
        for io in ["raw.csv", "clean.csv", "pred-0"] {
            assert_eq!(
                batched.producers_of(io).unwrap(),
                scalar.producers_of(io).unwrap(),
                "producers of {io}"
            );
            assert_eq!(
                batched.consumers_of(io).unwrap(),
                scalar.consumers_of(io).unwrap(),
                "consumers of {io}"
            );
        }
        for c in ["etl", "clean", "infer"] {
            assert_eq!(
                batched.runs_for_component(c).unwrap(),
                scalar.runs_for_component(c).unwrap()
            );
        }
        // Duplicate output within one run indexed once.
        assert_eq!(batched.producers_of("clean.csv").unwrap(), vec![RunId(2)]);
        // A fresh scalar log continues above the batch.
        let next = batched.log_run(run("etl", 500, &[], &[])).unwrap();
        assert_eq!(next, RunId(5));
    }

    #[test]
    fn batch_log_runs_validates_before_logging() {
        let s = MemoryStore::new();
        let mut bad = run("x", 100, &[], &[]);
        bad.end_ms = 50;
        let err = s.log_runs(vec![run("ok", 1, &[], &["o"]), bad]);
        assert!(err.is_err());
        assert_eq!(s.stats().unwrap().runs, 0, "all-or-nothing validation");
        // Ids were not burned.
        assert_eq!(s.log_run(run("ok", 1, &[], &[])).unwrap(), RunId(1));
    }

    #[test]
    fn bundle_logs_run_pointers_and_stamped_metrics() {
        let s = MemoryStore::new();
        let id = s
            .log_run_bundle(RunBundle {
                run: run("infer", 100, &["features.csv"], &["pred-1"]),
                pointers: vec![
                    IoPointerRecord::new("features.csv", 100),
                    IoPointerRecord::new("pred-1", 100),
                ],
                metrics: vec![MetricRecord {
                    component: "infer".into(),
                    run_id: None,
                    name: "latency_ms".into(),
                    value: 3.5,
                    ts_ms: 110,
                }],
                events: vec![ObservabilityEvent::new(
                    crate::event::EventKind::RunFinished,
                    crate::event::EventSeverity::Info,
                    110,
                )
                .component("infer")],
            })
            .unwrap();
        assert_eq!(id, RunId(1));
        assert!(s.io_pointer("features.csv").unwrap().is_some());
        let pts = s.metrics("infer", "latency_ms").unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].run_id, Some(id), "bundle stamps the assigned id");
        assert_eq!(s.producers_of("pred-1").unwrap(), vec![id]);
        let events = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].run_id, Some(id), "bundle stamps event run ids");
        assert_eq!(events[0].id, EventId(1));
    }

    #[test]
    fn concurrent_scalar_ingest_is_consistent() {
        let s = MemoryStore::new();
        let store = &s;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..50u64 {
                        store
                            .log_run(run(
                                &format!("writer-{t}"),
                                t * 1000 + i,
                                &["shared.csv"],
                                &[],
                            ))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(s.stats().unwrap().runs, 200);
        let ids = s.run_ids().unwrap();
        assert_eq!(ids.len(), 200);
        assert_eq!(ids.first(), Some(&RunId(1)));
        assert_eq!(ids.last(), Some(&RunId(200)));
        let consumers = s.consumers_of("shared.csv").unwrap();
        assert_eq!(consumers.len(), 200);
        assert!(consumers.windows(2).all(|w| w[0] < w[1]), "index ascending");
    }

    #[test]
    fn io_pointer_upsert_preserves_flag_and_created() {
        let s = MemoryStore::new();
        s.upsert_io_pointer(IoPointerRecord::new("features.csv", 10))
            .unwrap();
        assert!(!s.set_flag("features.csv", true).unwrap());
        // Re-upsert with new type info; flag and created_ms must survive.
        let mut rec = IoPointerRecord::new("features.csv", 999);
        rec.ptype = PointerType::Data;
        s.upsert_io_pointer(rec).unwrap();
        let p = s.io_pointer("features.csv").unwrap().unwrap();
        assert!(p.flag);
        assert_eq!(p.created_ms, 10);
        assert_eq!(s.flagged().unwrap(), vec!["features.csv".to_string()]);
        assert!(s.set_flag("features.csv", false).unwrap());
        assert!(s.flagged().unwrap().is_empty());
    }

    #[test]
    fn flag_on_unknown_pointer_errors() {
        let s = MemoryStore::new();
        assert!(matches!(
            s.set_flag("ghost", true),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn metrics_keep_time_order_even_with_stragglers() {
        let s = MemoryStore::new();
        for (ts, v) in [(10u64, 1.0), (30, 3.0), (20, 2.0)] {
            s.log_metric(MetricRecord {
                component: "inference".into(),
                run_id: None,
                name: "accuracy".into(),
                value: v,
                ts_ms: ts,
            })
            .unwrap();
        }
        let pts = s.metrics("inference", "accuracy").unwrap();
        assert_eq!(
            pts.iter().map(|p| p.ts_ms).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(s.metric_names("inference").unwrap(), vec!["accuracy"]);
        assert!(s.metric_names("other").unwrap().is_empty());
    }

    #[test]
    fn metric_names_sorted_unique() {
        let s = MemoryStore::new();
        for name in ["z", "a", "z", "m"] {
            s.log_metric(MetricRecord {
                component: "c".into(),
                run_id: None,
                name: name.into(),
                value: 0.0,
                ts_ms: 0,
            })
            .unwrap();
        }
        assert_eq!(s.metric_names("c").unwrap(), vec!["a", "m", "z"]);
    }

    #[test]
    fn batch_log_metrics_matches_scalar() {
        let points: Vec<MetricRecord> = [(10u64, 1.0), (30, 3.0), (20, 2.0)]
            .iter()
            .map(|&(ts, v)| MetricRecord {
                component: "c".into(),
                run_id: None,
                name: "m".into(),
                value: v,
                ts_ms: ts,
            })
            .collect();
        let scalar = MemoryStore::new();
        for p in points.clone() {
            scalar.log_metric(p).unwrap();
        }
        let batched = MemoryStore::new();
        batched.log_metrics(points).unwrap();
        assert_eq!(
            batched.metrics("c", "m").unwrap(),
            scalar.metrics("c", "m").unwrap()
        );
        assert_eq!(batched.metric_names("c").unwrap(), vec!["m"]);
    }

    #[test]
    fn delete_runs_updates_all_indexes() {
        let s = MemoryStore::new();
        let a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
        let b = s
            .log_run(run("clean", 200, &["raw.csv"], &["clean.csv"]))
            .unwrap();
        assert_eq!(s.delete_runs(&[a, RunId(999)]).unwrap(), 1);
        assert!(s.run(a).unwrap().is_none());
        assert!(s.runs_for_component("etl").unwrap().is_empty());
        assert!(s.producers_of("raw.csv").unwrap().is_empty());
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![b]);
        assert_eq!(s.run_ids().unwrap(), vec![b]);
        assert_eq!(s.stats().unwrap().runs_removed, 1);
    }

    #[test]
    fn delete_io_pointers_removes_indexes() {
        let s = MemoryStore::new();
        s.upsert_io_pointer(IoPointerRecord::new("x.csv", 0))
            .unwrap();
        s.log_run(run("a", 1, &[], &["x.csv"])).unwrap();
        assert_eq!(s.delete_io_pointers(&["x.csv".to_string()]).unwrap(), 1);
        assert!(s.io_pointer("x.csv").unwrap().is_none());
        assert!(s.producers_of("x.csv").unwrap().is_empty());
    }

    #[test]
    fn summaries_sorted_by_window() {
        let s = MemoryStore::new();
        for start in [200u64, 100, 300] {
            s.put_summary(CompactionSummary {
                component: "etl".into(),
                window_start_ms: start,
                window_end_ms: start + 100,
                run_count: 1,
                failed_count: 0,
                mean_duration_ms: 5.0,
                metric_aggregates: Default::default(),
            })
            .unwrap();
        }
        let windows: Vec<u64> = s
            .summaries("etl")
            .unwrap()
            .iter()
            .map(|x| x.window_start_ms)
            .collect();
        assert_eq!(windows, vec![100, 200, 300]);
    }

    #[test]
    fn stats_counts_everything() {
        let s = MemoryStore::new();
        s.register_component(ComponentRecord::named("c")).unwrap();
        s.log_run(run("c", 1, &["in.csv"], &["out.csv"])).unwrap();
        s.upsert_io_pointer(IoPointerRecord::new("in.csv", 0))
            .unwrap();
        s.log_metric(MetricRecord {
            component: "c".into(),
            run_id: None,
            name: "m".into(),
            value: 1.0,
            ts_ms: 0,
        })
        .unwrap();
        let st = s.stats().unwrap();
        assert_eq!(st.components, 1);
        assert_eq!(st.runs, 1);
        assert_eq!(st.io_pointers, 1);
        assert_eq!(st.metric_points, 1);
    }

    #[test]
    fn restore_run_respects_ids() {
        let s = MemoryStore::new();
        let mut r = run("c", 1, &[], &["o"]);
        r.id = RunId(42);
        s.restore_run(r.clone()).unwrap();
        assert!(s.restore_run(r).is_err(), "duplicate id rejected");
        // A fresh run must get an id above the restored one.
        let next = s.log_run(run("c", 2, &[], &[])).unwrap();
        assert!(next.0 > 42);
    }

    #[test]
    fn store_telemetry_counts_ingest_ops() {
        let s = MemoryStore::new();
        s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
        s.log_runs(vec![run("etl", 200, &[], &[]), run("etl", 300, &[], &[])])
            .unwrap();
        s.log_run_bundle(RunBundle {
            run: run("infer", 400, &["raw.csv"], &["pred"]),
            pointers: vec![IoPointerRecord::new("raw.csv", 0)],
            metrics: vec![MetricRecord {
                component: "infer".into(),
                run_id: None,
                name: "latency_ms".into(),
                value: 1.0,
                ts_ms: 410,
            }],
            events: Vec::new(),
        })
        .unwrap();
        s.delete_runs(&[RunId(1)]).unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["store.runs_logged_total"], 4);
        assert_eq!(snap.counters["store.bundles_total"], 1);
        assert_eq!(snap.counters["store.pointer_upserts_total"], 1);
        assert_eq!(snap.counters["store.metrics_logged_total"], 1);
        assert_eq!(snap.counters["store.runs_deleted_total"], 1);
        let hist = &snap.histograms["store.log_run_bundle"];
        assert_eq!(hist.count, 1);
        assert!(hist.sum > 0, "bundle latency recorded");
    }

    #[test]
    fn trigger_failed_status_round_trips() {
        let s = MemoryStore::new();
        let mut r = run("c", 1, &[], &[]);
        r.status = RunStatus::TriggerFailed;
        let id = s.log_run(r).unwrap();
        assert_eq!(s.run(id).unwrap().unwrap().status, RunStatus::TriggerFailed);
    }

    /// 60 runs across 3 components with some failures; enough to populate
    /// every shard.
    fn scan_fixture() -> MemoryStore {
        let s = MemoryStore::new();
        for i in 0..60u64 {
            let mut r = run(
                ["etl", "clean", "infer"][(i % 3) as usize],
                100 + i,
                &[],
                &[],
            );
            if i % 7 == 0 {
                r.status = RunStatus::Failed;
            }
            s.log_run(r).unwrap();
        }
        s
    }

    /// The naive reference: run_ids + per-id fetch + filter + limit.
    fn naive_scan(
        s: &MemoryStore,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
    ) -> Vec<ComponentRunRecord> {
        let cap = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        if cap == 0 {
            return out;
        }
        for id in s.run_ids().unwrap() {
            if since.is_some_and(|x| id <= x) {
                continue;
            }
            let r = s.run(id).unwrap().unwrap();
            if filter.matches(&r) {
                out.push(r);
                if out.len() >= cap {
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn scan_runs_matches_naive_path() {
        let s = scan_fixture();
        let filters = [
            RunFilter::all(),
            RunFilter::all().with_component("etl"),
            RunFilter::all().with_status(RunStatus::Failed),
            RunFilter::all()
                .with_component("clean")
                .started_at_or_after(120)
                .started_at_or_before(150),
        ];
        for filter in &filters {
            for since in [None, Some(RunId(0)), Some(RunId(30)), Some(RunId(60))] {
                for limit in [None, Some(0), Some(5), Some(1000)] {
                    let got = s.scan_runs(since, filter, limit).unwrap();
                    let want = naive_scan(&s, since, filter, limit);
                    assert_eq!(
                        got, want,
                        "filter={filter:?} since={since:?} limit={limit:?}"
                    );
                    assert!(
                        got.windows(2).all(|w| w[0].id < w[1].id),
                        "ascending id order"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_runs_chunked_preserves_global_order_and_early_stop() {
        let s = scan_fixture();
        let mut seen: Vec<RunId> = Vec::new();
        s.scan_runs_chunked(Some(RunId(10)), &RunFilter::all(), 7, &mut |batch| {
            seen.extend(batch.iter().map(|r| r.id));
            true
        })
        .unwrap();
        let want: Vec<RunId> = (11..=60).map(RunId).collect();
        assert_eq!(seen, want, "chunks cover exactly the post-cursor runs");
        // Early stop: visitor bails after the first chunk.
        let mut batches = 0;
        s.scan_runs_chunked(None, &RunFilter::all(), 7, &mut |_| {
            batches += 1;
            false
        })
        .unwrap();
        assert_eq!(batches, 1);
    }

    #[test]
    fn component_history_matches_point_lookup_tail() {
        let s = scan_fixture();
        for limit in [0, 1, 5, 100] {
            let got = s.component_history("etl", limit).unwrap();
            let ids = s.runs_for_component("etl").unwrap();
            let want: Vec<ComponentRunRecord> = ids
                .iter()
                .rev()
                .take(limit)
                .map(|id| s.run(*id).unwrap().unwrap())
                .collect();
            assert_eq!(got, want, "limit={limit}");
        }
        assert!(s.component_history("ghost", 5).unwrap().is_empty());
    }

    #[test]
    fn scan_telemetry_counts_scanned_vs_returned() {
        let s = scan_fixture();
        let base = s.telemetry().unwrap().snapshot();
        assert_eq!(
            base.counters.get("query.rows_scanned").copied(),
            Some(0),
            "scan counters registered but untouched before the first scan"
        );
        // Selective filter: all 60 rows examined, 20 returned.
        let got = s
            .scan_runs(None, &RunFilter::all().with_component("etl"), None)
            .unwrap();
        assert_eq!(got.len(), 20);
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.rows_scanned"], 60);
        assert_eq!(snap.counters["query.rows_returned"], 20);
        // One lock acquisition per shard, not per row.
        assert_eq!(snap.counters["query.scan_locks_total"], 16);
    }

    #[test]
    fn scan_limit_bounds_clones_and_counts() {
        let s = scan_fixture();
        let got = s.scan_runs(None, &RunFilter::all(), Some(3)).unwrap();
        assert_eq!(
            got.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![RunId(1), RunId(2), RunId(3)]
        );
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.rows_returned"], 3);
    }

    use crate::event::{EventKind, EventSeverity};

    fn event(kind: EventKind, sev: EventSeverity, ts: u64, component: &str) -> ObservabilityEvent {
        ObservabilityEvent::new(kind, sev, ts).component(component)
    }

    #[test]
    fn log_events_assigns_monotonic_ids_and_scans_back() {
        let s = MemoryStore::new();
        let ids = s
            .log_events(vec![
                event(EventKind::RunStarted, EventSeverity::Info, 100, "etl"),
                event(EventKind::AlertFired, EventSeverity::Page, 200, "infer"),
                event(EventKind::AlertFired, EventSeverity::Warn, 300, "infer"),
            ])
            .unwrap();
        assert_eq!(ids, vec![EventId(1), EventId(2), EventId(3)]);
        let all = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].id < w[1].id));
        // Cursor: strictly after EventId(1).
        let after = s
            .scan_events(Some(EventId(1)), &EventFilter::all(), None)
            .unwrap();
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].id, EventId(2));
        // Filter + limit.
        let fired = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::AlertFired),
                Some(1),
            )
            .unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].severity, EventSeverity::Page);
        let paged = s
            .scan_events(
                None,
                &EventFilter::all().with_severity(EventSeverity::Page),
                None,
            )
            .unwrap();
        assert_eq!(paged.len(), 1);
        assert_eq!(s.stats().unwrap().events, 3);
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["store.events_logged_total"], 3);
    }

    #[test]
    fn log_events_publishes_to_live_subscribers() {
        let s = MemoryStore::new();
        let sub = s.event_bus().unwrap().subscribe();
        s.log_events(vec![event(
            EventKind::WalRecovered,
            EventSeverity::Warn,
            5,
            "",
        )])
        .unwrap();
        let got = sub.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, EventId(1), "published after id assignment");
        assert_eq!(got[0].kind, EventKind::WalRecovered);
    }

    #[test]
    fn restore_event_keeps_id_and_advances_counter() {
        let s = MemoryStore::new();
        let mut e = event(EventKind::RunStarted, EventSeverity::Info, 1, "etl");
        e.id = EventId(7);
        s.restore_event(e).unwrap();
        let mut early = event(EventKind::RunStarted, EventSeverity::Info, 0, "etl");
        early.id = EventId(3);
        s.restore_event(early).unwrap();
        let all = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(
            all.iter().map(|e| e.id.0).collect::<Vec<_>>(),
            vec![3, 7],
            "straggler restored in sorted position"
        );
        let next = s
            .log_events(vec![event(
                EventKind::RunFinished,
                EventSeverity::Info,
                2,
                "etl",
            )])
            .unwrap();
        assert_eq!(next, vec![EventId(8)], "fresh ids continue past restores");
        let mut unassigned = event(EventKind::RunStarted, EventSeverity::Info, 0, "x");
        unassigned.id = EventId(0);
        assert!(s.restore_event(unassigned).is_err());
    }

    #[test]
    fn incidents_upsert_by_key_and_list_ordered() {
        let s = MemoryStore::new();
        let inc = |key: &str, fires: u64| IncidentRecord {
            key: key.into(),
            state: crate::event::IncidentState::Open,
            severity: EventSeverity::Page,
            subject: "accuracy".into(),
            opened_ms: 100,
            last_fire_ms: 100,
            resolved_ms: None,
            fire_count: fires,
            suppressed_count: 0,
            burn_ms: 0,
            detail: String::new(),
        };
        s.upsert_incident(inc("zeta", 1)).unwrap();
        s.upsert_incident(inc("alpha", 1)).unwrap();
        s.upsert_incident(inc("zeta", 5)).unwrap();
        let all = s.incidents().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].key, "alpha");
        assert_eq!(all[1].fire_count, 5, "re-upsert replaced by key");
        assert_eq!(s.stats().unwrap().incidents, 2);
        assert!(s
            .upsert_incident(IncidentRecord {
                key: String::new(),
                ..inc("x", 1)
            })
            .is_err());
    }

    /// A store with runs spread over components, statuses, and times, so
    /// every index route has something to narrow.
    fn indexed_fixture() -> MemoryStore {
        let s = MemoryStore::new();
        for i in 0u64..30 {
            let mut r = run(
                ["etl", "train", "infer"][(i % 3) as usize],
                100 + i * 10,
                &[],
                &[],
            );
            if i % 5 == 0 {
                r.status = RunStatus::Failed;
            }
            s.log_run(r).unwrap();
        }
        s
    }

    #[test]
    fn indexed_scan_matches_full_scan_on_every_route() {
        let s = indexed_fixture();
        let filters = [
            RunFilter::all().with_component("train"),
            RunFilter::all().with_status(RunStatus::Failed),
            RunFilter::all()
                .started_at_or_after(150)
                .started_at_or_before(260),
            RunFilter::all()
                .with_id_at_or_after(7)
                .with_id_at_or_before(19),
            // Route column plus extra conjuncts the re-check must apply.
            RunFilter::all()
                .with_component("etl")
                .started_at_or_after(250),
            RunFilter::all().with_id_at_or_after(40), // clamps to empty
        ];
        for filter in &filters {
            let reference = s.scan_runs(None, filter, None).unwrap();
            for route in [
                IndexRoute::Component,
                IndexRoute::Status,
                IndexRoute::StartTime,
                IndexRoute::IdRange,
            ] {
                let Some(routed) = s.scan_runs_indexed(None, filter, None, route).unwrap() else {
                    assert!(!route.applicable(filter), "{route:?} refused {filter:?}");
                    continue;
                };
                assert_eq!(routed, reference, "route {route:?} on {filter:?}");
            }
        }
        // `since` and `limit` compose with the routed path.
        let filter = RunFilter::all().with_component("train");
        let all = s.scan_runs(None, &filter, None).unwrap();
        let since = all[2].id;
        let routed = s
            .scan_runs_indexed(Some(since), &filter, Some(3), IndexRoute::Component)
            .unwrap()
            .unwrap();
        assert_eq!(routed, all[3..6].to_vec());
    }

    #[test]
    fn inapplicable_route_misses_and_counts() {
        let s = indexed_fixture();
        let r = s
            .scan_runs_indexed(None, &RunFilter::all(), None, IndexRoute::Component)
            .unwrap();
        assert!(r.is_none(), "no component bound, route not applicable");
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["query.index_misses_total"], 1);
        assert_eq!(snap.counters["query.index_hits_total"], 0);
    }

    #[test]
    fn index_stats_reflect_live_runs() {
        let s = indexed_fixture();
        let stats = s.index_stats().unwrap().unwrap();
        assert_eq!(stats.runs, 30);
        assert_eq!(stats.distinct_components, 3);
        assert_eq!(stats.distinct_statuses, 2);
        assert_eq!(stats.min_start_ms, Some(100));
        assert_eq!(stats.max_start_ms, Some(390));
        assert_eq!(stats.next_id, 31);
        // Deletions shrink the stats (indexes drop their postings).
        let ids = s.run_ids().unwrap();
        s.delete_runs(&ids[..10]).unwrap();
        let stats = s.index_stats().unwrap().unwrap();
        assert_eq!(stats.runs, 20);
        assert_eq!(stats.min_start_ms, Some(200));
    }

    #[test]
    fn index_footprint_counts_entries_and_sets_gauge() {
        let s = indexed_fixture();
        s.log_events(vec![ObservabilityEvent::new(
            EventKind::AlertFired,
            EventSeverity::Page,
            50,
        )])
        .unwrap();
        let fp = s.index_footprint().unwrap();
        let names: Vec<&str> = fp.iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec!["by_component", "by_start", "by_status", "events_by_kind"]
        );
        let by = |n: &str| fp.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by("by_component").keys, 3);
        assert_eq!(by("by_component").entries, 30);
        assert_eq!(by("by_start").entries, 30);
        assert_eq!(by("by_status").keys, 2);
        assert_eq!(by("by_status").entries, 30);
        assert_eq!(by("events_by_kind").keys, 1);
        assert_eq!(by("events_by_kind").entries, 1);
        assert!(fp.iter().all(|f| f.approx_bytes > 0));
        let total: u64 = fp.iter().map(|f| f.approx_bytes).sum();
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.gauges["store.index_bytes"], total as i64);
    }

    #[test]
    fn kind_routed_event_scan_examines_only_postings() {
        let s = MemoryStore::new();
        let mut events = Vec::new();
        for i in 0u64..40 {
            events.push(ObservabilityEvent::new(
                EventKind::RunStarted,
                EventSeverity::Info,
                i,
            ));
        }
        events.push(
            ObservabilityEvent::new(EventKind::AlertFired, EventSeverity::Page, 99)
                .component("infer"),
        );
        s.log_events(events).unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        let before = snap.counters["query.rows_scanned"];
        let got = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::AlertFired),
                None,
            )
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kind, EventKind::AlertFired);
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(
            snap.counters["query.rows_scanned"] - before,
            1,
            "only the kind's postings examined, not the whole journal"
        );
        assert_eq!(snap.counters["query.index_hits_total"], 1);
    }
}
