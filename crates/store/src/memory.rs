//! In-memory [`Store`] implementation with the secondary indexes the
//! paper's execution layer needs at runtime (producer/consumer indexes for
//! dependency inference, per-component run lists for history queries).
//!
//! All state lives behind a single `parking_lot::RwLock`; reads (the hot
//! path for queries) take the shared lock, writes the exclusive lock.

use crate::error::{Result, StoreError};
use crate::record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, RunId,
};
use crate::store::{Store, StoreStats};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

#[derive(Default)]
struct Inner {
    components: BTreeMap<String, ComponentRecord>,
    runs: HashMap<u64, ComponentRunRecord>,
    /// component name → run ids ascending by start time
    runs_by_component: HashMap<String, Vec<RunId>>,
    /// all live run ids, ascending (ids are assigned monotonically and runs
    /// are logged at completion, so insertion order == id order)
    run_order: Vec<RunId>,
    io_pointers: BTreeMap<String, IoPointerRecord>,
    /// io name → producing runs ascending
    producers: HashMap<String, Vec<RunId>>,
    /// io name → consuming runs ascending
    consumers: HashMap<String, Vec<RunId>>,
    /// (component, metric) → points ascending by ts
    metrics: HashMap<(String, String), Vec<MetricRecord>>,
    /// component → ordered metric names
    metric_names: HashMap<String, Vec<String>>,
    /// component → compaction summaries ascending by window start
    summaries: HashMap<String, Vec<CompactionSummary>>,
    next_run_id: u64,
    runs_removed: u64,
}

/// In-memory store. Cheap to create; share via `Arc` for concurrent use.
#[derive(Default)]
pub struct MemoryStore {
    inner: RwLock<Inner>,
}

impl MemoryStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MemoryStore {
            inner: RwLock::new(Inner {
                next_run_id: 1,
                ..Default::default()
            }),
        }
    }

    /// Re-insert a run with a pre-assigned id. Used by WAL replay; also
    /// keeps `next_run_id` ahead of every replayed id.
    pub(crate) fn restore_run(&self, run: ComponentRunRecord) -> Result<()> {
        run.validate().map_err(StoreError::InvalidRecord)?;
        let mut g = self.inner.write();
        let id = run.id;
        if g.runs.contains_key(&id.0) {
            return Err(StoreError::AlreadyExists(format!("{id}")));
        }
        g.next_run_id = g.next_run_id.max(id.0 + 1);
        Self::index_run(&mut g, id, &run);
        g.runs.insert(id.0, run);
        Ok(())
    }

    fn index_run(g: &mut Inner, id: RunId, run: &ComponentRunRecord) {
        g.runs_by_component
            .entry(run.component.clone())
            .or_default()
            .push(id);
        g.run_order.push(id);
        // A run may legitimately list the same pointer twice (e.g. a file
        // read in two roles); index it once per run either way.
        for io in &run.outputs {
            let list = g.producers.entry(io.clone()).or_default();
            if list.last() != Some(&id) {
                list.push(id);
            }
        }
        for io in &run.inputs {
            let list = g.consumers.entry(io.clone()).or_default();
            if list.last() != Some(&id) {
                list.push(id);
            }
        }
    }
}

impl Store for MemoryStore {
    fn register_component(&self, rec: ComponentRecord) -> Result<()> {
        if rec.name.is_empty() {
            return Err(StoreError::InvalidRecord("component name is empty".into()));
        }
        self.inner.write().components.insert(rec.name.clone(), rec);
        Ok(())
    }

    fn component(&self, name: &str) -> Result<Option<ComponentRecord>> {
        Ok(self.inner.read().components.get(name).cloned())
    }

    fn components(&self) -> Result<Vec<ComponentRecord>> {
        Ok(self.inner.read().components.values().cloned().collect())
    }

    fn log_run(&self, mut run: ComponentRunRecord) -> Result<RunId> {
        run.validate().map_err(StoreError::InvalidRecord)?;
        let mut g = self.inner.write();
        let id = RunId(g.next_run_id);
        g.next_run_id += 1;
        run.id = id;
        Self::index_run(&mut g, id, &run);
        g.runs.insert(id.0, run);
        Ok(id)
    }

    fn run(&self, id: RunId) -> Result<Option<ComponentRunRecord>> {
        Ok(self.inner.read().runs.get(&id.0).cloned())
    }

    fn runs_for_component(&self, name: &str) -> Result<Vec<RunId>> {
        Ok(self
            .inner
            .read()
            .runs_by_component
            .get(name)
            .cloned()
            .unwrap_or_default())
    }

    fn latest_run(&self, name: &str) -> Result<Option<ComponentRunRecord>> {
        let g = self.inner.read();
        Ok(g.runs_by_component
            .get(name)
            .and_then(|ids| ids.last())
            .and_then(|id| g.runs.get(&id.0))
            .cloned())
    }

    fn run_ids(&self) -> Result<Vec<RunId>> {
        Ok(self.inner.read().run_order.clone())
    }

    fn upsert_io_pointer(&self, rec: IoPointerRecord) -> Result<()> {
        if rec.name.is_empty() {
            return Err(StoreError::InvalidRecord("io pointer name is empty".into()));
        }
        let mut g = self.inner.write();
        match g.io_pointers.get_mut(&rec.name) {
            Some(existing) => {
                // Preserve flag and first-seen time; refresh type/artifact.
                existing.ptype = rec.ptype;
                if rec.artifact.is_some() {
                    existing.artifact = rec.artifact;
                }
            }
            None => {
                g.io_pointers.insert(rec.name.clone(), rec);
            }
        }
        Ok(())
    }

    fn io_pointer(&self, name: &str) -> Result<Option<IoPointerRecord>> {
        Ok(self.inner.read().io_pointers.get(name).cloned())
    }

    fn io_pointers(&self) -> Result<Vec<IoPointerRecord>> {
        Ok(self.inner.read().io_pointers.values().cloned().collect())
    }

    fn producers_of(&self, io: &str) -> Result<Vec<RunId>> {
        Ok(self
            .inner
            .read()
            .producers
            .get(io)
            .cloned()
            .unwrap_or_default())
    }

    fn consumers_of(&self, io: &str) -> Result<Vec<RunId>> {
        Ok(self
            .inner
            .read()
            .consumers
            .get(io)
            .cloned()
            .unwrap_or_default())
    }

    fn set_flag(&self, io: &str, flag: bool) -> Result<bool> {
        let mut g = self.inner.write();
        let rec = g
            .io_pointers
            .get_mut(io)
            .ok_or_else(|| StoreError::NotFound(format!("io pointer {io}")))?;
        let prev = rec.flag;
        rec.flag = flag;
        Ok(prev)
    }

    fn flagged(&self) -> Result<Vec<String>> {
        Ok(self
            .inner
            .read()
            .io_pointers
            .values()
            .filter(|p| p.flag)
            .map(|p| p.name.clone())
            .collect())
    }

    fn log_metric(&self, m: MetricRecord) -> Result<()> {
        if m.name.is_empty() {
            return Err(StoreError::InvalidRecord("metric name is empty".into()));
        }
        let mut g = self.inner.write();
        let key = (m.component.clone(), m.name.clone());
        let names = g.metric_names.entry(m.component.clone()).or_default();
        if let Err(pos) = names.binary_search(&m.name) {
            names.insert(pos, m.name.clone());
        }
        let series = g.metrics.entry(key).or_default();
        // Points normally arrive in time order; tolerate stragglers.
        match series.last() {
            Some(last) if last.ts_ms > m.ts_ms => {
                let pos = series.partition_point(|p| p.ts_ms <= m.ts_ms);
                series.insert(pos, m);
            }
            _ => series.push(m),
        }
        Ok(())
    }

    fn metrics(&self, component: &str, name: &str) -> Result<Vec<MetricRecord>> {
        Ok(self
            .inner
            .read()
            .metrics
            .get(&(component.to_owned(), name.to_owned()))
            .cloned()
            .unwrap_or_default())
    }

    fn metric_names(&self, component: &str) -> Result<Vec<String>> {
        Ok(self
            .inner
            .read()
            .metric_names
            .get(component)
            .cloned()
            .unwrap_or_default())
    }

    fn delete_runs(&self, ids: &[RunId]) -> Result<usize> {
        use std::collections::HashSet;
        let mut g = self.inner.write();
        // Batch the index maintenance: one retain pass per touched list
        // instead of one per victim (bulk deletions — compaction, GDPR —
        // hand in thousands of ids at once).
        let mut removed_set: HashSet<RunId> = HashSet::with_capacity(ids.len());
        let mut components: HashSet<String> = HashSet::new();
        let mut producer_ios: HashSet<String> = HashSet::new();
        let mut consumer_ios: HashSet<String> = HashSet::new();
        for id in ids {
            let Some(run) = g.runs.remove(&id.0) else {
                continue;
            };
            removed_set.insert(*id);
            components.insert(run.component);
            producer_ios.extend(run.outputs);
            consumer_ios.extend(run.inputs);
        }
        if removed_set.is_empty() {
            return Ok(0);
        }
        for component in &components {
            if let Some(list) = g.runs_by_component.get_mut(component) {
                list.retain(|r| !removed_set.contains(r));
            }
        }
        for io in &producer_ios {
            if let Some(list) = g.producers.get_mut(io) {
                list.retain(|r| !removed_set.contains(r));
            }
        }
        for io in &consumer_ios {
            if let Some(list) = g.consumers.get_mut(io) {
                list.retain(|r| !removed_set.contains(r));
            }
        }
        g.run_order.retain(|r| !removed_set.contains(r));
        let removed = removed_set.len();
        g.runs_removed += removed as u64;
        Ok(removed)
    }

    fn delete_io_pointers(&self, names: &[String]) -> Result<usize> {
        let mut g = self.inner.write();
        let mut removed = 0usize;
        for name in names {
            if g.io_pointers.remove(name).is_some() {
                removed += 1;
            }
            g.producers.remove(name);
            g.consumers.remove(name);
        }
        Ok(removed)
    }

    fn put_summary(&self, s: CompactionSummary) -> Result<()> {
        let mut g = self.inner.write();
        let list = g.summaries.entry(s.component.clone()).or_default();
        let pos = list.partition_point(|x| x.window_start_ms <= s.window_start_ms);
        list.insert(pos, s);
        Ok(())
    }

    fn summaries(&self, component: &str) -> Result<Vec<CompactionSummary>> {
        Ok(self
            .inner
            .read()
            .summaries
            .get(component)
            .cloned()
            .unwrap_or_default())
    }

    fn stats(&self) -> Result<StoreStats> {
        let g = self.inner.read();
        Ok(StoreStats {
            components: g.components.len(),
            runs: g.runs.len(),
            io_pointers: g.io_pointers.len(),
            metric_points: g.metrics.values().map(Vec::len).sum(),
            summaries: g.summaries.values().map(Vec::len).sum(),
            runs_removed: g.runs_removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PointerType, RunStatus};

    fn run(component: &str, start: u64, inputs: &[&str], outputs: &[&str]) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 10,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn component_upsert_and_ordering() {
        let s = MemoryStore::new();
        s.register_component(ComponentRecord::named("zeta"))
            .unwrap();
        s.register_component(ComponentRecord::named("alpha"))
            .unwrap();
        let mut a = ComponentRecord::named("alpha");
        a.owner = "ml-team".into();
        s.register_component(a).unwrap();
        let all = s.components().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "alpha");
        assert_eq!(all[0].owner, "ml-team");
        assert_eq!(s.component("zeta").unwrap().unwrap().name, "zeta");
        assert!(s.component("nope").unwrap().is_none());
    }

    #[test]
    fn empty_component_name_rejected() {
        let s = MemoryStore::new();
        assert!(matches!(
            s.register_component(ComponentRecord::default()),
            Err(StoreError::InvalidRecord(_))
        ));
    }

    #[test]
    fn run_ids_are_monotonic_and_indexed() {
        let s = MemoryStore::new();
        let a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
        let b = s
            .log_run(run("clean", 200, &["raw.csv"], &["clean.csv"]))
            .unwrap();
        let c = s.log_run(run("etl", 300, &[], &["raw.csv"])).unwrap();
        assert!(a < b && b < c);
        assert_eq!(s.runs_for_component("etl").unwrap(), vec![a, c]);
        assert_eq!(s.producers_of("raw.csv").unwrap(), vec![a, c]);
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![b]);
        assert_eq!(s.latest_run("etl").unwrap().unwrap().id, c);
        assert_eq!(s.run_ids().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn invalid_run_rejected() {
        let s = MemoryStore::new();
        let mut r = run("x", 100, &[], &[]);
        r.end_ms = 50;
        assert!(s.log_run(r).is_err());
    }

    #[test]
    fn io_pointer_upsert_preserves_flag_and_created() {
        let s = MemoryStore::new();
        s.upsert_io_pointer(IoPointerRecord::new("features.csv", 10))
            .unwrap();
        assert!(!s.set_flag("features.csv", true).unwrap());
        // Re-upsert with new type info; flag and created_ms must survive.
        let mut rec = IoPointerRecord::new("features.csv", 999);
        rec.ptype = PointerType::Data;
        s.upsert_io_pointer(rec).unwrap();
        let p = s.io_pointer("features.csv").unwrap().unwrap();
        assert!(p.flag);
        assert_eq!(p.created_ms, 10);
        assert_eq!(s.flagged().unwrap(), vec!["features.csv".to_string()]);
        assert!(s.set_flag("features.csv", false).unwrap());
        assert!(s.flagged().unwrap().is_empty());
    }

    #[test]
    fn flag_on_unknown_pointer_errors() {
        let s = MemoryStore::new();
        assert!(matches!(
            s.set_flag("ghost", true),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn metrics_keep_time_order_even_with_stragglers() {
        let s = MemoryStore::new();
        for (ts, v) in [(10u64, 1.0), (30, 3.0), (20, 2.0)] {
            s.log_metric(MetricRecord {
                component: "inference".into(),
                run_id: None,
                name: "accuracy".into(),
                value: v,
                ts_ms: ts,
            })
            .unwrap();
        }
        let pts = s.metrics("inference", "accuracy").unwrap();
        assert_eq!(
            pts.iter().map(|p| p.ts_ms).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(s.metric_names("inference").unwrap(), vec!["accuracy"]);
        assert!(s.metric_names("other").unwrap().is_empty());
    }

    #[test]
    fn metric_names_sorted_unique() {
        let s = MemoryStore::new();
        for name in ["z", "a", "z", "m"] {
            s.log_metric(MetricRecord {
                component: "c".into(),
                run_id: None,
                name: name.into(),
                value: 0.0,
                ts_ms: 0,
            })
            .unwrap();
        }
        assert_eq!(s.metric_names("c").unwrap(), vec!["a", "m", "z"]);
    }

    #[test]
    fn delete_runs_updates_all_indexes() {
        let s = MemoryStore::new();
        let a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
        let b = s
            .log_run(run("clean", 200, &["raw.csv"], &["clean.csv"]))
            .unwrap();
        assert_eq!(s.delete_runs(&[a, RunId(999)]).unwrap(), 1);
        assert!(s.run(a).unwrap().is_none());
        assert!(s.runs_for_component("etl").unwrap().is_empty());
        assert!(s.producers_of("raw.csv").unwrap().is_empty());
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![b]);
        assert_eq!(s.run_ids().unwrap(), vec![b]);
        assert_eq!(s.stats().unwrap().runs_removed, 1);
    }

    #[test]
    fn delete_io_pointers_removes_indexes() {
        let s = MemoryStore::new();
        s.upsert_io_pointer(IoPointerRecord::new("x.csv", 0))
            .unwrap();
        s.log_run(run("a", 1, &[], &["x.csv"])).unwrap();
        assert_eq!(s.delete_io_pointers(&["x.csv".to_string()]).unwrap(), 1);
        assert!(s.io_pointer("x.csv").unwrap().is_none());
        assert!(s.producers_of("x.csv").unwrap().is_empty());
    }

    #[test]
    fn summaries_sorted_by_window() {
        let s = MemoryStore::new();
        for start in [200u64, 100, 300] {
            s.put_summary(CompactionSummary {
                component: "etl".into(),
                window_start_ms: start,
                window_end_ms: start + 100,
                run_count: 1,
                failed_count: 0,
                mean_duration_ms: 5.0,
                metric_aggregates: Default::default(),
            })
            .unwrap();
        }
        let windows: Vec<u64> = s
            .summaries("etl")
            .unwrap()
            .iter()
            .map(|x| x.window_start_ms)
            .collect();
        assert_eq!(windows, vec![100, 200, 300]);
    }

    #[test]
    fn stats_counts_everything() {
        let s = MemoryStore::new();
        s.register_component(ComponentRecord::named("c")).unwrap();
        s.log_run(run("c", 1, &["in.csv"], &["out.csv"])).unwrap();
        s.upsert_io_pointer(IoPointerRecord::new("in.csv", 0))
            .unwrap();
        s.log_metric(MetricRecord {
            component: "c".into(),
            run_id: None,
            name: "m".into(),
            value: 1.0,
            ts_ms: 0,
        })
        .unwrap();
        let st = s.stats().unwrap();
        assert_eq!(st.components, 1);
        assert_eq!(st.runs, 1);
        assert_eq!(st.io_pointers, 1);
        assert_eq!(st.metric_points, 1);
    }

    #[test]
    fn restore_run_respects_ids() {
        let s = MemoryStore::new();
        let mut r = run("c", 1, &[], &["o"]);
        r.id = RunId(42);
        s.restore_run(r.clone()).unwrap();
        assert!(s.restore_run(r).is_err(), "duplicate id rejected");
        // A fresh run must get an id above the restored one.
        let next = s.log_run(run("c", 2, &[], &[])).unwrap();
        assert!(next.0 > 42);
    }

    #[test]
    fn trigger_failed_status_round_trips() {
        let s = MemoryStore::new();
        let mut r = run("c", 1, &[], &[]);
        r.status = RunStatus::TriggerFailed;
        let id = s.log_run(r).unwrap();
        assert_eq!(s.run(id).unwrap().unwrap().status, RunStatus::TriggerFailed);
    }
}
