//! Batched snapshot scans over the run log: the read-side counterpart of
//! the batched ingest path.
//!
//! The §4.2 debugging workload — ad-hoc SQL, trace/history queries, and
//! lineage-graph refreshes — reads *many* runs per query. Fetching them
//! through [`crate::store::Store::run`] pays one shard-lock round trip
//! and one full record clone per row *before* any filtering happens.
//! [`crate::store::Store::scan_runs`] instead walks each shard under a
//! single lock acquisition and evaluates a [`RunFilter`] against borrowed
//! records, cloning only survivors; with a limit, record clones are
//! bounded by the limit rather than the match count.
//!
//! The filter deliberately covers only the predicates the SQL planner can
//! prove equivalent to the row-at-a-time path (id/component/status
//! equality, start/end time bounds); everything else stays a residual
//! predicate above the scan.

use crate::record::{ComponentRunRecord, RunStatus};

/// A conjunctive predicate over [`ComponentRunRecord`] fields that scan
/// implementations evaluate *inside* the shard lock, before cloning.
///
/// All fields are optional and AND-ed together; the default value matches
/// every run. Bounds are inclusive. An infeasible combination (e.g.
/// `min_start_ms > max_start_ms`) simply matches nothing — callers do not
/// need to pre-validate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunFilter {
    /// Exact component name.
    pub component: Option<String>,
    /// Exact completion status.
    pub status: Option<RunStatus>,
    /// Inclusive lower bound on the run id.
    pub min_id: Option<u64>,
    /// Inclusive upper bound on the run id.
    pub max_id: Option<u64>,
    /// Inclusive lower bound on `start_ms`.
    pub min_start_ms: Option<u64>,
    /// Inclusive upper bound on `start_ms`.
    pub max_start_ms: Option<u64>,
    /// Inclusive lower bound on `end_ms`.
    pub min_end_ms: Option<u64>,
    /// Inclusive upper bound on `end_ms`.
    pub max_end_ms: Option<u64>,
}

impl RunFilter {
    /// The match-everything filter.
    pub fn all() -> RunFilter {
        RunFilter::default()
    }

    /// Restrict to one component.
    pub fn with_component(mut self, name: impl Into<String>) -> RunFilter {
        self.component = Some(name.into());
        self
    }

    /// Restrict to one status.
    pub fn with_status(mut self, status: RunStatus) -> RunFilter {
        self.status = Some(status);
        self
    }

    /// Intersect with `start_ms >= ms`.
    pub fn started_at_or_after(mut self, ms: u64) -> RunFilter {
        self.min_start_ms = Some(self.min_start_ms.map_or(ms, |v| v.max(ms)));
        self
    }

    /// Intersect with `start_ms <= ms`.
    pub fn started_at_or_before(mut self, ms: u64) -> RunFilter {
        self.max_start_ms = Some(self.max_start_ms.map_or(ms, |v| v.min(ms)));
        self
    }

    /// True when every run matches (scan implementations may skip the
    /// per-record evaluation entirely).
    pub fn is_all(&self) -> bool {
        *self == RunFilter::default()
    }

    /// Evaluate the filter against one record.
    pub fn matches(&self, run: &ComponentRunRecord) -> bool {
        if let Some(c) = &self.component {
            if run.component != *c {
                return false;
            }
        }
        if let Some(s) = self.status {
            if run.status != s {
                return false;
            }
        }
        in_bounds(run.id.0, self.min_id, self.max_id)
            && in_bounds(run.start_ms, self.min_start_ms, self.max_start_ms)
            && in_bounds(run.end_ms, self.min_end_ms, self.max_end_ms)
    }
}

#[inline]
fn in_bounds(v: u64, lo: Option<u64>, hi: Option<u64>) -> bool {
    lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(component: &str, start: u64, end: u64, status: RunStatus) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: end,
            status,
            ..Default::default()
        }
    }

    #[test]
    fn default_matches_everything() {
        let f = RunFilter::all();
        assert!(f.is_all());
        assert!(f.matches(&run("etl", 0, 10, RunStatus::Success)));
        assert!(f.matches(&run("x", u64::MAX, u64::MAX, RunStatus::Failed)));
    }

    #[test]
    fn component_and_status_are_exact() {
        let f = RunFilter::all()
            .with_component("etl")
            .with_status(RunStatus::Failed);
        assert!(f.matches(&run("etl", 0, 1, RunStatus::Failed)));
        assert!(!f.matches(&run("etl", 0, 1, RunStatus::Success)));
        assert!(!f.matches(&run("ETL", 0, 1, RunStatus::Failed)));
        assert!(!f.is_all());
    }

    #[test]
    fn time_bounds_are_inclusive_and_intersect() {
        let f = RunFilter::all()
            .started_at_or_after(100)
            .started_at_or_before(200);
        assert!(f.matches(&run("c", 100, 101, RunStatus::Success)));
        assert!(f.matches(&run("c", 200, 201, RunStatus::Success)));
        assert!(!f.matches(&run("c", 99, 300, RunStatus::Success)));
        assert!(!f.matches(&run("c", 201, 300, RunStatus::Success)));
        // Re-applying a bound intersects rather than replaces.
        let tighter = f.clone().started_at_or_after(150);
        assert!(!tighter.matches(&run("c", 120, 130, RunStatus::Success)));
        let unchanged = f.started_at_or_after(50);
        assert!(!unchanged.matches(&run("c", 60, 70, RunStatus::Success)));
    }

    #[test]
    fn infeasible_bounds_match_nothing() {
        let f = RunFilter::all()
            .started_at_or_after(200)
            .started_at_or_before(100);
        assert!(!f.matches(&run("c", 150, 160, RunStatus::Success)));
    }
}
