//! Batched snapshot scans over the run log: the read-side counterpart of
//! the batched ingest path.
//!
//! The §4.2 debugging workload — ad-hoc SQL, trace/history queries, and
//! lineage-graph refreshes — reads *many* runs per query. Fetching them
//! through [`crate::store::Store::run`] pays one shard-lock round trip
//! and one full record clone per row *before* any filtering happens.
//! [`crate::store::Store::scan_runs`] instead walks each shard under a
//! single lock acquisition and evaluates a [`RunFilter`] against borrowed
//! records, cloning only survivors; with a limit, record clones are
//! bounded by the limit rather than the match count.
//!
//! The filter deliberately covers only the predicates the SQL planner can
//! prove equivalent to the row-at-a-time path (id/component/status
//! equality, start/end time bounds); everything else stays a residual
//! predicate above the scan.

use crate::record::{ComponentRunRecord, RunStatus};

/// A conjunctive predicate over [`ComponentRunRecord`] fields that scan
/// implementations evaluate *inside* the shard lock, before cloning.
///
/// All fields are optional and AND-ed together; the default value matches
/// every run. Bounds are inclusive. An infeasible combination (e.g.
/// `min_start_ms > max_start_ms`) simply matches nothing — callers do not
/// need to pre-validate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunFilter {
    /// Exact component name.
    pub component: Option<String>,
    /// Exact completion status.
    pub status: Option<RunStatus>,
    /// Inclusive lower bound on the run id.
    pub min_id: Option<u64>,
    /// Inclusive upper bound on the run id.
    pub max_id: Option<u64>,
    /// Inclusive lower bound on `start_ms`.
    pub min_start_ms: Option<u64>,
    /// Inclusive upper bound on `start_ms`.
    pub max_start_ms: Option<u64>,
    /// Inclusive lower bound on `end_ms`.
    pub min_end_ms: Option<u64>,
    /// Inclusive upper bound on `end_ms`.
    pub max_end_ms: Option<u64>,
}

impl RunFilter {
    /// The match-everything filter.
    pub fn all() -> RunFilter {
        RunFilter::default()
    }

    /// Restrict to one component.
    pub fn with_component(mut self, name: impl Into<String>) -> RunFilter {
        self.component = Some(name.into());
        self
    }

    /// Restrict to one status.
    pub fn with_status(mut self, status: RunStatus) -> RunFilter {
        self.status = Some(status);
        self
    }

    /// Intersect with `start_ms >= ms`.
    pub fn started_at_or_after(mut self, ms: u64) -> RunFilter {
        self.min_start_ms = Some(self.min_start_ms.map_or(ms, |v| v.max(ms)));
        self
    }

    /// Intersect with `start_ms <= ms`.
    pub fn started_at_or_before(mut self, ms: u64) -> RunFilter {
        self.max_start_ms = Some(self.max_start_ms.map_or(ms, |v| v.min(ms)));
        self
    }

    /// Intersect with `id >= id`.
    pub fn with_id_at_or_after(mut self, id: u64) -> RunFilter {
        self.min_id = Some(self.min_id.map_or(id, |v| v.max(id)));
        self
    }

    /// Intersect with `id <= id`.
    pub fn with_id_at_or_before(mut self, id: u64) -> RunFilter {
        self.max_id = Some(self.max_id.map_or(id, |v| v.min(id)));
        self
    }

    /// True when every run matches (scan implementations may skip the
    /// per-record evaluation entirely).
    pub fn is_all(&self) -> bool {
        *self == RunFilter::default()
    }

    /// Evaluate the filter against one record.
    pub fn matches(&self, run: &ComponentRunRecord) -> bool {
        if let Some(c) = &self.component {
            if run.component != *c {
                return false;
            }
        }
        if let Some(s) = self.status {
            if run.status != s {
                return false;
            }
        }
        in_bounds(run.id.0, self.min_id, self.max_id)
            && in_bounds(run.start_ms, self.min_start_ms, self.max_start_ms)
            && in_bounds(run.end_ms, self.min_end_ms, self.max_end_ms)
    }
}

#[inline]
fn in_bounds(v: u64, lo: Option<u64>, hi: Option<u64>) -> bool {
    lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h)
}

/// Which secondary index a run scan should resolve candidates from.
///
/// Produced by the query planner's selectivity estimate (or forced by a
/// caller that knows better) and consumed by
/// [`crate::store::Store::scan_runs_indexed`]. The route only narrows the
/// *candidate set*; the full [`RunFilter`] is still evaluated against
/// every candidate, so a route can never change results — only how many
/// rows are examined to produce them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexRoute {
    /// Resolve candidates from the component → run-ids index. Requires
    /// `filter.component` to be set.
    Component,
    /// Resolve candidates from the status index. Requires
    /// `filter.status` to be set.
    Status,
    /// Resolve candidates from the time-ordered (`start_ms`) index.
    /// Requires at least one of `filter.min_start_ms` /
    /// `filter.max_start_ms`.
    StartTime,
    /// Enumerate the primary-key range `[min_id, max_id]` directly.
    /// Requires at least one of `filter.min_id` / `filter.max_id`.
    IdRange,
}

impl IndexRoute {
    /// Short name for plans, telemetry, and `EXPLAIN` output.
    pub fn name(&self) -> &'static str {
        match self {
            IndexRoute::Component => "component",
            IndexRoute::Status => "status",
            IndexRoute::StartTime => "start_time",
            IndexRoute::IdRange => "id_range",
        }
    }

    /// True when `filter` carries the bounds this route needs.
    pub fn applicable(&self, filter: &RunFilter) -> bool {
        match self {
            IndexRoute::Component => filter.component.is_some(),
            IndexRoute::Status => filter.status.is_some(),
            IndexRoute::StartTime => filter.min_start_ms.is_some() || filter.max_start_ms.is_some(),
            IndexRoute::IdRange => filter.min_id.is_some() || filter.max_id.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(component: &str, start: u64, end: u64, status: RunStatus) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: end,
            status,
            ..Default::default()
        }
    }

    #[test]
    fn default_matches_everything() {
        let f = RunFilter::all();
        assert!(f.is_all());
        assert!(f.matches(&run("etl", 0, 10, RunStatus::Success)));
        assert!(f.matches(&run("x", u64::MAX, u64::MAX, RunStatus::Failed)));
    }

    #[test]
    fn component_and_status_are_exact() {
        let f = RunFilter::all()
            .with_component("etl")
            .with_status(RunStatus::Failed);
        assert!(f.matches(&run("etl", 0, 1, RunStatus::Failed)));
        assert!(!f.matches(&run("etl", 0, 1, RunStatus::Success)));
        assert!(!f.matches(&run("ETL", 0, 1, RunStatus::Failed)));
        assert!(!f.is_all());
    }

    #[test]
    fn time_bounds_are_inclusive_and_intersect() {
        let f = RunFilter::all()
            .started_at_or_after(100)
            .started_at_or_before(200);
        assert!(f.matches(&run("c", 100, 101, RunStatus::Success)));
        assert!(f.matches(&run("c", 200, 201, RunStatus::Success)));
        assert!(!f.matches(&run("c", 99, 300, RunStatus::Success)));
        assert!(!f.matches(&run("c", 201, 300, RunStatus::Success)));
        // Re-applying a bound intersects rather than replaces.
        let tighter = f.clone().started_at_or_after(150);
        assert!(!tighter.matches(&run("c", 120, 130, RunStatus::Success)));
        let unchanged = f.started_at_or_after(50);
        assert!(!unchanged.matches(&run("c", 60, 70, RunStatus::Success)));
    }

    #[test]
    fn id_bounds_are_inclusive_and_intersect() {
        use crate::record::RunId;
        let f = RunFilter::all()
            .with_id_at_or_after(10)
            .with_id_at_or_before(20);
        let with_id = |id: u64| {
            let mut r = run("c", 0, 1, RunStatus::Success);
            r.id = RunId(id);
            r
        };
        assert!(f.matches(&with_id(10)));
        assert!(f.matches(&with_id(20)));
        assert!(!f.matches(&with_id(9)));
        assert!(!f.matches(&with_id(21)));
        // Re-applying a bound intersects rather than replaces.
        let tighter = f.clone().with_id_at_or_before(15);
        assert!(!tighter.matches(&with_id(16)));
        let unchanged = f.with_id_at_or_after(5);
        assert!(!unchanged.matches(&with_id(6)));
    }

    #[test]
    fn routes_know_their_required_bounds() {
        let f = RunFilter::all()
            .with_component("etl")
            .with_id_at_or_after(3);
        assert!(IndexRoute::Component.applicable(&f));
        assert!(IndexRoute::IdRange.applicable(&f));
        assert!(!IndexRoute::Status.applicable(&f));
        assert!(!IndexRoute::StartTime.applicable(&f));
        assert!(IndexRoute::StartTime.applicable(&RunFilter::all().started_at_or_before(9)));
    }

    #[test]
    fn infeasible_bounds_match_nothing() {
        let f = RunFilter::all()
            .started_at_or_after(200)
            .started_at_or_before(100);
        assert!(!f.matches(&run("c", 150, 160, RunStatus::Success)));
    }
}
