//! The observability event journal: one append-only spine that every
//! signal the engine computes flows through.
//!
//! The paper's querying pillar assumes post-hoc questions can be asked
//! about *everything the system observed* — yet trigger verdicts, alert
//! decisions, staleness findings, and WAL recoveries are ephemeral unless
//! something writes them down. An [`ObservabilityEvent`] is that record:
//! a monotonic id, a timestamp, a severity, a [`EventKind`] taxonomy, the
//! subject component/run, and a structured payload. Events persist through
//! the normal store/WAL path (batched with the run bundle they belong to)
//! and fan out in-process through a bounded broadcast [`EventBus`] so live
//! consumers (`mltrace tail`, the incident fold) see them without polling.
//!
//! Incidents — the folded open→acknowledged→resolved view of Page-tier
//! alerts — are persisted as [`IncidentRecord`]s keyed by their dedup key.

use crate::record::RunId;
use crate::value::Value;
use mltrace_telemetry::{Counter, Gauge, Telemetry};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing identifier of a journal event, assigned by the
/// store at persist time (first id is 1; 0 means "not yet assigned").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evt#{}", self.0)
    }
}

/// Severity tier of a journal event, mirroring the alert tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventSeverity {
    /// Routine lifecycle traffic.
    Info,
    /// Something worth human eyes, but not paging anyone.
    Warn,
    /// Page-tier: an SLA-protected signal crossed its threshold.
    Page,
}

impl EventSeverity {
    /// Stable lowercase name, used in SQL output and predicates.
    pub fn name(&self) -> &'static str {
        match self {
            EventSeverity::Info => "info",
            EventSeverity::Warn => "warn",
            EventSeverity::Page => "page",
        }
    }

    /// Parse the exact output of [`Self::name`]. Deliberately rejects
    /// other casings so callers that push severity predicates into a scan
    /// cannot accidentally widen a comparison.
    pub fn from_name(name: &str) -> Option<EventSeverity> {
        match name {
            "info" => Some(EventSeverity::Info),
            "warn" => Some(EventSeverity::Warn),
            "page" => Some(EventSeverity::Page),
            _ => None,
        }
    }
}

/// What happened: the closed taxonomy of journal events. Every producer in
/// the engine maps onto one of these kinds, so `SELECT ... WHERE kind =`
/// queries can rely on a stable vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A component run entered the execution layer.
    RunStarted,
    /// A component run completed successfully.
    RunFinished,
    /// A component run failed (body error or trigger failure).
    RunFailed,
    /// A trigger produced an outcome (sync or async, before or after).
    TriggerOutcome,
    /// The staleness checker flagged a stale dependency.
    StalenessFlagged,
    /// An alert rule fired.
    AlertFired,
    /// An alert rule held but was suppressed by its cooldown.
    AlertSuppressed,
    /// A Page-tier alert opened a new incident.
    IncidentOpened,
    /// An open incident was acknowledged by an operator.
    IncidentAcknowledged,
    /// An incident was resolved (quiet period elapsed or manual).
    IncidentResolved,
    /// The WAL truncated a torn tail during crash recovery.
    WalRecovered,
    /// The WAL was opened under a non-default durability policy.
    WalPolicy,
    /// A checkpoint sealed the active log and wrote a store snapshot.
    CheckpointWritten,
    /// Compaction deleted WAL segments superseded by a snapshot.
    WalCompacted,
    /// The monitoring plane rolled a summary window and scored it against
    /// its frozen drift reference.
    DriftScored,
    /// The diagnosis engine ranked root-cause suspects for an incident;
    /// the payload carries the ranked hypothesis list.
    DiagnosisReady,
}

/// All kinds, in declaration order — handy for docs and exhaustive tests.
pub const EVENT_KINDS: [EventKind; 16] = [
    EventKind::RunStarted,
    EventKind::RunFinished,
    EventKind::RunFailed,
    EventKind::TriggerOutcome,
    EventKind::StalenessFlagged,
    EventKind::AlertFired,
    EventKind::AlertSuppressed,
    EventKind::IncidentOpened,
    EventKind::IncidentAcknowledged,
    EventKind::IncidentResolved,
    EventKind::WalRecovered,
    EventKind::WalPolicy,
    EventKind::CheckpointWritten,
    EventKind::WalCompacted,
    EventKind::DriftScored,
    EventKind::DiagnosisReady,
];

impl EventKind {
    /// Stable snake_case name, used in SQL output and predicates.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RunStarted => "run_started",
            EventKind::RunFinished => "run_finished",
            EventKind::RunFailed => "run_failed",
            EventKind::TriggerOutcome => "trigger_outcome",
            EventKind::StalenessFlagged => "staleness_flagged",
            EventKind::AlertFired => "alert_fired",
            EventKind::AlertSuppressed => "alert_suppressed",
            EventKind::IncidentOpened => "incident_opened",
            EventKind::IncidentAcknowledged => "incident_acknowledged",
            EventKind::IncidentResolved => "incident_resolved",
            EventKind::WalRecovered => "wal_recovered",
            EventKind::WalPolicy => "wal_policy",
            EventKind::CheckpointWritten => "checkpoint_written",
            EventKind::WalCompacted => "wal_compacted",
            EventKind::DriftScored => "drift_scored",
            EventKind::DiagnosisReady => "diagnosis_ready",
        }
    }

    /// Parse the exact output of [`Self::name`]. Rejects other casings so
    /// pushed-down `kind =` predicates stay equivalent to the naive path.
    pub fn from_name(name: &str) -> Option<EventKind> {
        EVENT_KINDS.into_iter().find(|k| k.name() == name)
    }
}

/// One record in the observability journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservabilityEvent {
    /// Monotonic journal id, assigned at persist time.
    #[serde(default)]
    pub id: EventId,
    /// Epoch-milliseconds timestamp of the observation.
    pub ts_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// How loudly it should surface.
    pub severity: EventSeverity,
    /// Subject component (empty for engine-level events such as WAL
    /// recovery).
    #[serde(default)]
    pub component: String,
    /// Subject run, when the event is about one. Events carried inside a
    /// [`crate::RunBundle`] may leave this `None`; the store stamps the
    /// assigned run id at log time, exactly like bundled metric points.
    #[serde(default)]
    pub run_id: Option<RunId>,
    /// One human-readable line.
    #[serde(default)]
    pub detail: String,
    /// Structured payload (threshold values, trigger names, policies...).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub payload: BTreeMap<String, Value>,
}

impl ObservabilityEvent {
    /// Start building an event; the store assigns the id at persist time.
    pub fn new(kind: EventKind, severity: EventSeverity, ts_ms: u64) -> ObservabilityEvent {
        ObservabilityEvent {
            id: EventId(0),
            ts_ms,
            kind,
            severity,
            component: String::new(),
            run_id: None,
            detail: String::new(),
            payload: BTreeMap::new(),
        }
    }

    /// Set the subject component.
    pub fn component(mut self, component: impl Into<String>) -> Self {
        self.component = component.into();
        self
    }

    /// Set the subject run.
    pub fn run(mut self, id: RunId) -> Self {
        self.run_id = Some(id);
        self
    }

    /// Set the human-readable detail line.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Attach one payload entry.
    pub fn payload(mut self, key: impl Into<String>, value: Value) -> Self {
        self.payload.insert(key.into(), value);
        self
    }

    /// One-line rendering for `mltrace tail`.
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "{:>8}  {:>13}  {:<5} {:<22}",
            self.id.to_string(),
            self.ts_ms,
            self.severity.name(),
            self.kind.name(),
        );
        if !self.component.is_empty() {
            out.push_str(&format!(" {:<16}", self.component));
        }
        if let Some(run) = self.run_id {
            out.push_str(&format!(" {run}"));
        }
        if !self.detail.is_empty() {
            out.push_str("  ");
            out.push_str(&self.detail);
        }
        out
    }
}

#[inline]
fn in_bounds(v: u64, lo: Option<u64>, hi: Option<u64>) -> bool {
    lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h)
}

/// Predicate over journal events, mirroring [`crate::RunFilter`]: every
/// field is a conjunct, `None` means "don't care". This is the unit the
/// query planner pushes `WHERE` clauses into.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct EventFilter {
    /// Exact kind.
    pub kind: Option<EventKind>,
    /// Exact severity.
    pub severity: Option<EventSeverity>,
    /// Exact subject component.
    pub component: Option<String>,
    /// Exact subject run id.
    pub run_id: Option<u64>,
    /// Inclusive lower bound on the event id.
    pub min_id: Option<u64>,
    /// Inclusive upper bound on the event id.
    pub max_id: Option<u64>,
    /// Inclusive lower bound on the timestamp.
    pub min_ts_ms: Option<u64>,
    /// Inclusive upper bound on the timestamp.
    pub max_ts_ms: Option<u64>,
}

impl EventFilter {
    /// The match-everything filter.
    pub fn all() -> EventFilter {
        EventFilter::default()
    }

    /// Restrict to one kind.
    pub fn with_kind(mut self, kind: EventKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restrict to one severity.
    pub fn with_severity(mut self, severity: EventSeverity) -> Self {
        self.severity = Some(severity);
        self
    }

    /// Restrict to one component.
    pub fn with_component(mut self, component: impl Into<String>) -> Self {
        self.component = Some(component.into());
        self
    }

    /// Intersect a lower timestamp bound with any existing one.
    pub fn at_or_after(mut self, ts_ms: u64) -> Self {
        self.min_ts_ms = Some(self.min_ts_ms.map_or(ts_ms, |t| t.max(ts_ms)));
        self
    }

    /// Intersect an upper timestamp bound with any existing one.
    pub fn at_or_before(mut self, ts_ms: u64) -> Self {
        self.max_ts_ms = Some(self.max_ts_ms.map_or(ts_ms, |t| t.min(ts_ms)));
        self
    }

    /// True when the filter matches everything (scan fast path).
    pub fn is_all(&self) -> bool {
        *self == EventFilter::default()
    }

    /// Does `event` satisfy every conjunct?
    pub fn matches(&self, event: &ObservabilityEvent) -> bool {
        self.kind.is_none_or(|k| k == event.kind)
            && self.severity.is_none_or(|s| s == event.severity)
            && self
                .component
                .as_deref()
                .is_none_or(|c| c == event.component)
            && self
                .run_id
                .is_none_or(|r| event.run_id.is_some_and(|id| id.0 == r))
            && in_bounds(event.id.0, self.min_id, self.max_id)
            && in_bounds(event.ts_ms, self.min_ts_ms, self.max_ts_ms)
    }
}

/// Lifecycle state of an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentState {
    /// Firing, nobody has looked yet.
    Open,
    /// An operator has seen it; still firing.
    Acknowledged,
    /// Quiet long enough (or manually closed).
    Resolved,
}

impl IncidentState {
    /// Stable lowercase name, used in SQL output.
    pub fn name(&self) -> &'static str {
        match self {
            IncidentState::Open => "open",
            IncidentState::Acknowledged => "acknowledged",
            IncidentState::Resolved => "resolved",
        }
    }

    /// Parse the exact output of [`Self::name`].
    pub fn from_name(name: &str) -> Option<IncidentState> {
        match name {
            "open" => Some(IncidentState::Open),
            "acknowledged" => Some(IncidentState::Acknowledged),
            "resolved" => Some(IncidentState::Resolved),
            _ => None,
        }
    }
}

/// Persisted view of one incident: Page-tier alert events folded by dedup
/// key into an open→acknowledged→resolved lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentRecord {
    /// Dedup key (the alert rule id): re-fires of the same rule update the
    /// existing incident instead of opening a new one.
    pub key: String,
    /// Lifecycle state.
    pub state: IncidentState,
    /// Severity of the underlying alerts.
    pub severity: EventSeverity,
    /// Metric or component the incident is about.
    #[serde(default)]
    pub subject: String,
    /// When the incident opened, epoch ms.
    pub opened_ms: u64,
    /// Timestamp of the most recent fire.
    pub last_fire_ms: u64,
    /// When the incident resolved, if it has.
    #[serde(default)]
    pub resolved_ms: Option<u64>,
    /// Fires folded into this incident (including the opening one).
    pub fire_count: u64,
    /// Cooldown-suppressed observations while the incident was open.
    #[serde(default)]
    pub suppressed_count: u64,
    /// SLA burn: how long the incident has been (or was) un-resolved.
    #[serde(default)]
    pub burn_ms: u64,
    /// One human-readable line about the triggering condition.
    #[serde(default)]
    pub detail: String,
}

/// One ranked root-cause hypothesis produced by the diagnosis engine for
/// an incident. The row set for an incident key is replaced wholesale on
/// re-diagnosis, so ranks within a key are always dense and current.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisRecord {
    /// Incident this hypothesis belongs to (an incident dedup key, or the
    /// synthetic `run:<id>` key for on-demand run diagnoses).
    pub incident_key: String,
    /// 1-based rank; 1 is the most likely culprit.
    pub rank: u64,
    /// Suspect component.
    pub suspect: String,
    /// Strongest evidence kind backing the suspicion (`run_failed`,
    /// `drift_onset`, `alert_fired`, `staleness_flagged`, `failure_rate`,
    /// `drift_score`).
    pub evidence_kind: String,
    /// Composite suspicion score; higher is more suspect. Always finite.
    pub score: f64,
    /// Epoch-ms onset of the suspect's earliest contributing anomaly;
    /// 0 when no timed evidence exists.
    pub onset_ms: u64,
    /// Lineage distance in hops upstream of the symptomatic component
    /// (0 = the symptomatic component itself).
    #[serde(default)]
    pub distance: u32,
    /// One human-readable evidence line for the CLI's evidence chain.
    #[serde(default)]
    pub detail: String,
}

/// Per-subscriber bounded queue. Publishing never blocks: when a queue is
/// full the oldest event is dropped and the drop is counted — a slow
/// `tail --follow` must not be able to stall ingest.
struct SubscriberQueue {
    queue: Mutex<VecDeque<Arc<ObservabilityEvent>>>,
    capacity: usize,
    closed: AtomicBool,
    dropped: AtomicU64,
}

/// Resolved telemetry handles so publish pays only relaxed atomics.
struct BusTelemetry {
    published: Counter,
    dropped: Counter,
    subscribers: Gauge,
    depth: Gauge,
}

/// In-process broadcast bus for journal events.
///
/// Bounded, drop-oldest: each subscriber owns a fixed-capacity queue;
/// `publish` appends to every live queue, evicting the oldest entries when
/// full (counted in `events.bus_dropped_total` and per-subscription via
/// [`EventSubscription::dropped`]). Events are shared as `Arc`s, so a
/// publish is one small allocation per event regardless of fan-out.
pub struct EventBus {
    subscribers: RwLock<Vec<Arc<SubscriberQueue>>>,
    tele: BusTelemetry,
}

impl EventBus {
    /// Default per-subscriber queue capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Create a bus registering its counters in `registry`.
    pub fn new(registry: &Telemetry) -> EventBus {
        EventBus {
            subscribers: RwLock::new(Vec::new()),
            tele: BusTelemetry {
                published: registry.counter("events.bus_published_total"),
                dropped: registry.counter("events.bus_dropped_total"),
                subscribers: registry.gauge("events.bus_subscribers"),
                depth: registry.gauge("events.bus_depth"),
            },
        }
    }

    /// Attach a subscriber with the default queue capacity.
    pub fn subscribe(&self) -> EventSubscription {
        self.subscribe_with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Attach a subscriber with an explicit queue capacity (min 1).
    pub fn subscribe_with_capacity(&self, capacity: usize) -> EventSubscription {
        let inner = Arc::new(SubscriberQueue {
            queue: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        });
        let mut subs = self.subscribers.write();
        subs.retain(|s| !s.closed.load(Ordering::Relaxed));
        subs.push(inner.clone());
        self.tele.subscribers.set(subs.len() as i64);
        EventSubscription { inner }
    }

    /// Fan `events` out to every live subscriber. Lock cost is one queue
    /// mutex per subscriber per *batch*, not per event.
    pub fn publish(&self, events: &[Arc<ObservabilityEvent>]) {
        if events.is_empty() {
            return;
        }
        self.tele.published.add(events.len() as u64);
        let subs = self.subscribers.read();
        if subs.is_empty() {
            return;
        }
        let mut max_depth = 0usize;
        let mut dropped = 0u64;
        for sub in subs.iter() {
            if sub.closed.load(Ordering::Relaxed) {
                continue;
            }
            let mut q = sub.queue.lock();
            let mut evicted = 0u64;
            for ev in events {
                if q.len() >= sub.capacity {
                    q.pop_front();
                    evicted += 1;
                }
                q.push_back(ev.clone());
            }
            max_depth = max_depth.max(q.len());
            drop(q);
            if evicted > 0 {
                sub.dropped.fetch_add(evicted, Ordering::Relaxed);
                dropped += evicted;
            }
        }
        if dropped > 0 {
            self.tele.dropped.add(dropped);
        }
        // Depth gauge tracks the laggiest subscriber: how far behind the
        // slowest live consumer is.
        self.tele.depth.set(max_depth as i64);
    }

    /// Number of live subscribers (closed ones are pruned lazily).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers
            .read()
            .iter()
            .filter(|s| !s.closed.load(Ordering::Relaxed))
            .count()
    }
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

/// A live subscription to the [`EventBus`]. Dropping it detaches the
/// queue; the bus prunes it on the next subscribe.
pub struct EventSubscription {
    inner: Arc<SubscriberQueue>,
}

impl EventSubscription {
    /// Drain everything queued since the last poll.
    pub fn poll(&self) -> Vec<Arc<ObservabilityEvent>> {
        let mut q = self.inner.queue.lock();
        q.drain(..).collect()
    }

    /// Pop a single event, oldest first.
    pub fn try_next(&self) -> Option<Arc<ObservabilityEvent>> {
        self.inner.queue.lock().pop_front()
    }

    /// Events currently waiting in the queue.
    pub fn depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Cumulative events this subscriber lost to queue overflow, counted
    /// eviction-side at publish time (id-gap counting at poll time would
    /// miss drops of events never polled).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for EventSubscription {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> ObservabilityEvent {
        ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, ts).component("etl")
    }

    #[test]
    fn kind_and_severity_names_round_trip_exactly() {
        for kind in EVENT_KINDS {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::from_name("Run_Started"), None);
        assert_eq!(EventKind::from_name("RUN_STARTED"), None);
        for sev in [
            EventSeverity::Info,
            EventSeverity::Warn,
            EventSeverity::Page,
        ] {
            assert_eq!(EventSeverity::from_name(sev.name()), Some(sev));
        }
        assert_eq!(EventSeverity::from_name("PAGE"), None);
        for st in [
            IncidentState::Open,
            IncidentState::Acknowledged,
            IncidentState::Resolved,
        ] {
            assert_eq!(IncidentState::from_name(st.name()), Some(st));
        }
    }

    #[test]
    fn filter_conjuncts_all_apply() {
        let mut e = ev(500);
        e.id = EventId(7);
        e.run_id = Some(RunId(3));
        assert!(EventFilter::all().matches(&e));
        assert!(EventFilter::all()
            .with_kind(EventKind::RunStarted)
            .matches(&e));
        assert!(!EventFilter::all()
            .with_kind(EventKind::RunFailed)
            .matches(&e));
        assert!(EventFilter::all()
            .with_severity(EventSeverity::Info)
            .matches(&e));
        assert!(!EventFilter::all()
            .with_severity(EventSeverity::Page)
            .matches(&e));
        assert!(EventFilter::all().with_component("etl").matches(&e));
        assert!(!EventFilter::all().with_component("train").matches(&e));
        assert!(EventFilter::all()
            .at_or_after(500)
            .at_or_before(500)
            .matches(&e));
        assert!(!EventFilter::all().at_or_after(501).matches(&e));
        let by_run = EventFilter {
            run_id: Some(3),
            ..EventFilter::default()
        };
        assert!(by_run.matches(&e));
        let by_other_run = EventFilter {
            run_id: Some(4),
            ..EventFilter::default()
        };
        assert!(!by_other_run.matches(&e));
        // Bound intersection keeps the tighter bound.
        let f = EventFilter::all().at_or_after(10).at_or_after(5);
        assert_eq!(f.min_ts_ms, Some(10));
        let f = EventFilter::all().at_or_before(10).at_or_before(20);
        assert_eq!(f.max_ts_ms, Some(10));
        assert!(EventFilter::all().is_all());
        assert!(!EventFilter::all().with_component("x").is_all());
    }

    #[test]
    fn bus_delivers_in_order_to_every_subscriber() {
        let t = Telemetry::new();
        let bus = EventBus::new(&t);
        let a = bus.subscribe();
        let b = bus.subscribe();
        let events: Vec<Arc<ObservabilityEvent>> = (0..5).map(|i| Arc::new(ev(i))).collect();
        bus.publish(&events);
        let got_a: Vec<u64> = a.poll().iter().map(|e| e.ts_ms).collect();
        let got_b: Vec<u64> = b.poll().iter().map(|e| e.ts_ms).collect();
        assert_eq!(got_a, vec![0, 1, 2, 3, 4]);
        assert_eq!(got_b, got_a);
        assert_eq!(t.counter("events.bus_published_total").get(), 5);
        assert_eq!(t.counter("events.bus_dropped_total").get(), 0);
    }

    #[test]
    fn bus_drops_oldest_when_a_queue_overflows() {
        let t = Telemetry::new();
        let bus = EventBus::new(&t);
        let slow = bus.subscribe_with_capacity(3);
        let events: Vec<Arc<ObservabilityEvent>> = (0..10).map(|i| Arc::new(ev(i))).collect();
        bus.publish(&events);
        let got: Vec<u64> = slow.poll().iter().map(|e| e.ts_ms).collect();
        assert_eq!(got, vec![7, 8, 9], "oldest evicted, newest kept");
        assert_eq!(slow.dropped(), 7);
        assert_eq!(t.counter("events.bus_dropped_total").get(), 7);
    }

    #[test]
    fn dropped_subscription_stops_receiving_and_is_pruned() {
        let t = Telemetry::new();
        let bus = EventBus::new(&t);
        let a = bus.subscribe();
        assert_eq!(bus.subscriber_count(), 1);
        drop(a);
        assert_eq!(bus.subscriber_count(), 0);
        bus.publish(&[Arc::new(ev(1))]);
        // Publishing to a bus with only closed subscribers drops nothing.
        assert_eq!(t.counter("events.bus_dropped_total").get(), 0);
        let _b = bus.subscribe();
        assert_eq!(bus.subscriber_count(), 1);
    }

    #[test]
    fn event_serde_round_trips_and_tolerates_missing_optionals() {
        let mut e = ev(42).detail("hello").payload("k", Value::Int(1));
        e.id = EventId(9);
        e.run_id = Some(RunId(2));
        let json = serde_json::to_string(&e).unwrap();
        let back: ObservabilityEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        // Old writers may omit optional fields entirely.
        let minimal = r#"{"ts_ms":1,"kind":"RunStarted","severity":"Info"}"#;
        let back: ObservabilityEvent = serde_json::from_str(minimal).unwrap();
        assert_eq!(back.id, EventId(0));
        assert!(back.run_id.is_none() && back.component.is_empty());
    }

    #[test]
    fn render_line_carries_the_essentials() {
        let mut e = ev(42).detail("started");
        e.id = EventId(3);
        e.run_id = Some(RunId(7));
        let line = e.render_line();
        assert!(line.contains("evt#3"), "{line}");
        assert!(line.contains("run_started"), "{line}");
        assert!(line.contains("info"), "{line}");
        assert!(line.contains("etl"), "{line}");
        assert!(line.contains("run#7"), "{line}");
        assert!(line.contains("started"), "{line}");
    }
}
