//! Time sources. Staleness (§3.1: "a dependency was generated a long time
//! ago, default 30 days") and retention are time-dependent, so every
//! time-reading code path takes a [`Clock`] to stay testable and
//! simulation-friendly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds in a day; used by staleness defaults and compaction windows.
pub const MS_PER_DAY: u64 = 24 * 60 * 60 * 1000;

/// A source of wall-clock time in epoch milliseconds.
pub trait Clock: Send + Sync {
    /// Current time in epoch milliseconds.
    fn now_ms(&self) -> u64;
}

/// The real system clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

/// A manually-advanced clock for tests and scenario simulation (e.g.
/// replaying six weeks of pipeline runs in milliseconds of wall time).
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Create a clock frozen at `start_ms`.
    pub fn starting_at(start_ms: u64) -> Arc<Self> {
        Arc::new(ManualClock {
            now: AtomicU64::new(start_ms),
        })
    }

    /// Advance the clock by `delta_ms`, returning the new time.
    pub fn advance(&self, delta_ms: u64) -> u64 {
        self.now.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Jump the clock to an absolute time (must not go backwards; clamps).
    pub fn set(&self, ms: u64) {
        self.now.fetch_max(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_ms(&self) -> u64 {
        (**self).now_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000, "epoch millis should be modern");
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::starting_at(1000);
        assert_eq!(c.now_ms(), 1000);
        assert_eq!(c.advance(500), 1500);
        assert_eq!(c.now_ms(), 1500);
        c.set(2000);
        assert_eq!(c.now_ms(), 2000);
        c.set(100); // cannot go backwards
        assert_eq!(c.now_ms(), 2000);
    }

    #[test]
    fn arc_clock_delegates() {
        let c: Arc<ManualClock> = ManualClock::starting_at(7);
        let as_dyn: Arc<dyn Clock> = c.clone();
        assert_eq!(as_dyn.now_ms(), 7);
        c.advance(1);
        assert_eq!(as_dyn.now_ms(), 8);
    }
}
