//! Durable [`Store`]: an in-memory store fronted by an append-only
//! JSON-lines write-ahead log.
//!
//! Observability logs must survive process restarts (the paper: regulated
//! industries "may need to query over previous months or even years"). The
//! WAL format is deliberately human-greppable — one JSON event per line —
//! because the log *is* the product in an observability tool.

use crate::error::{Result, StoreError};
use crate::memory::MemoryStore;
use crate::record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, RunId,
};
use crate::store::{Store, StoreStats};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One durable event. The WAL is the sequence of all mutations.
#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "event")]
enum WalEvent {
    Component { rec: ComponentRecord },
    Run { rec: ComponentRunRecord },
    IoPointer { rec: IoPointerRecord },
    Flag { io: String, flag: bool },
    Metric { rec: MetricRecord },
    DeleteRuns { ids: Vec<RunId> },
    DeleteIos { names: Vec<String> },
    Summary { rec: CompactionSummary },
}

/// A [`MemoryStore`] that records every mutation to an append-only log and
/// rebuilds itself from that log on open.
pub struct WalStore {
    mem: MemoryStore,
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl WalStore {
    /// Open (creating if absent) a WAL-backed store at `path` and replay
    /// any existing log into memory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mem = MemoryStore::new();
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for (lineno, line) in reader.lines().enumerate() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let event: WalEvent = serde_json::from_str(&line)
                    .map_err(|e| StoreError::Corrupt(format!("line {}: {e}", lineno + 1)))?;
                Self::apply(&mem, event)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(WalStore {
            mem,
            writer: Mutex::new(BufWriter::new(file)),
            path,
        })
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flush buffered log writes to the OS.
    pub fn sync(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        w.get_ref().sync_data()?;
        Ok(())
    }

    fn apply(mem: &MemoryStore, event: WalEvent) -> Result<()> {
        match event {
            WalEvent::Component { rec } => mem.register_component(rec),
            WalEvent::Run { rec } => mem.restore_run(rec),
            WalEvent::IoPointer { rec } => mem.upsert_io_pointer(rec),
            WalEvent::Flag { io, flag } => mem.set_flag(&io, flag).map(|_| ()),
            WalEvent::Metric { rec } => mem.log_metric(rec),
            WalEvent::DeleteRuns { ids } => mem.delete_runs(&ids).map(|_| ()),
            WalEvent::DeleteIos { names } => mem.delete_io_pointers(&names).map(|_| ()),
            WalEvent::Summary { rec } => mem.put_summary(rec),
        }
    }

    fn append(&self, event: &WalEvent) -> Result<()> {
        let mut line = serde_json::to_string(event)?;
        line.push('\n');
        let mut w = self.writer.lock();
        w.write_all(line.as_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Rewrite the log to contain only the store's current state (dropping
    /// deleted runs and superseded records). Used after compaction/deletion
    /// to reclaim disk. Returns bytes before and after.
    pub fn rewrite(&self) -> Result<(u64, u64)> {
        let before = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        let tmp = self.path.with_extension("rewrite");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let mut emit = |e: &WalEvent| -> Result<()> {
                let mut line = serde_json::to_string(e)?;
                line.push('\n');
                out.write_all(line.as_bytes())?;
                Ok(())
            };
            for rec in self.mem.components()? {
                emit(&WalEvent::Component { rec })?;
            }
            for rec in self.mem.io_pointers()? {
                let flag = rec.flag;
                let name = rec.name.clone();
                emit(&WalEvent::IoPointer { rec })?;
                if flag {
                    emit(&WalEvent::Flag {
                        io: name,
                        flag: true,
                    })?;
                }
            }
            for id in self.mem.run_ids()? {
                if let Some(rec) = self.mem.run(id)? {
                    emit(&WalEvent::Run { rec })?;
                }
            }
            for comp in self.mem.components()? {
                for name in self.mem.metric_names(&comp.name)? {
                    for rec in self.mem.metrics(&comp.name, &name)? {
                        emit(&WalEvent::Metric { rec })?;
                    }
                }
                for rec in self.mem.summaries(&comp.name)? {
                    emit(&WalEvent::Summary { rec })?;
                }
            }
            out.flush()?;
            out.get_ref().sync_data()?;
        }
        // Swap in the rewritten log and reopen the writer on it.
        {
            let mut w = self.writer.lock();
            w.flush()?;
            std::fs::rename(&tmp, &self.path)?;
            let file = OpenOptions::new().append(true).open(&self.path)?;
            *w = BufWriter::new(file);
        }
        let after = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        Ok((before, after))
    }
}

impl Store for WalStore {
    fn register_component(&self, rec: ComponentRecord) -> Result<()> {
        self.mem.register_component(rec.clone())?;
        self.append(&WalEvent::Component { rec })
    }

    fn component(&self, name: &str) -> Result<Option<ComponentRecord>> {
        self.mem.component(name)
    }

    fn components(&self) -> Result<Vec<ComponentRecord>> {
        self.mem.components()
    }

    fn log_run(&self, run: ComponentRunRecord) -> Result<RunId> {
        let id = self.mem.log_run(run)?;
        // Log the record with its assigned id so replay restores ids.
        let rec = self.mem.run(id)?.expect("run just logged must be present");
        self.append(&WalEvent::Run { rec })?;
        Ok(id)
    }

    fn run(&self, id: RunId) -> Result<Option<ComponentRunRecord>> {
        self.mem.run(id)
    }

    fn runs_for_component(&self, name: &str) -> Result<Vec<RunId>> {
        self.mem.runs_for_component(name)
    }

    fn latest_run(&self, name: &str) -> Result<Option<ComponentRunRecord>> {
        self.mem.latest_run(name)
    }

    fn run_ids(&self) -> Result<Vec<RunId>> {
        self.mem.run_ids()
    }

    fn upsert_io_pointer(&self, rec: IoPointerRecord) -> Result<()> {
        self.mem.upsert_io_pointer(rec.clone())?;
        self.append(&WalEvent::IoPointer { rec })
    }

    fn io_pointer(&self, name: &str) -> Result<Option<IoPointerRecord>> {
        self.mem.io_pointer(name)
    }

    fn io_pointers(&self) -> Result<Vec<IoPointerRecord>> {
        self.mem.io_pointers()
    }

    fn producers_of(&self, io: &str) -> Result<Vec<RunId>> {
        self.mem.producers_of(io)
    }

    fn consumers_of(&self, io: &str) -> Result<Vec<RunId>> {
        self.mem.consumers_of(io)
    }

    fn set_flag(&self, io: &str, flag: bool) -> Result<bool> {
        let prev = self.mem.set_flag(io, flag)?;
        self.append(&WalEvent::Flag {
            io: io.to_owned(),
            flag,
        })?;
        Ok(prev)
    }

    fn flagged(&self) -> Result<Vec<String>> {
        self.mem.flagged()
    }

    fn log_metric(&self, m: MetricRecord) -> Result<()> {
        self.mem.log_metric(m.clone())?;
        self.append(&WalEvent::Metric { rec: m })
    }

    fn metrics(&self, component: &str, name: &str) -> Result<Vec<MetricRecord>> {
        self.mem.metrics(component, name)
    }

    fn metric_names(&self, component: &str) -> Result<Vec<String>> {
        self.mem.metric_names(component)
    }

    fn delete_runs(&self, ids: &[RunId]) -> Result<usize> {
        let n = self.mem.delete_runs(ids)?;
        self.append(&WalEvent::DeleteRuns { ids: ids.to_vec() })?;
        Ok(n)
    }

    fn delete_io_pointers(&self, names: &[String]) -> Result<usize> {
        let n = self.mem.delete_io_pointers(names)?;
        self.append(&WalEvent::DeleteIos {
            names: names.to_vec(),
        })?;
        Ok(n)
    }

    fn put_summary(&self, s: CompactionSummary) -> Result<()> {
        self.mem.put_summary(s.clone())?;
        self.append(&WalEvent::Summary { rec: s })
    }

    fn summaries(&self, component: &str) -> Result<Vec<CompactionSummary>> {
        self.mem.summaries(component)
    }

    fn stats(&self) -> Result<StoreStats> {
        self.mem.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mltrace-wal-test-{}-{}.jsonl",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn run(component: &str, start: u64, inputs: &[&str], outputs: &[&str]) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 1,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn replay_restores_full_state() {
        let path = tmp("replay");
        let (a, b);
        {
            let s = WalStore::open(&path).unwrap();
            s.register_component(ComponentRecord::named("etl")).unwrap();
            s.upsert_io_pointer(IoPointerRecord::new("raw.csv", 5))
                .unwrap();
            a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            b = s
                .log_run(run("clean", 200, &["raw.csv"], &["clean.csv"]))
                .unwrap();
            s.set_flag("raw.csv", true).unwrap();
            s.log_metric(MetricRecord {
                component: "etl".into(),
                run_id: Some(a),
                name: "rows".into(),
                value: 123.0,
                ts_ms: 101,
            })
            .unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.component("etl").unwrap().unwrap().name, "etl");
        assert_eq!(s.run(a).unwrap().unwrap().component, "etl");
        assert_eq!(s.producers_of("raw.csv").unwrap(), vec![a]);
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![b]);
        assert_eq!(s.flagged().unwrap(), vec!["raw.csv".to_string()]);
        assert_eq!(s.metrics("etl", "rows").unwrap().len(), 1);
        // Fresh ids continue above replayed ones.
        let c = s.log_run(run("etl", 300, &[], &[])).unwrap();
        assert!(c > b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_applies_deletions() {
        let path = tmp("delete");
        {
            let s = WalStore::open(&path).unwrap();
            let a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            s.log_run(run("etl", 200, &[], &["raw.csv"])).unwrap();
            s.delete_runs(&[a]).unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_line_is_reported_with_line_number() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"event\":\"Component\",\"rec\"").unwrap();
        match WalStore::open(&path) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("line 1"), "{msg}"),
            Err(other) => panic!("expected corrupt error, got {other:?}"),
            Ok(_) => panic!("expected corrupt error, got Ok"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_shrinks_log_after_deletions() {
        let path = tmp("rewrite");
        let s = WalStore::open(&path).unwrap();
        let mut ids = Vec::new();
        for i in 0..50 {
            ids.push(s.log_run(run("c", i, &[], &["out.csv"])).unwrap());
        }
        s.delete_runs(&ids[..45]).unwrap();
        s.sync().unwrap();
        let (before, after) = s.rewrite().unwrap();
        assert!(after < before, "rewrite should shrink: {before} -> {after}");
        assert_eq!(s.stats().unwrap().runs, 5);
        // Store still writable after rewrite, and state replays.
        s.log_run(run("c", 999, &[], &[])).unwrap();
        s.sync().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_tolerated() {
        let path = tmp("blank");
        std::fs::write(&path, "\n\n").unwrap();
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 0);
        std::fs::remove_file(&path).ok();
    }
}
