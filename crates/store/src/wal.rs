//! Durable [`Store`]: an in-memory store fronted by an append-only
//! JSON-lines write-ahead log.
//!
//! Observability logs must survive process restarts (the paper: regulated
//! industries "may need to query over previous months or even years"). The
//! WAL format is deliberately human-greppable — one JSON event per line —
//! because the log *is* the product in an observability tool.
//!
//! # Durability policies (group commit)
//!
//! At the paper's §3.4 scale (Ω(1 million) ingested nodes per day) a
//! `write` + `flush` syscall pair per event is the bottleneck, so the
//! writer supports group commit via [`DurabilityPolicy`]:
//!
//! | policy | flushed to OS | data at risk on crash |
//! |---|---|---|
//! | [`EveryEvent`](DurabilityPolicy::EveryEvent) | after every event (default) | none past the last append |
//! | [`Batch(n)`](DurabilityPolicy::Batch) | every `n` buffered events | up to `n − 1` events |
//! | [`Interval(ms)`](DurabilityPolicy::Interval) | on the first write `ms` after the previous flush | up to one interval of events |
//! | [`OnSync`](DurabilityPolicy::OnSync) | only on [`WalStore::sync`] | everything since the last `sync` |
//!
//! Whatever the policy, [`WalStore::sync`] remains the hard barrier: it
//! flushes the buffer *and* `fsync`s, so events appended before a `sync`
//! that returned `Ok` survive any crash. "Flushed to OS" above means the
//! data survives a process crash but not a machine crash — only `sync`
//! guarantees the latter.
//!
//! # Crash recovery
//!
//! Events are written as `<json>\n` in a single buffered write, so a crash
//! mid-append can leave at most one partial line, at the tail, with no
//! trailing newline. [`WalStore::open`] recovers from exactly that shape:
//! the torn tail is truncated away and [`WalStore::recovered`] reports
//! `true`. A malformed line *followed by more data* (or any complete line
//! that fails to parse) is real corruption and still fails the open with
//! [`StoreError::Corrupt`].

use crate::error::{Result, StoreError};
use crate::event::{
    EventBus, EventFilter, EventId, EventKind, EventSeverity, IncidentRecord, ObservabilityEvent,
};
use crate::memory::MemoryStore;
use crate::record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, RunId,
};
use crate::scan::RunFilter;
use crate::store::{RunBundle, Store, StoreStats};
use crate::value::Value;
use mltrace_telemetry::{Counter, Histogram, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One durable event. The WAL is the sequence of all mutations.
#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "event")]
enum WalEvent {
    Component { rec: ComponentRecord },
    Run { rec: ComponentRunRecord },
    IoPointer { rec: IoPointerRecord },
    Flag { io: String, flag: bool },
    Metric { rec: MetricRecord },
    DeleteRuns { ids: Vec<RunId> },
    DeleteIos { names: Vec<String> },
    Summary { rec: CompactionSummary },
    Obs { rec: ObservabilityEvent },
    Incident { rec: IncidentRecord },
}

/// When buffered WAL events are flushed to the OS (see the module docs for
/// the trade-off table). [`WalStore::sync`] is the durability barrier under
/// every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityPolicy {
    /// Flush after every event — today's behavior and the default.
    #[default]
    EveryEvent,
    /// Flush once `n` events have accumulated since the last flush.
    Batch(usize),
    /// Flush on the first write at least this many milliseconds after the
    /// previous flush. (No background timer: an idle store flushes on the
    /// next write or `sync`.)
    Interval(u64),
    /// Flush only on [`WalStore::sync`] (or when the internal buffer
    /// fills). Fastest; everything since the last `sync` is at risk.
    OnSync,
}

/// Serialize one event in the on-disk line format (`<json>\n`) onto `buf`.
/// The single definition of the format — `append`, `append_all`, and
/// `rewrite` all go through here.
fn encode_event(buf: &mut Vec<u8>, event: &WalEvent) -> Result<()> {
    serde_json::to_writer(&mut *buf, event)?;
    buf.push(b'\n');
    Ok(())
}

/// Wall-clock milliseconds for journal events the WAL itself emits
/// (recovery, policy). The store layer has no injected clock; these are
/// operator-facing timestamps, not test-controlled ones.
fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Incrementally read journal events appended to the WAL at `path` from
/// byte `offset` onward, without opening the store (and so without taking
/// the owning process's locks). Complete lines that are not journal events
/// (runs, metrics, …) are skipped; a torn tail — a partial line the owning
/// process is still writing — is left in place for the next poll, exactly
/// as crash recovery treats it. If the log shrank underneath us (a
/// [`WalStore::rewrite`]), reading restarts from the top. Returns the
/// decoded events and the offset to resume from. This is the cross-process
/// streaming path behind `mltrace tail --follow`.
pub fn read_events_from(
    path: impl AsRef<Path>,
    offset: u64,
) -> Result<(Vec<ObservabilityEvent>, u64)> {
    let path = path.as_ref();
    let Ok(meta) = std::fs::metadata(path) else {
        return Ok((Vec::new(), offset));
    };
    let mut at = if offset > meta.len() { 0 } else { offset };
    let mut reader = BufReader::new(File::open(path)?);
    reader.seek(SeekFrom::Start(at))?;
    let mut line = String::new();
    let mut out = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || !line.ends_with('\n') {
            break;
        }
        if let Ok(WalEvent::Obs { rec }) =
            serde_json::from_str::<WalEvent>(line.trim_end_matches('\n'))
        {
            out.push(rec);
        }
        at += n as u64;
    }
    Ok((out, at))
}

/// Pre-resolved telemetry handles for the WAL's hot paths. Cloned into
/// the writer so flush accounting happens under the writer lock without
/// touching the registry.
#[derive(Clone)]
struct WalTelemetry {
    /// Physical append calls (single or batched).
    appends: Counter,
    /// Events appended (a batch of N counts N).
    events: Counter,
    /// Flushes of buffered events to the OS.
    flushes: Counter,
    /// `fsync` barriers issued by [`WalStore::sync`].
    fsyncs: Counter,
    /// Bytes handed to the log writer.
    bytes: Counter,
    /// Torn-tail truncations performed on open.
    recoveries: Counter,
    /// Log rewrites (compaction reclaim).
    rewrites: Counter,
    /// Events per flush — the group-commit batch-size distribution. The
    /// ratio of `wal.append_events_total` to `wal.flushes_total` is the
    /// syscall amortization the §3.4 scale path buys.
    batch_events: Histogram,
    /// Latency of a physical WAL append, single or batched (serialize +
    /// buffered write + any policy-due flush).
    append_latency: Histogram,
}

impl WalTelemetry {
    fn new(registry: &Telemetry) -> Self {
        WalTelemetry {
            appends: registry.counter("wal.appends_total"),
            events: registry.counter("wal.append_events_total"),
            flushes: registry.counter("wal.flushes_total"),
            fsyncs: registry.counter("wal.fsyncs_total"),
            bytes: registry.counter("wal.bytes_written_total"),
            recoveries: registry.counter("wal.recoveries_total"),
            rewrites: registry.counter("wal.rewrites_total"),
            batch_events: registry.histogram("wal.group_commit_events"),
            append_latency: registry.histogram("wal.append_all"),
        }
    }
}

/// The log writer plus the group-commit bookkeeping it needs, kept under
/// one mutex so flush decisions see a consistent count.
struct WalWriter {
    out: BufWriter<File>,
    /// Events written since the last flush-to-OS.
    pending_events: usize,
    last_flush: Instant,
    tele: WalTelemetry,
}

impl WalWriter {
    fn new(file: File, tele: WalTelemetry) -> Self {
        WalWriter {
            out: BufWriter::new(file),
            pending_events: 0,
            last_flush: Instant::now(),
            tele,
        }
    }

    /// Append pre-serialized events and flush if the policy says so.
    fn write(&mut self, bytes: &[u8], events: usize, policy: DurabilityPolicy) -> Result<()> {
        self.out.write_all(bytes)?;
        self.pending_events += events;
        self.tele.bytes.add(bytes.len() as u64);
        self.tele.events.add(events as u64);
        let due = match policy {
            DurabilityPolicy::EveryEvent => true,
            DurabilityPolicy::Batch(n) => self.pending_events >= n,
            DurabilityPolicy::Interval(ms) => {
                self.last_flush.elapsed() >= Duration::from_millis(ms)
            }
            DurabilityPolicy::OnSync => false,
        };
        if due {
            self.flush_os()?;
        }
        Ok(())
    }

    /// Flush buffered bytes to the OS (not an fsync).
    fn flush_os(&mut self) -> Result<()> {
        self.out.flush()?;
        if self.pending_events > 0 {
            self.tele.flushes.incr();
            self.tele.batch_events.record(self.pending_events as u64);
        }
        self.pending_events = 0;
        self.last_flush = Instant::now();
        Ok(())
    }
}

/// A [`MemoryStore`] that records every mutation to an append-only log and
/// rebuilds itself from that log on open.
pub struct WalStore {
    mem: MemoryStore,
    writer: Mutex<WalWriter>,
    path: PathBuf,
    policy: DurabilityPolicy,
    recovered: bool,
    /// Shared with `mem`, so `store.*` and `wal.*` metrics land in one
    /// registry and one snapshot covers the whole storage layer.
    registry: Telemetry,
    tele: WalTelemetry,
}

impl WalStore {
    /// Open (creating if absent) a WAL-backed store at `path` with the
    /// default [`DurabilityPolicy::EveryEvent`] and replay any existing
    /// log into memory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, DurabilityPolicy::default())
    }

    /// Open with an explicit durability policy (see the module docs).
    pub fn open_with(path: impl AsRef<Path>, policy: DurabilityPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let registry = Telemetry::new();
        let tele = WalTelemetry::new(&registry);
        let mem = MemoryStore::with_telemetry(registry.clone());
        let mut recovered = false;
        let mut missing_final_newline = false;
        if path.exists() {
            let mut reader = BufReader::new(File::open(&path)?);
            let mut line = String::new();
            let mut offset: u64 = 0;
            let mut lineno: usize = 0;
            let mut truncate_at: Option<u64> = None;
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    break;
                }
                lineno += 1;
                let complete = line.ends_with('\n');
                if !line.trim().is_empty() {
                    match serde_json::from_str::<WalEvent>(line.trim_end_matches('\n')) {
                        Ok(event) => Self::apply(&mem, event)?,
                        Err(_) if !complete => {
                            // A partial line with no trailing newline can
                            // only be the tail of a crashed append: drop it.
                            truncate_at = Some(offset);
                            break;
                        }
                        Err(e) => {
                            return Err(StoreError::Corrupt(format!("line {lineno}: {e}")));
                        }
                    }
                }
                // A parseable final line without its newline (e.g. a
                // hand-edited log) is kept, but the separator must be
                // restored before anything is appended after it.
                missing_final_newline = !complete;
                offset += n as u64;
            }
            if let Some(at) = truncate_at {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(at)?;
                f.sync_data()?;
                recovered = true;
                tele.recoveries.incr();
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = WalWriter::new(file, tele.clone());
        if missing_final_newline {
            writer.write(b"\n", 0, DurabilityPolicy::EveryEvent)?;
        }
        let store = WalStore {
            mem,
            writer: Mutex::new(writer),
            path,
            policy,
            recovered,
            registry,
            tele,
        };
        // Journal the open itself: a torn-tail truncation is an operator
        // fact worth keeping (queryable later via `SELECT … FROM events`),
        // and a relaxed fsync policy changes what a crash can lose, so the
        // transition is recorded too. The default policy is not journaled —
        // every CLI invocation opens the store and would spam the log.
        if store.recovered {
            store.log_events(vec![ObservabilityEvent::new(
                EventKind::WalRecovered,
                EventSeverity::Warn,
                wall_ms(),
            )
            .component("wal")
            .detail(format!(
                "torn tail truncated during recovery of {}",
                store.path.display()
            ))])?;
        }
        if store.policy != DurabilityPolicy::EveryEvent {
            store.log_events(vec![ObservabilityEvent::new(
                EventKind::WalPolicy,
                EventSeverity::Info,
                wall_ms(),
            )
            .component("wal")
            .detail(format!("durability policy {:?}", store.policy))
            .payload("policy", Value::Str(format!("{:?}", store.policy)))])?;
        }
        Ok(store)
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The durability policy this store was opened with.
    pub fn durability(&self) -> DurabilityPolicy {
        self.policy
    }

    /// True if the last [`WalStore::open`] truncated a torn trailing line
    /// left by a crash mid-append.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Flush buffered log writes to the OS **and** fsync. The hard
    /// durability barrier under every [`DurabilityPolicy`].
    pub fn sync(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush_os()?;
        w.out.get_ref().sync_data()?;
        self.tele.fsyncs.incr();
        Ok(())
    }

    fn apply(mem: &MemoryStore, event: WalEvent) -> Result<()> {
        match event {
            WalEvent::Component { rec } => mem.register_component(rec),
            WalEvent::Run { rec } => mem.restore_run(rec),
            WalEvent::IoPointer { rec } => mem.upsert_io_pointer(rec),
            WalEvent::Flag { io, flag } => mem.set_flag(&io, flag).map(|_| ()),
            WalEvent::Metric { rec } => mem.log_metric(rec),
            WalEvent::DeleteRuns { ids } => mem.delete_runs(&ids).map(|_| ()),
            WalEvent::DeleteIos { names } => mem.delete_io_pointers(&names).map(|_| ()),
            WalEvent::Summary { rec } => mem.put_summary(rec),
            WalEvent::Obs { rec } => mem.restore_event(rec),
            WalEvent::Incident { rec } => mem.upsert_incident(rec),
        }
    }

    fn append(&self, event: &WalEvent) -> Result<()> {
        // Serialize outside the writer lock.
        let started = Instant::now();
        let mut buf = Vec::with_capacity(256);
        encode_event(&mut buf, event)?;
        self.writer.lock().write(&buf, 1, self.policy)?;
        self.tele.appends.incr();
        self.tele
            .append_latency
            .record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Append a batch of events with one lock acquisition and one buffered
    /// write; all serialization happens outside the lock.
    fn append_all(&self, events: &[WalEvent]) -> Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let mut buf = Vec::with_capacity(256 * events.len());
        for event in events {
            encode_event(&mut buf, event)?;
        }
        self.writer.lock().write(&buf, events.len(), self.policy)?;
        self.tele.appends.incr();
        self.tele
            .append_latency
            .record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Rewrite the log to contain only the store's current state (dropping
    /// deleted runs and superseded records). Used after compaction/deletion
    /// to reclaim disk. Returns bytes before and after.
    pub fn rewrite(&self) -> Result<(u64, u64)> {
        let before = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        let tmp = self.path.with_extension("rewrite");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let mut buf = Vec::with_capacity(256);
            let mut emit = |e: &WalEvent| -> Result<()> {
                buf.clear();
                encode_event(&mut buf, e)?;
                out.write_all(&buf)?;
                Ok(())
            };
            for rec in self.mem.components()? {
                emit(&WalEvent::Component { rec })?;
            }
            for rec in self.mem.io_pointers()? {
                let flag = rec.flag;
                let name = rec.name.clone();
                emit(&WalEvent::IoPointer { rec })?;
                if flag {
                    emit(&WalEvent::Flag {
                        io: name,
                        flag: true,
                    })?;
                }
            }
            for id in self.mem.run_ids()? {
                if let Some(rec) = self.mem.run(id)? {
                    emit(&WalEvent::Run { rec })?;
                }
            }
            for comp in self.mem.components()? {
                for name in self.mem.metric_names(&comp.name)? {
                    for rec in self.mem.metrics(&comp.name, &name)? {
                        emit(&WalEvent::Metric { rec })?;
                    }
                }
                for rec in self.mem.summaries(&comp.name)? {
                    emit(&WalEvent::Summary { rec })?;
                }
            }
            for rec in self.mem.scan_events(None, &EventFilter::all(), None)? {
                emit(&WalEvent::Obs { rec })?;
            }
            for rec in self.mem.incidents()? {
                emit(&WalEvent::Incident { rec })?;
            }
            out.flush()?;
            out.get_ref().sync_data()?;
        }
        // Swap in the rewritten log and reopen the writer on it.
        {
            let mut w = self.writer.lock();
            w.flush_os()?;
            std::fs::rename(&tmp, &self.path)?;
            let file = OpenOptions::new().append(true).open(&self.path)?;
            *w = WalWriter::new(file, self.tele.clone());
        }
        self.tele.rewrites.incr();
        let after = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        Ok((before, after))
    }
}

impl Store for WalStore {
    fn register_component(&self, rec: ComponentRecord) -> Result<()> {
        self.mem.register_component(rec.clone())?;
        self.append(&WalEvent::Component { rec })
    }

    fn component(&self, name: &str) -> Result<Option<ComponentRecord>> {
        self.mem.component(name)
    }

    fn components(&self) -> Result<Vec<ComponentRecord>> {
        self.mem.components()
    }

    fn log_run(&self, mut run: ComponentRunRecord) -> Result<RunId> {
        let id = self.mem.log_run(run.clone())?;
        // Log the record with its assigned id so replay restores ids.
        run.id = id;
        self.append(&WalEvent::Run { rec: run })?;
        Ok(id)
    }

    fn log_runs(&self, runs: Vec<ComponentRunRecord>) -> Result<Vec<RunId>> {
        let mut recs = runs.clone();
        let ids = self.mem.log_runs(runs)?;
        for (rec, id) in recs.iter_mut().zip(ids.iter()) {
            rec.id = *id;
        }
        let events: Vec<WalEvent> = recs.into_iter().map(|rec| WalEvent::Run { rec }).collect();
        self.append_all(&events)?;
        Ok(ids)
    }

    fn log_metrics(&self, metrics: Vec<MetricRecord>) -> Result<()> {
        self.mem.log_metrics(metrics.clone())?;
        let events: Vec<WalEvent> = metrics
            .into_iter()
            .map(|rec| WalEvent::Metric { rec })
            .collect();
        self.append_all(&events)
    }

    fn log_run_bundle(&self, bundle: RunBundle) -> Result<RunId> {
        let mut events: Vec<WalEvent> = Vec::with_capacity(
            bundle.pointers.len() + 1 + bundle.metrics.len() + bundle.events.len(),
        );
        for rec in bundle.pointers {
            self.mem.upsert_io_pointer(rec.clone())?;
            events.push(WalEvent::IoPointer { rec });
        }
        let mut run = bundle.run;
        let id = self.mem.log_run(run.clone())?;
        run.id = id;
        events.push(WalEvent::Run { rec: run });
        let mut metrics = bundle.metrics;
        for m in &mut metrics {
            m.run_id = Some(id);
        }
        self.mem.log_metrics(metrics.clone())?;
        events.extend(metrics.into_iter().map(|rec| WalEvent::Metric { rec }));
        // Journal events ride the same single group-commit append as the
        // run and its metrics: stamp the run id, let the memory store
        // assign ids (and fan out to live subscribers), then log the
        // id-stamped records.
        let mut obs = bundle.events;
        for e in &mut obs {
            if e.run_id.is_none() {
                e.run_id = Some(id);
            }
        }
        if !obs.is_empty() {
            let event_ids = self.mem.log_events(obs.clone())?;
            for (e, eid) in obs.iter_mut().zip(event_ids.iter()) {
                e.id = *eid;
            }
            events.extend(obs.into_iter().map(|rec| WalEvent::Obs { rec }));
        }
        self.append_all(&events)?;
        Ok(id)
    }

    fn run(&self, id: RunId) -> Result<Option<ComponentRunRecord>> {
        self.mem.run(id)
    }

    fn runs_for_component(&self, name: &str) -> Result<Vec<RunId>> {
        self.mem.runs_for_component(name)
    }

    fn latest_run(&self, name: &str) -> Result<Option<ComponentRunRecord>> {
        self.mem.latest_run(name)
    }

    fn run_ids(&self) -> Result<Vec<RunId>> {
        self.mem.run_ids()
    }

    // Reads never touch the log; the sharded scan paths (and their
    // telemetry, recorded in the shared registry) apply unchanged.
    fn scan_runs(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ComponentRunRecord>> {
        self.mem.scan_runs(since, filter, limit)
    }

    fn scan_runs_chunked(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        chunk_size: usize,
        visit: &mut dyn FnMut(&[ComponentRunRecord]) -> bool,
    ) -> Result<()> {
        self.mem.scan_runs_chunked(since, filter, chunk_size, visit)
    }

    fn component_history(&self, name: &str, limit: usize) -> Result<Vec<ComponentRunRecord>> {
        self.mem.component_history(name, limit)
    }

    fn upsert_io_pointer(&self, rec: IoPointerRecord) -> Result<()> {
        self.mem.upsert_io_pointer(rec.clone())?;
        self.append(&WalEvent::IoPointer { rec })
    }

    fn io_pointer(&self, name: &str) -> Result<Option<IoPointerRecord>> {
        self.mem.io_pointer(name)
    }

    fn io_pointers(&self) -> Result<Vec<IoPointerRecord>> {
        self.mem.io_pointers()
    }

    fn producers_of(&self, io: &str) -> Result<Vec<RunId>> {
        self.mem.producers_of(io)
    }

    fn consumers_of(&self, io: &str) -> Result<Vec<RunId>> {
        self.mem.consumers_of(io)
    }

    fn set_flag(&self, io: &str, flag: bool) -> Result<bool> {
        let prev = self.mem.set_flag(io, flag)?;
        self.append(&WalEvent::Flag {
            io: io.to_owned(),
            flag,
        })?;
        Ok(prev)
    }

    fn flagged(&self) -> Result<Vec<String>> {
        self.mem.flagged()
    }

    fn log_metric(&self, m: MetricRecord) -> Result<()> {
        self.mem.log_metric(m.clone())?;
        self.append(&WalEvent::Metric { rec: m })
    }

    fn metrics(&self, component: &str, name: &str) -> Result<Vec<MetricRecord>> {
        self.mem.metrics(component, name)
    }

    fn metric_names(&self, component: &str) -> Result<Vec<String>> {
        self.mem.metric_names(component)
    }

    fn delete_runs(&self, ids: &[RunId]) -> Result<usize> {
        let n = self.mem.delete_runs(ids)?;
        self.append(&WalEvent::DeleteRuns { ids: ids.to_vec() })?;
        Ok(n)
    }

    fn delete_io_pointers(&self, names: &[String]) -> Result<usize> {
        let n = self.mem.delete_io_pointers(names)?;
        self.append(&WalEvent::DeleteIos {
            names: names.to_vec(),
        })?;
        Ok(n)
    }

    fn put_summary(&self, s: CompactionSummary) -> Result<()> {
        self.mem.put_summary(s.clone())?;
        self.append(&WalEvent::Summary { rec: s })
    }

    fn summaries(&self, component: &str) -> Result<Vec<CompactionSummary>> {
        self.mem.summaries(component)
    }

    fn log_events(&self, events: Vec<ObservabilityEvent>) -> Result<Vec<EventId>> {
        if events.is_empty() {
            return Ok(Vec::new());
        }
        let mut recs = events.clone();
        // The memory store assigns ids and publishes to live subscribers;
        // the log gets the id-stamped records so replay restores ids.
        let ids = self.mem.log_events(events)?;
        for (rec, id) in recs.iter_mut().zip(ids.iter()) {
            rec.id = *id;
        }
        let wal_events: Vec<WalEvent> = recs.into_iter().map(|rec| WalEvent::Obs { rec }).collect();
        self.append_all(&wal_events)?;
        Ok(ids)
    }

    fn scan_events(
        &self,
        since: Option<EventId>,
        filter: &EventFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ObservabilityEvent>> {
        self.mem.scan_events(since, filter, limit)
    }

    fn upsert_incident(&self, rec: IncidentRecord) -> Result<()> {
        self.mem.upsert_incident(rec.clone())?;
        self.append(&WalEvent::Incident { rec })
    }

    fn incidents(&self) -> Result<Vec<IncidentRecord>> {
        self.mem.incidents()
    }

    fn event_bus(&self) -> Option<&EventBus> {
        self.mem.event_bus()
    }

    fn stats(&self) -> Result<StoreStats> {
        self.mem.stats()
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mltrace-wal-test-{}-{}.jsonl",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn run(component: &str, start: u64, inputs: &[&str], outputs: &[&str]) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 1,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn replay_restores_full_state() {
        let path = tmp("replay");
        let (a, b);
        {
            let s = WalStore::open(&path).unwrap();
            s.register_component(ComponentRecord::named("etl")).unwrap();
            s.upsert_io_pointer(IoPointerRecord::new("raw.csv", 5))
                .unwrap();
            a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            b = s
                .log_run(run("clean", 200, &["raw.csv"], &["clean.csv"]))
                .unwrap();
            s.set_flag("raw.csv", true).unwrap();
            s.log_metric(MetricRecord {
                component: "etl".into(),
                run_id: Some(a),
                name: "rows".into(),
                value: 123.0,
                ts_ms: 101,
            })
            .unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert_eq!(s.component("etl").unwrap().unwrap().name, "etl");
        assert_eq!(s.run(a).unwrap().unwrap().component, "etl");
        assert_eq!(s.producers_of("raw.csv").unwrap(), vec![a]);
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![b]);
        assert_eq!(s.flagged().unwrap(), vec!["raw.csv".to_string()]);
        assert_eq!(s.metrics("etl", "rows").unwrap().len(), 1);
        // Fresh ids continue above replayed ones.
        let c = s.log_run(run("etl", 300, &[], &[])).unwrap();
        assert!(c > b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_applies_deletions() {
        let path = tmp("delete");
        {
            let s = WalStore::open(&path).unwrap();
            let a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            s.log_run(run("etl", 200, &[], &["raw.csv"])).unwrap();
            s.delete_runs(&[a]).unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_line_is_reported_with_line_number() {
        // Mid-log corruption: the bad line is newline-terminated (the
        // append completed), so this is not a torn tail and must error.
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"event\":\"Component\",\"rec\"\n").unwrap();
        match WalStore::open(&path) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("line 1"), "{msg}"),
            Err(other) => panic!("expected corrupt error, got {other:?}"),
            Ok(_) => panic!("expected corrupt error, got Ok"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_recovered() {
        let path = tmp("torn");
        let (a, b);
        {
            let s = WalStore::open(&path).unwrap();
            a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            b = s.log_run(run("etl", 200, &[], &["raw.csv"])).unwrap();
            s.sync().unwrap();
        }
        // Simulate a crash mid-append: partial JSON, no trailing newline.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"Run\",\"rec\":{\"id\":3")
                .unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert!(s.recovered(), "torn tail should be recovered, not fatal");
        assert_eq!(
            s.telemetry().unwrap().snapshot().counters["wal.recoveries_total"],
            1,
            "recovery surfaces in telemetry"
        );
        assert_eq!(s.run_ids().unwrap(), vec![a, b], "complete events survive");
        // The torn fragment is gone; what grew past the clean prefix is the
        // journaled recovery event, itself a complete line.
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(
            content.len() as u64 > clean_len,
            "recovery event appended past the clean prefix"
        );
        assert!(
            !content.contains("{\"event\":\"Run\",\"rec\":{\"id\":3"),
            "torn fragment truncated away"
        );
        assert!(content.ends_with('\n'), "log ends on a complete line");
        let recoveries = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::WalRecovered),
                None,
            )
            .unwrap();
        assert_eq!(recoveries.len(), 1, "recovery is journaled");
        assert_eq!(recoveries[0].severity, EventSeverity::Warn);
        // Store remains writable and the next open replays cleanly.
        let c = s.log_run(run("etl", 300, &[], &[])).unwrap();
        assert!(c > b);
        s.sync().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert_eq!(s.stats().unwrap().runs, 3);
        assert_eq!(
            s.scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::WalRecovered),
                None
            )
            .unwrap()
            .len(),
            1,
            "recovery event replays without being re-emitted"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_only_line_recovers_to_empty_store() {
        let path = tmp("torn-only");
        std::fs::write(&path, "{\"event\":\"Run\",\"rec\"").unwrap();
        let s = WalStore::open(&path).unwrap();
        assert!(s.recovered());
        assert_eq!(s.stats().unwrap().runs, 0);
        // The log holds exactly one record now: the journaled recovery.
        assert_eq!(s.stats().unwrap().events, 1);
        let evs = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(evs[0].kind, EventKind::WalRecovered);
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert_eq!(s.stats().unwrap().events, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_buffers_until_sync() {
        let path = tmp("group-commit");
        {
            let s = WalStore::open_with(&path, DurabilityPolicy::Batch(10)).unwrap();
            assert_eq!(s.durability(), DurabilityPolicy::Batch(10));
            for i in 0..5 {
                s.log_run(run("etl", i, &[], &["raw.csv"])).unwrap();
            }
            // Below the batch threshold nothing has left the writer buffer.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
            s.sync().unwrap();
            assert!(std::fs::metadata(&path).unwrap().len() > 0);
            // Crossing the threshold flushes without an explicit sync.
            for i in 0..10 {
                s.log_run(run("etl", 100 + i, &[], &[])).unwrap();
            }
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_log_runs_replays_identically() {
        let path = tmp("batched");
        let ids;
        {
            let s = WalStore::open_with(&path, DurabilityPolicy::OnSync).unwrap();
            ids = s
                .log_runs(vec![
                    run("etl", 100, &[], &["raw.csv"]),
                    run("clean", 200, &["raw.csv"], &["clean.csv"]),
                    run("etl", 300, &[], &["raw.csv"]),
                ])
                .unwrap();
            assert_eq!(ids, vec![RunId(1), RunId(2), RunId(3)]);
            s.log_run_bundle(RunBundle {
                run: run("infer", 400, &["clean.csv"], &["pred-1"]),
                pointers: vec![IoPointerRecord::new("pred-1", 400)],
                metrics: vec![MetricRecord {
                    component: "infer".into(),
                    run_id: None,
                    name: "latency_ms".into(),
                    value: 2.0,
                    ts_ms: 401,
                }],
                events: vec![ObservabilityEvent::new(
                    EventKind::RunFinished,
                    EventSeverity::Info,
                    401,
                )
                .component("infer")],
            })
            .unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 4);
        assert_eq!(s.producers_of("raw.csv").unwrap(), vec![ids[0], ids[2]]);
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![ids[1]]);
        let pts = s.metrics("infer", "latency_ms").unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].run_id, Some(RunId(4)));
        // The bundled journal event replays with its assigned id and the
        // run id it was stamped with (the OnSync open also journaled a
        // WalPolicy event, which took id 1).
        let evs = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::RunFinished),
                None,
            )
            .unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, EventId(2));
        assert_eq!(evs[0].run_id, Some(RunId(4)));
        assert_eq!(s.stats().unwrap().events, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_shrinks_log_after_deletions() {
        let path = tmp("rewrite");
        let s = WalStore::open(&path).unwrap();
        let mut ids = Vec::new();
        for i in 0..50 {
            ids.push(s.log_run(run("c", i, &[], &["out.csv"])).unwrap());
        }
        s.delete_runs(&ids[..45]).unwrap();
        s.sync().unwrap();
        let (before, after) = s.rewrite().unwrap();
        assert!(after < before, "rewrite should shrink: {before} -> {after}");
        assert_eq!(s.stats().unwrap().runs, 5);
        // Store still writable after rewrite, and state replays.
        s.log_run(run("c", 999, &[], &[])).unwrap();
        s.sync().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_telemetry_counts_appends_flushes_and_fsyncs() {
        let path = tmp("telemetry");
        let s = WalStore::open_with(&path, DurabilityPolicy::Batch(4)).unwrap();
        s.log_runs(vec![
            run("etl", 100, &[], &["raw.csv"]),
            run("etl", 200, &[], &["raw.csv"]),
        ])
        .unwrap();
        s.log_run(run("etl", 300, &[], &[])).unwrap();
        s.sync().unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        // 3 runs + the WalPolicy journal event the non-default open emits.
        assert_eq!(snap.counters["wal.append_events_total"], 4);
        assert_eq!(
            snap.counters["wal.appends_total"], 3,
            "policy event + one batched + one scalar"
        );
        assert_eq!(snap.counters["wal.fsyncs_total"], 1);
        assert!(snap.counters["wal.bytes_written_total"] > 0);
        assert!(snap.counters["wal.flushes_total"] >= 1);
        assert_eq!(snap.counters["wal.recoveries_total"], 0);
        let lat = &snap.histograms["wal.append_all"];
        assert_eq!(lat.count, 3, "all physical appends timed");
        // The memory store underneath reports into the same registry.
        assert_eq!(snap.counters["store.runs_logged_total"], 3);
        let batches = &snap.histograms["wal.group_commit_events"];
        assert_eq!(
            batches.sum, 4,
            "every appended event is attributed to some flush"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_tolerated() {
        let path = tmp("blank");
        std::fs::write(&path, "\n\n").unwrap();
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_events_and_incidents_replay_identically() {
        use crate::event::IncidentState;
        let path = tmp("journal");
        let ids;
        {
            let s = WalStore::open(&path).unwrap();
            ids = s
                .log_events(vec![
                    ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, 100)
                        .component("etl"),
                    ObservabilityEvent::new(EventKind::AlertFired, EventSeverity::Page, 110)
                        .component("infer")
                        .detail("null-rate breach"),
                ])
                .unwrap();
            assert_eq!(ids, vec![EventId(1), EventId(2)]);
            s.upsert_incident(IncidentRecord {
                key: "infer/null-rate".into(),
                state: IncidentState::Open,
                severity: EventSeverity::Page,
                subject: "infer".into(),
                opened_ms: 110,
                last_fire_ms: 110,
                resolved_ms: None,
                fire_count: 1,
                suppressed_count: 0,
                burn_ms: 0,
                detail: "null-rate breach".into(),
            })
            .unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        let evs = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].id, EventId(1));
        assert_eq!(evs[1].kind, EventKind::AlertFired);
        assert_eq!(evs[1].detail, "null-rate breach");
        let incs = s.incidents().unwrap();
        assert_eq!(incs.len(), 1);
        assert_eq!(incs[0].key, "infer/null-rate");
        assert_eq!(incs[0].state, IncidentState::Open);
        // Fresh event ids continue above replayed ones.
        let next = s
            .log_events(vec![ObservabilityEvent::new(
                EventKind::RunFinished,
                EventSeverity::Info,
                120,
            )])
            .unwrap();
        assert_eq!(next, vec![EventId(3)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_preserves_journal_and_incidents() {
        use crate::event::IncidentState;
        let path = tmp("rewrite-journal");
        let s = WalStore::open(&path).unwrap();
        let mut run_ids = Vec::new();
        for i in 0..20 {
            run_ids.push(s.log_run(run("c", i, &[], &["out.csv"])).unwrap());
        }
        s.log_events(vec![ObservabilityEvent::new(
            EventKind::StalenessFlagged,
            EventSeverity::Warn,
            50,
        )
        .component("c")])
            .unwrap();
        s.upsert_incident(IncidentRecord {
            key: "c/stale".into(),
            state: IncidentState::Resolved,
            severity: EventSeverity::Page,
            subject: "c".into(),
            opened_ms: 10,
            last_fire_ms: 20,
            resolved_ms: Some(40),
            fire_count: 3,
            suppressed_count: 1,
            burn_ms: 30,
            detail: "resolved after quiet period".into(),
        })
        .unwrap();
        s.delete_runs(&run_ids[..15]).unwrap();
        s.sync().unwrap();
        s.rewrite().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 5);
        let evs = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(evs.len(), 1, "journal survives rewrite");
        assert_eq!(evs[0].kind, EventKind::StalenessFlagged);
        let incs = s.incidents().unwrap();
        assert_eq!(incs.len(), 1, "incidents survive rewrite");
        assert_eq!(incs[0].resolved_ms, Some(40));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_events_from_streams_and_tolerates_torn_tail() {
        let path = tmp("follow");
        let s = WalStore::open(&path).unwrap();
        s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
        s.log_events(vec![ObservabilityEvent::new(
            EventKind::RunStarted,
            EventSeverity::Info,
            100,
        )
        .component("etl")])
            .unwrap();
        s.sync().unwrap();
        // First poll from the top: run lines are skipped, the journal
        // event is decoded.
        let (evs, offset) = read_events_from(&path, 0).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::RunStarted);
        assert_eq!(offset, std::fs::metadata(&path).unwrap().len());
        // Nothing new: no events, offset stays put.
        let (evs, offset2) = read_events_from(&path, offset).unwrap();
        assert!(evs.is_empty());
        assert_eq!(offset2, offset);
        // New event arrives; the poll picks up only the delta.
        s.log_events(vec![ObservabilityEvent::new(
            EventKind::RunFinished,
            EventSeverity::Info,
            200,
        )])
        .unwrap();
        s.sync().unwrap();
        let (evs, offset3) = read_events_from(&path, offset2).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::RunFinished);
        // A torn tail (writer mid-append) is left for the next poll.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"Obs\",\"rec\":{\"id\":9")
                .unwrap();
        }
        let (evs, offset4) = read_events_from(&path, offset3).unwrap();
        assert!(evs.is_empty(), "partial line is not decoded");
        assert_eq!(offset4, offset3, "offset does not advance past torn tail");
        std::fs::remove_file(&path).ok();
    }
}
