//! The logical schema of the mltrace storage layer: components, component
//! runs, I/O pointers, and metric points (Figure 2 of the paper: "pointers
//! to inputs and outputs, logs capturing state every time a component is
//! run, and metrics").

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a logged [`ComponentRunRecord`], assigned monotonically by
/// the store at log time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RunId(pub u64);

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

/// The type of artifact an [`IoPointerRecord`] references. The paper's
/// prototype distinguishes `model`, `data` and `endpoint`, inferring the
/// type from file extensions when possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PointerType {
    /// A dataset or file of records.
    Data,
    /// A serialized model or other learned artifact.
    Model,
    /// A serving endpoint or live prediction identifier.
    Endpoint,
    /// Anything else.
    #[default]
    Unknown,
}

impl PointerType {
    /// Infer the pointer type from a file-extension-bearing identifier,
    /// mirroring the paper's prototype behaviour (e.g. `features.csv` →
    /// data, `model.joblib` → model).
    pub fn infer(identifier: &str) -> PointerType {
        let lower = identifier.to_ascii_lowercase();
        if lower.starts_with("http://")
            || lower.starts_with("https://")
            || lower.starts_with("grpc://")
        {
            return PointerType::Endpoint;
        }
        let ext = lower.rsplit('.').next().unwrap_or("");
        match ext {
            "csv" | "tsv" | "parquet" | "json" | "jsonl" | "arrow" | "feather" | "txt" => {
                PointerType::Data
            }
            "joblib" | "pkl" | "pickle" | "pt" | "pth" | "onnx" | "h5" | "model" | "bin" => {
                PointerType::Model
            }
            _ => PointerType::Unknown,
        }
    }

    /// Short lowercase name for display and SQL output.
    pub fn name(self) -> &'static str {
        match self {
            PointerType::Data => "data",
            PointerType::Model => "model",
            PointerType::Endpoint => "endpoint",
            PointerType::Unknown => "unknown",
        }
    }
}

impl fmt::Display for PointerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static metadata of a pipeline component (§3.2 "Component"). The name is
/// the primary key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ComponentRecord {
    /// Primary key.
    pub name: String,
    /// Human description.
    pub description: String,
    /// Owning person or team.
    pub owner: String,
    /// Free-form string tags.
    pub tags: Vec<String>,
}

impl ComponentRecord {
    /// Create a record with just a name; remaining attributes can be added
    /// later (the paper: "the user does not need to specify attributes other
    /// than the name").
    pub fn named(name: impl Into<String>) -> Self {
        ComponentRecord {
            name: name.into(),
            ..Default::default()
        }
    }
}

/// Completion status of a component run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RunStatus {
    /// Component body and all triggers completed without error.
    #[default]
    Success,
    /// The component body failed.
    Failed,
    /// The body succeeded but at least one trigger reported failure.
    TriggerFailed,
}

impl RunStatus {
    /// Short name for display and SQL output.
    pub fn name(self) -> &'static str {
        match self {
            RunStatus::Success => "success",
            RunStatus::Failed => "failed",
            RunStatus::TriggerFailed => "trigger_failed",
        }
    }

    /// Inverse of [`RunStatus::name`]: parse the exact short name. Returns
    /// `None` for anything else (including different casings), so callers
    /// that push status predicates into a scan cannot accidentally widen a
    /// comparison that the row-level path would have rejected.
    pub fn from_name(name: &str) -> Option<RunStatus> {
        match name {
            "success" => Some(RunStatus::Success),
            "failed" => Some(RunStatus::Failed),
            "trigger_failed" => Some(RunStatus::TriggerFailed),
            _ => None,
        }
    }
}

/// Outcome of one trigger (test/metric computation) executed in the
/// `beforeRun` / `afterRun` phase of a component run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerOutcomeRecord {
    /// Trigger name (e.g. `no_nulls`, `outlier_check`).
    pub trigger: String,
    /// Which phase the trigger ran in: `"before"` or `"after"`.
    pub phase: String,
    /// Whether the trigger passed.
    pub passed: bool,
    /// Human-readable detail (failure reason, measured values).
    pub detail: String,
    /// Structured values the trigger recorded (aggregates, test statistics).
    pub values: BTreeMap<String, Value>,
}

/// Dynamic, per-execution state of a component (§3.2 "ComponentRun").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ComponentRunRecord {
    /// Assigned by the store at log time; `RunId(0)` before logging.
    pub id: RunId,
    /// Foreign key to [`ComponentRecord::name`].
    pub component: String,
    /// Start of execution, epoch milliseconds.
    pub start_ms: u64,
    /// End of execution, epoch milliseconds.
    pub end_ms: u64,
    /// Names of input [`IoPointerRecord`]s.
    pub inputs: Vec<String>,
    /// Names of output [`IoPointerRecord`]s.
    pub outputs: Vec<String>,
    /// Code snapshot identifier (git hash or content hash).
    pub code_hash: String,
    /// Free-form notes.
    pub notes: String,
    /// Completion status.
    pub status: RunStatus,
    /// Dependencies: runs that produced this run's inputs. Inferred by the
    /// execution layer at runtime from I/O identity, never user-declared.
    pub dependencies: Vec<RunId>,
    /// Trigger outcomes recorded during this run.
    pub triggers: Vec<TriggerOutcomeRecord>,
    /// Arbitrary extra state captured at runtime.
    pub metadata: BTreeMap<String, Value>,
}

impl ComponentRunRecord {
    /// Duration of the run in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }

    /// True if any trigger in either phase failed.
    pub fn any_trigger_failed(&self) -> bool {
        self.triggers.iter().any(|t| !t.passed)
    }

    /// Validate internal consistency before logging.
    pub fn validate(&self) -> Result<(), String> {
        if self.component.is_empty() {
            return Err("component name is empty".into());
        }
        if self.end_ms < self.start_ms {
            return Err(format!(
                "end_ms {} precedes start_ms {}",
                self.end_ms, self.start_ms
            ));
        }
        Ok(())
    }
}

/// A named reference to an input or output artifact (§3.2 "IOPointer").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct IoPointerRecord {
    /// Identifier, e.g. `features.csv` or a per-prediction id. Primary key.
    pub name: String,
    /// Artifact type, user-set or inferred from the identifier.
    pub ptype: PointerType,
    /// Debugging flag, settable/clearable at any time (paper Figure 4:
    /// flagged outputs drive the review workflow).
    pub flag: bool,
    /// First time this pointer was seen, epoch milliseconds.
    pub created_ms: u64,
    /// Optional content-hash of the stored artifact payload, when the
    /// artifact store holds a copy.
    pub artifact: Option<String>,
}

impl IoPointerRecord {
    /// Create a pointer with an inferred type.
    pub fn new(name: impl Into<String>, created_ms: u64) -> Self {
        let name = name.into();
        let ptype = PointerType::infer(&name);
        IoPointerRecord {
            name,
            ptype,
            flag: false,
            created_ms,
            artifact: None,
        }
    }
}

/// One point of a monitored metric series (§3.1 "metrics: quantitative
/// measures monitored across consecutive runs of the same component").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Component the metric belongs to.
    pub component: String,
    /// Run that produced the point; `None` for externally-fed series.
    pub run_id: Option<RunId>,
    /// Metric name, e.g. `accuracy`, `kl_divergence:fare`.
    pub name: String,
    /// Measured value. Non-finite values are legal (a NaN point is the
    /// null-rate signal the monitoring plane counts) and survive the JSON
    /// log via the sentinel codec below.
    #[serde(with = "f64_sentinel")]
    pub value: f64,
    /// Measurement time, epoch milliseconds.
    pub ts_ms: u64,
}

/// JSON-safe f64 codec: JSON has no literal for non-finite floats (plain
/// serialization would write `null` and fail to round-trip), so NaN/±Inf
/// encode as the sentinel strings `"NaN"` / `"+Inf"` / `"-Inf"` and decode
/// back to the exact non-finite value. Finite values stay plain numbers,
/// and a legacy `null` (written by pre-sentinel logs) decodes as NaN so
/// old families remain replayable.
mod f64_sentinel {
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_f64(*v)
        } else if v.is_nan() {
            s.serialize_str("NaN")
        } else if *v > 0.0 {
            s.serialize_str("+Inf")
        } else {
            s.serialize_str("-Inf")
        }
    }

    #[derive(Deserialize)]
    #[serde(untagged)]
    enum Repr {
        Finite(f64),
        Sentinel(String),
        Null,
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        match Repr::deserialize(d)? {
            Repr::Finite(v) => Ok(v),
            Repr::Sentinel(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "+Inf" => Ok(f64::INFINITY),
                "-Inf" => Ok(f64::NEG_INFINITY),
                other => Err(D::Error::custom(format!(
                    "unknown float sentinel '{other}'"
                ))),
            },
            Repr::Null => Ok(f64::NAN),
        }
    }
}

/// Aggregate left behind when raw runs in a time window are compacted
/// (§5.3 efficiency/utility trade-off): `history`-style queries can still
/// be answered after individual traces are gone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactionSummary {
    /// Component the summary covers.
    pub component: String,
    /// Window start (inclusive), epoch milliseconds.
    pub window_start_ms: u64,
    /// Window end (exclusive), epoch milliseconds.
    pub window_end_ms: u64,
    /// Number of runs compacted away.
    pub run_count: u64,
    /// Number of runs that failed (body or trigger).
    pub failed_count: u64,
    /// Mean run duration in milliseconds.
    pub mean_duration_ms: f64,
    /// Per-metric aggregate: name → (count, mean, min, max).
    pub metric_aggregates: BTreeMap<String, MetricAggregate>,
}

/// Compact summary of one metric series over a compacted window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricAggregate {
    /// Number of points aggregated.
    pub count: u64,
    /// Arithmetic mean of the points.
    pub mean: f64,
    /// Minimum point.
    pub min: f64,
    /// Maximum point.
    pub max: f64,
}

impl MetricAggregate {
    /// Fold a value into the aggregate.
    pub fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
            self.mean = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            // numerically-stable running mean
            self.mean += (v - self.mean) / (self.count as f64 + 1.0);
        }
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_type_inference_matches_paper_examples() {
        assert_eq!(PointerType::infer("features.csv"), PointerType::Data);
        assert_eq!(PointerType::infer("model.joblib"), PointerType::Model);
        assert_eq!(PointerType::infer("weights.ONNX"), PointerType::Model);
        assert_eq!(
            PointerType::infer("https://api.example.com/predict"),
            PointerType::Endpoint
        );
        assert_eq!(PointerType::infer("prediction-12345"), PointerType::Unknown);
    }

    #[test]
    fn run_validation() {
        let mut r = ComponentRunRecord {
            component: "etl".into(),
            start_ms: 10,
            end_ms: 20,
            ..Default::default()
        };
        assert!(r.validate().is_ok());
        r.end_ms = 5;
        assert!(r.validate().is_err());
        r.end_ms = 20;
        r.component.clear();
        assert!(r.validate().is_err());
    }

    #[test]
    fn run_duration_and_trigger_failure() {
        let mut r = ComponentRunRecord {
            component: "x".into(),
            start_ms: 100,
            end_ms: 350,
            ..Default::default()
        };
        assert_eq!(r.duration_ms(), 250);
        assert!(!r.any_trigger_failed());
        r.triggers.push(TriggerOutcomeRecord {
            trigger: "no_nulls".into(),
            phase: "before".into(),
            passed: false,
            detail: "32% nulls".into(),
            values: BTreeMap::new(),
        });
        assert!(r.any_trigger_failed());
    }

    #[test]
    fn metric_aggregate_folds_correctly() {
        let mut agg = MetricAggregate::default();
        for v in [2.0, 4.0, 6.0] {
            agg.add(v);
        }
        assert_eq!(agg.count, 3);
        assert!((agg.mean - 4.0).abs() < 1e-12);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 6.0);
    }

    #[test]
    fn io_pointer_new_infers_type() {
        let p = IoPointerRecord::new("clean.parquet", 42);
        assert_eq!(p.ptype, PointerType::Data);
        assert_eq!(p.created_ms, 42);
        assert!(!p.flag);
    }

    #[test]
    fn serde_round_trip_run_record() {
        let r = ComponentRunRecord {
            id: RunId(7),
            component: "train".into(),
            start_ms: 1,
            end_ms: 2,
            inputs: vec!["features.csv".into()],
            outputs: vec!["model.bin".into()],
            code_hash: "abc123".into(),
            dependencies: vec![RunId(3)],
            ..Default::default()
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: ComponentRunRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn run_id_display() {
        assert_eq!(RunId(9).to_string(), "run#9");
    }

    fn point(value: f64) -> MetricRecord {
        MetricRecord {
            component: "infer".into(),
            run_id: Some(RunId(3)),
            name: "score".into(),
            value,
            ts_ms: 9,
        }
    }

    #[test]
    fn metric_value_sentinels_round_trip_non_finite() {
        for (value, sentinel) in [
            (f64::NAN, "\"NaN\""),
            (f64::INFINITY, "\"+Inf\""),
            (f64::NEG_INFINITY, "\"-Inf\""),
        ] {
            let s = serde_json::to_string(&point(value)).unwrap();
            assert!(s.contains(sentinel), "{s}");
            let back: MetricRecord = serde_json::from_str(&s).unwrap();
            assert_eq!(back.value.to_bits(), value.to_bits(), "{s}");
        }
        // Finite values stay plain JSON numbers.
        let s = serde_json::to_string(&point(1.5)).unwrap();
        assert!(s.contains("\"value\":1.5"), "{s}");
        let back: MetricRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back.value, 1.5);
    }

    #[test]
    fn metric_value_legacy_null_decodes_as_nan() {
        // Pre-sentinel logs wrote `null` for non-finite values; decoding
        // salvages them as NaN instead of failing replay.
        let legacy = "{\"component\":\"infer\",\"run_id\":null,\
                      \"name\":\"score\",\"value\":null,\"ts_ms\":9}";
        let back: MetricRecord = serde_json::from_str(legacy).unwrap();
        assert!(back.value.is_nan());
        let bad = legacy.replace("null,\"ts", "\"weird\",\"ts");
        assert!(serde_json::from_str::<MetricRecord>(&bad).is_err());
    }
}
