//! Error types for the storage layer.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// A referenced record does not exist.
    NotFound(String),
    /// A record with the same primary key already exists and the operation
    /// does not permit overwrite.
    AlreadyExists(String),
    /// The record is malformed (e.g. end time before start time).
    InvalidRecord(String),
    /// Underlying I/O failure (WAL append, snapshot write, ...).
    Io(std::io::Error),
    /// A persisted record could not be decoded during replay.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
            StoreError::AlreadyExists(what) => write!(f, "already exists: {what}"),
            StoreError::InvalidRecord(why) => write!(f, "invalid record: {why}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(why) => write!(f, "corrupt log: {why}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Corrupt(e.to_string())
    }
}

/// Convenience alias used across the storage layer.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            StoreError::NotFound("run 7".into()).to_string(),
            "not found: run 7"
        );
        assert_eq!(
            StoreError::AlreadyExists("component etl".into()).to_string(),
            "already exists: component etl"
        );
        assert_eq!(
            StoreError::InvalidRecord("end < start".into()).to_string(),
            "invalid record: end < start"
        );
        assert_eq!(
            StoreError::Corrupt("bad json".into()).to_string(),
            "corrupt log: bad json"
        );
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let e: StoreError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(e.source().is_some());
    }
}
