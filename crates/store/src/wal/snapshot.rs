//! Checkpoint snapshots: the full store state in one compact file, so a
//! cold open replays only the WAL tail written after the last checkpoint.
//!
//! # On-disk format
//!
//! ```text
//! bytes 0..8    magic  b"MLSNAP01"
//! u32 LE        header length
//! header        JSON   SnapshotHeader (covered segment, id watermarks, record count)
//! records ×N    u32 LE record length + record JSON (one WAL event each)
//! u64 LE        FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! Records reuse the WAL's own event encoding, so snapshot import is the
//! same `apply` path as log replay — one semantics, two containers. The
//! length prefixes let import split records without scanning for
//! newlines, which is what lets the parse stage fan out across threads.
//!
//! # Crash safety
//!
//! A snapshot is staged at `<base>.snapshot.tmp`, fsynced, then renamed
//! over `<base>.snapshot` (plus a best-effort directory fsync). A crash at
//! any point leaves either the old complete snapshot or the new complete
//! snapshot — never a torn one. Anything short of a valid checksum makes
//! [`read_snapshot`] report [`SnapshotLoad::Corrupt`], and the open falls
//! back to replaying every sealed segment from scratch.

use super::segment::{fsync_dir, sibling};
use super::ZoneMap;
use crate::error::Result;
use crate::hash::fnv1a_64;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Format magic: file type + version in one probe.
const MAGIC: &[u8; 8] = b"MLSNAP01";

/// Fixed overhead around the records: magic + header length + checksum.
const MIN_LEN: usize = 8 + 4 + 8;

/// Snapshot metadata, serialized as the JSON header.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SnapshotHeader {
    /// Header format version ([`super::ZONE_FORMAT_VERSION`] since zone
    /// maps landed). Absent in pre-v2 snapshots, so it defaults to 0;
    /// both additive fields are `#[serde(default)]`, which is what keeps
    /// unversioned snapshots readable.
    #[serde(default)]
    pub format_version: u32,
    /// Zone map over every folded record, letting cold journal readers
    /// skip parsing the snapshot when their filter excludes it. `None` in
    /// pre-v2 snapshots.
    #[serde(default)]
    pub zone: Option<ZoneMap>,
    /// Highest sealed segment sequence this snapshot covers: replay
    /// resumes at `covered_seq + 1`.
    pub covered_seq: u64,
    /// `next_run_id` watermark at checkpoint time. State folding drops
    /// deletion history, so replaying max-live-id + 1 would regress ids
    /// after deletions; the exact counter travels with the snapshot.
    pub next_run_id: u64,
    /// `next_event_id` watermark (same rationale as `next_run_id`).
    pub next_event_id: u64,
    /// Lifetime `runs_removed` counter, also invisible in folded state.
    pub runs_removed: u64,
    /// Number of length-prefixed records following the header.
    pub records: u64,
    /// Wall-clock creation time, for operators reading `mltrace stats`.
    pub created_ms: u64,
}

/// `<base>.snapshot` — the live snapshot beside the active log.
pub(crate) fn snapshot_path(base: &Path) -> PathBuf {
    sibling(base, "snapshot")
}

/// Staging path for the atomic write.
fn snapshot_tmp_path(base: &Path) -> PathBuf {
    sibling(base, "snapshot.tmp")
}

/// Write a snapshot atomically (temp + fsync + rename). `records` are
/// pre-serialized WAL events. Returns the snapshot size in bytes.
pub(crate) fn write_snapshot(
    base: &Path,
    header: &SnapshotHeader,
    records: &[Vec<u8>],
) -> Result<u64> {
    let payload: usize = records.iter().map(|r| r.len() + 4).sum();
    let mut buf = Vec::with_capacity(MIN_LEN + 256 + payload);
    buf.extend_from_slice(MAGIC);
    let head = serde_json::to_vec(header)?;
    buf.extend_from_slice(&(head.len() as u32).to_le_bytes());
    buf.extend_from_slice(&head);
    for rec in records {
        buf.extend_from_slice(&(rec.len() as u32).to_le_bytes());
        buf.extend_from_slice(rec);
    }
    buf.extend_from_slice(&fnv1a_64(&buf).to_le_bytes());
    let tmp = snapshot_tmp_path(base);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, snapshot_path(base))?;
    fsync_dir(base);
    Ok(buf.len() as u64)
}

/// What loading `<base>.snapshot` found.
// One instance exists transiently during open; Boxing `Loaded` to shrink
// the variant gap would add indirection for no steady-state benefit.
#[allow(clippy::large_enum_variant)]
pub(crate) enum SnapshotLoad {
    /// No snapshot beside the log (no checkpoint has run yet).
    Missing,
    /// A snapshot exists but cannot be trusted (short read, bad magic,
    /// checksum mismatch, undecodable header). The open must fall back to
    /// replaying every sealed segment.
    Corrupt(String),
    /// Decoded header plus `(offset, len)` slices of each record payload
    /// within `buf`.
    Loaded {
        /// The decoded header.
        header: SnapshotHeader,
        /// The whole snapshot file.
        buf: Vec<u8>,
        /// Record payload positions into `buf`.
        records: Vec<(usize, usize)>,
    },
}

/// Load and structurally validate the snapshot beside `base`. Never
/// returns a hard error: a snapshot is an accelerator, so anything
/// unreadable degrades to [`SnapshotLoad::Corrupt`] and the caller's
/// full-replay fallback.
pub(crate) fn read_snapshot(base: &Path) -> SnapshotLoad {
    let path = snapshot_path(base);
    let buf = match std::fs::read(&path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SnapshotLoad::Missing,
        Err(e) => return SnapshotLoad::Corrupt(format!("read failed: {e}")),
    };
    match decode(&buf) {
        Ok((header, records)) => SnapshotLoad::Loaded {
            header,
            buf,
            records,
        },
        Err(why) => SnapshotLoad::Corrupt(why),
    }
}

/// Validate checksum and framing; return the header and record positions.
fn decode(buf: &[u8]) -> std::result::Result<(SnapshotHeader, Vec<(usize, usize)>), String> {
    if buf.len() < MIN_LEN {
        return Err(format!("file too short ({} bytes)", buf.len()));
    }
    if &buf[..8] != MAGIC {
        return Err("bad magic (not an mltrace snapshot)".into());
    }
    let body_end = buf.len() - 8;
    let stored = u64::from_le_bytes(buf[body_end..].try_into().expect("8-byte footer"));
    let computed = fnv1a_64(&buf[..body_end]);
    if stored != computed {
        return Err(format!(
            "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
        ));
    }
    let mut at = 8usize;
    let take_len = |at: &mut usize| -> std::result::Result<usize, String> {
        if *at + 4 > body_end {
            return Err("truncated length prefix".into());
        }
        let n = u32::from_le_bytes(buf[*at..*at + 4].try_into().expect("4-byte prefix")) as usize;
        *at += 4;
        if *at + n > body_end {
            return Err("record overruns the checksummed body".into());
        }
        Ok(n)
    };
    let n = take_len(&mut at)?;
    let header: SnapshotHeader =
        serde_json::from_slice(&buf[at..at + n]).map_err(|e| format!("header: {e}"))?;
    at += n;
    let mut records = Vec::with_capacity(header.records as usize);
    for _ in 0..header.records {
        let n = take_len(&mut at)?;
        records.push((at, n));
        at += n;
    }
    if at != body_end {
        return Err("trailing bytes after the final record".into());
    }
    Ok((header, records))
}
