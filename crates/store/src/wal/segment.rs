//! WAL segment naming and discovery.
//!
//! The active log lives at the user-visible path (`obs.wal`). A checkpoint
//! seals it by renaming it to `obs.wal.seg-0000001` and starting a fresh
//! active file; the snapshot then records which segment sequence it covers.
//! Sealed segments are immutable: they are only ever replayed (when newer
//! than the snapshot) or deleted (compaction, once a snapshot covers them).

use crate::error::Result;
use std::ffi::OsString;
use std::path::{Path, PathBuf};

/// `<base>.<suffix>` — appends to the full file name rather than replacing
/// the extension (`Path::with_extension` would clobber `.wal`).
pub(crate) fn sibling(base: &Path, suffix: &str) -> PathBuf {
    let mut name: OsString = base
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".");
    name.push(suffix);
    base.with_file_name(name)
}

/// Path of the sealed segment with sequence number `seq`. Zero-padded so
/// plain `ls` shows segments in replay order; parsing accepts any width.
pub(crate) fn segment_path(base: &Path, seq: u64) -> PathBuf {
    sibling(base, &format!("seg-{seq:07}"))
}

/// Sealed segments beside `base`, ascending by sequence number. Files of
/// other WAL families (and the snapshot / telemetry sidecars) never match
/// the `<file-name>.seg-<digits>` shape.
pub(crate) fn list_segments(base: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let Some(file_name) = base.file_name().and_then(|n| n.to_str()) else {
        return Ok(Vec::new());
    };
    let prefix = format!("{file_name}.seg-");
    let entries = match std::fs::read_dir(parent_dir(base)) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name.strip_prefix(&prefix) else {
            continue;
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        if let Ok(seq) = digits.parse::<u64>() {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// The directory holding `base` (`.` when the path is bare).
pub(crate) fn parent_dir(base: &Path) -> &Path {
    match base.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Best-effort directory fsync, making a just-completed rename durable.
/// Not every filesystem supports opening a directory for sync, so errors
/// are deliberately swallowed — the rename itself already happened.
pub(crate) fn fsync_dir(base: &Path) {
    if let Ok(dir) = std::fs::File::open(parent_dir(base)) {
        let _ = dir.sync_all();
    }
}
