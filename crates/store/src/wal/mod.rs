//! Durable [`Store`]: an in-memory store fronted by an append-only
//! JSON-lines write-ahead log, with checkpointed startup.
//!
//! Observability logs must survive process restarts (the paper: regulated
//! industries "may need to query over previous months or even years"). The
//! WAL format is deliberately human-greppable — one JSON event per line —
//! because the log *is* the product in an observability tool.
//!
//! # Durability policies (group commit)
//!
//! At the paper's §3.4 scale (Ω(1 million) ingested nodes per day) a
//! `write` + `flush` syscall pair per event is the bottleneck, so the
//! writer supports group commit via [`DurabilityPolicy`]:
//!
//! | policy | flushed to OS | data at risk on crash |
//! |---|---|---|
//! | [`EveryEvent`](DurabilityPolicy::EveryEvent) | after every event (default) | none past the last append |
//! | [`Batch(n)`](DurabilityPolicy::Batch) | every `n` buffered events | up to `n − 1` events |
//! | [`Interval(ms)`](DurabilityPolicy::Interval) | on the first write `ms` after the previous flush | up to one interval of events |
//! | [`OnSync`](DurabilityPolicy::OnSync) | only on [`WalStore::sync`] | everything since the last `sync` |
//!
//! Whatever the policy, [`WalStore::sync`] remains the hard barrier: it
//! flushes the buffer *and* `fsync`s, so events appended before a `sync`
//! that returned `Ok` survive any crash. "Flushed to OS" above means the
//! data survives a process crash but not a machine crash — only `sync`
//! guarantees the latter.
//!
//! # Checkpoints, segments, and fast restarts
//!
//! Replaying the whole log on every open makes startup O(lifetime ingest).
//! A checkpoint bounds it: the active log is sealed into a numbered
//! segment (`<db>.seg-0000001`, …), and the full store state is written to
//! `<db>.snapshot` atomically (temp + fsync + rename). Open then loads the
//! newest valid snapshot and replays only the segments and active tail
//! written after it — the ARIES-style snapshot-plus-delta split. Sealing
//! happens *before* the snapshot is written, so a crash between the two
//! leaves an extra segment to replay, never a snapshot that hides
//! unapplied log suffix. [`WalStore::compact_segments`] deletes segments a
//! snapshot covers; until then the snapshot is redundant and a corrupt one
//! degrades to replaying every segment from scratch. Checkpoints trigger
//! on the group-commit path via [`CheckpointPolicy`] thresholds, or
//! explicitly via [`WalStore::checkpoint`] (`mltrace checkpoint`).
//!
//! Tail replay itself is parallel: serde parsing dominates replay cost, so
//! parsing fans out across scoped threads while a single stage applies
//! events in file order (see the `replay` module).
//!
//! # Crash recovery
//!
//! Events are written as `<json>\n` in a single buffered write, so a crash
//! mid-append can leave at most one partial line, at the tail of the
//! *active* log, with no trailing newline. [`WalStore::open`] recovers
//! from exactly that shape: the torn tail is truncated away and
//! [`WalStore::recovered`] reports `true`. A malformed line *followed by
//! more data*, any complete line that fails to parse, or a torn line in a
//! sealed (immutable) segment is real corruption and still fails the open
//! with [`StoreError::Corrupt`] — now carrying the byte offset and a
//! recovery hint.

mod replay;
mod segment;
mod snapshot;

use crate::aggregate::{AggInput, GroupPartial};
use crate::error::{Result, StoreError};
use crate::event::{
    DiagnosisRecord, EventBus, EventFilter, EventId, EventKind, EventSeverity, IncidentRecord,
    ObservabilityEvent, EVENT_KINDS,
};
use crate::memory::MemoryStore;
use crate::record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricRecord, RunId,
};
use crate::scan::{IndexRoute, RunFilter};
use crate::store::{IndexFootprint, IndexStats, RunBundle, Store, StoreStats};
use crate::value::Value;
use mltrace_telemetry::{Counter, Gauge, Histogram, Telemetry};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// One durable event. The WAL is the sequence of all mutations.
#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "event")]
enum WalEvent {
    Component {
        rec: ComponentRecord,
    },
    Run {
        rec: ComponentRunRecord,
    },
    IoPointer {
        rec: IoPointerRecord,
    },
    Flag {
        io: String,
        flag: bool,
    },
    Metric {
        rec: MetricRecord,
    },
    DeleteRuns {
        ids: Vec<RunId>,
    },
    DeleteIos {
        names: Vec<String>,
    },
    Summary {
        rec: CompactionSummary,
    },
    Obs {
        rec: ObservabilityEvent,
    },
    Incident {
        rec: IncidentRecord,
    },
    Diagnosis {
        key: String,
        rows: Vec<DiagnosisRecord>,
    },
    /// Segment metadata, not a state mutation: the zone map of the sealed
    /// segment this line terminates. Written as the final line of a
    /// segment at seal time; replay skips it (and does not count it).
    Zone {
        map: ZoneMap,
    },
}

/// When buffered WAL events are flushed to the OS (see the module docs for
/// the trade-off table). [`WalStore::sync`] is the durability barrier under
/// every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityPolicy {
    /// Flush after every event — today's behavior and the default.
    #[default]
    EveryEvent,
    /// Flush once `n` events have accumulated since the last flush.
    Batch(usize),
    /// Flush on the first write at least this many milliseconds after the
    /// previous flush. (No background timer: an idle store flushes on the
    /// next write or `sync`.)
    Interval(u64),
    /// Flush only on [`WalStore::sync`] (or when the internal buffer
    /// fills). Fastest; everything since the last `sync` is at risk.
    OnSync,
}

impl DurabilityPolicy {
    /// Parse a CLI spelling: `every`, `onsync`, `batch:N`, `interval:MS`.
    pub fn parse(s: &str) -> Option<DurabilityPolicy> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("every") || s.eq_ignore_ascii_case("everyevent") {
            return Some(DurabilityPolicy::EveryEvent);
        }
        if s.eq_ignore_ascii_case("onsync") {
            return Some(DurabilityPolicy::OnSync);
        }
        if let Some(n) = s.strip_prefix("batch:") {
            return n.parse().ok().map(DurabilityPolicy::Batch);
        }
        if let Some(ms) = s.strip_prefix("interval:") {
            return ms.parse().ok().map(DurabilityPolicy::Interval);
        }
        None
    }
}

/// When the store checkpoints itself on the write path. A threshold of 0
/// disables that trigger; [`CheckpointPolicy::disabled`] disables both,
/// leaving only explicit [`WalStore::checkpoint`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many events have been appended (or replayed at
    /// open) since the last checkpoint.
    pub every_events: u64,
    /// Checkpoint once the active log holds this many bytes.
    pub every_bytes: u64,
}

impl Default for CheckpointPolicy {
    /// 250k events or 64 MiB of active log, whichever comes first — a few
    /// seconds of replay at the measured parse rate, amortized to roughly
    /// four checkpoints per day at the paper's million-runs/day scale.
    fn default() -> Self {
        CheckpointPolicy {
            every_events: 250_000,
            every_bytes: 64 << 20,
        }
    }
}

impl CheckpointPolicy {
    /// Never checkpoint automatically.
    pub fn disabled() -> Self {
        CheckpointPolicy {
            every_events: 0,
            every_bytes: 0,
        }
    }
}

/// Everything [`WalStore::open_with_options`] can vary.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalOptions {
    /// Group-commit flush policy.
    pub durability: DurabilityPolicy,
    /// Automatic checkpoint thresholds.
    pub checkpoint: CheckpointPolicy,
    /// Parse workers for tail replay; `None` sizes to the machine (capped
    /// at 8), `Some(1)` forces serial replay.
    pub replay_workers: Option<usize>,
}

/// What one [`WalStore::checkpoint`] did.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// Sequence number the active log was sealed under, if it had content.
    pub sealed_seq: Option<u64>,
    /// Size of the snapshot on disk, in bytes.
    pub snapshot_bytes: u64,
    /// Events appended (or replayed) since the previous checkpoint that
    /// this snapshot now covers.
    pub events_folded: u64,
    /// False when there was nothing new to checkpoint (report then
    /// describes the existing snapshot).
    pub wrote_snapshot: bool,
}

/// What one [`WalStore::compact_segments`] reclaimed.
#[derive(Debug, Clone, Copy)]
pub struct SegmentCompaction {
    /// Sealed segments deleted because the snapshot covers them.
    pub segments_deleted: usize,
    /// Their total size on disk.
    pub bytes_reclaimed: u64,
}

/// On-disk footprint of one WAL family, as reported by `mltrace stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalFootprint {
    /// Bytes handed to the active log (including any still buffered).
    pub active_bytes: u64,
    /// Sealed segments beside the active log.
    pub segment_count: usize,
    /// Their total size in bytes.
    pub segment_bytes: u64,
    /// Snapshot size in bytes (0 when no checkpoint has run).
    pub snapshot_bytes: u64,
    /// Events appended or replayed since the last checkpoint — what a cold
    /// open would have to replay.
    pub events_since_checkpoint: u64,
}

impl WalFootprint {
    /// Total bytes on disk across active log, segments, and snapshot.
    pub fn total_bytes(&self) -> u64 {
        self.active_bytes + self.segment_bytes + self.snapshot_bytes
    }
}

/// On-disk format version stamped into zone maps and v2 snapshot headers.
/// Version 0 (the `#[serde(default)]` value) is the pre-zone format:
/// readers treat it as "no zone information" and never prune.
pub const ZONE_FORMAT_VERSION: u32 = 2;

/// Min/max summaries of one sealed segment (or one snapshot), written as
/// the segment's final line at seal time. Cold readers — `mltrace tail`,
/// [`read_journal`], [`JournalFollower`] — test their filter against the
/// zone and skip the whole file when no line inside can match, which is
/// what makes time- and kind-bounded queries sub-linear in log history.
///
/// Every field is `#[serde(default)]`, so maps written by newer versions
/// (or the empty `{}`) still decode; absent bounds mean "unknown — do not
/// prune on this column".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneMap {
    /// Format version ([`ZONE_FORMAT_VERSION`]); 0 = unversioned.
    #[serde(default)]
    pub version: u32,
    /// Run records in the zone.
    #[serde(default)]
    pub runs: u64,
    /// Journal events in the zone.
    #[serde(default)]
    pub events: u64,
    /// Smallest run id logged in the zone.
    #[serde(default)]
    pub min_run_id: Option<u64>,
    /// Largest run id logged in the zone.
    #[serde(default)]
    pub max_run_id: Option<u64>,
    /// Smallest run `start_ms` in the zone.
    #[serde(default)]
    pub min_start_ms: Option<u64>,
    /// Largest run `start_ms` in the zone.
    #[serde(default)]
    pub max_start_ms: Option<u64>,
    /// Smallest journal event id in the zone.
    #[serde(default)]
    pub min_event_id: Option<u64>,
    /// Largest journal event id in the zone.
    #[serde(default)]
    pub max_event_id: Option<u64>,
    /// Smallest journal event timestamp in the zone.
    #[serde(default)]
    pub min_event_ts_ms: Option<u64>,
    /// Largest journal event timestamp in the zone.
    #[serde(default)]
    pub max_event_ts_ms: Option<u64>,
    /// Presence bitmap over [`EVENT_KINDS`] declaration order: bit `i`
    /// set ⇔ at least one event of `EVENT_KINDS[i]` is in the zone.
    #[serde(default)]
    pub event_kinds: u32,
    /// Presence bitmap over severities (`Info`=0, `Warn`=1, `Page`=2).
    #[serde(default)]
    pub event_severities: u32,
    /// Metric records in the zone. `None` on footers written before this
    /// field existed — unknown, so nothing may be skipped; `Some(0)`
    /// proves the segment is metric-free and the monitoring-plane rebuild
    /// can bypass its plane feed entirely during replay.
    #[serde(default)]
    pub metrics: Option<u64>,
}

/// Bit index of `kind` in [`ZoneMap::event_kinds`].
fn kind_bit(kind: EventKind) -> u32 {
    EVENT_KINDS
        .iter()
        .position(|k| *k == kind)
        .expect("EVENT_KINDS enumerates every kind") as u32
}

/// Bit index of `severity` in [`ZoneMap::event_severities`].
fn severity_bit(severity: EventSeverity) -> u32 {
    match severity {
        EventSeverity::Info => 0,
        EventSeverity::Warn => 1,
        EventSeverity::Page => 2,
    }
}

/// True when the closed intervals `[a_lo, a_hi]` and `[b_lo, b_hi]` are
/// disjoint; unknown bounds (`None`) never exclude.
fn disjoint(lo: Option<u64>, hi: Option<u64>, f_lo: Option<u64>, f_hi: Option<u64>) -> bool {
    matches!((hi, f_lo), (Some(h), Some(l)) if h < l)
        || matches!((lo, f_hi), (Some(l), Some(h)) if l > h)
}

impl ZoneMap {
    /// An empty zone at the current format version.
    pub fn new() -> ZoneMap {
        ZoneMap {
            version: ZONE_FORMAT_VERSION,
            metrics: Some(0),
            ..ZoneMap::default()
        }
    }

    /// Fold one WAL event into the zone's bounds. Only runs and journal
    /// events carry prunable columns; everything else merely rides along
    /// in the segment.
    fn observe(&mut self, event: &WalEvent) {
        fn lo(slot: &mut Option<u64>, v: u64) {
            *slot = Some(slot.map_or(v, |s| s.min(v)));
        }
        fn hi(slot: &mut Option<u64>, v: u64) {
            *slot = Some(slot.map_or(v, |s| s.max(v)));
        }
        match event {
            WalEvent::Run { rec } => {
                self.runs += 1;
                lo(&mut self.min_run_id, rec.id.0);
                hi(&mut self.max_run_id, rec.id.0);
                lo(&mut self.min_start_ms, rec.start_ms);
                hi(&mut self.max_start_ms, rec.start_ms);
            }
            WalEvent::Obs { rec } => {
                self.events += 1;
                lo(&mut self.min_event_id, rec.id.0);
                hi(&mut self.max_event_id, rec.id.0);
                lo(&mut self.min_event_ts_ms, rec.ts_ms);
                hi(&mut self.max_event_ts_ms, rec.ts_ms);
                self.event_kinds |= 1 << kind_bit(rec.kind);
                self.event_severities |= 1 << severity_bit(rec.severity);
            }
            WalEvent::Metric { .. } => {
                self.metrics = Some(self.metrics.unwrap_or(0) + 1);
            }
            _ => {}
        }
    }

    /// The zone is *proven* metric-free: a known count of zero. `None`
    /// (a pre-`metrics` footer) is unknown and returns false.
    pub fn excludes_metrics(&self) -> bool {
        self.version != 0 && self.metrics == Some(0)
    }

    /// At least one event of `kind` is in the zone.
    pub fn kind_present(&self, kind: EventKind) -> bool {
        self.event_kinds & (1 << kind_bit(kind)) != 0
    }

    /// True when **no** journal event in the zone can satisfy `filter` —
    /// the segment may be skipped without decoding it. Conservative: any
    /// unknown bound keeps the segment. Component and run-id conjuncts
    /// are not summarized, so they never prune on their own.
    pub fn excludes_events(&self, filter: &EventFilter) -> bool {
        if self.version == 0 {
            // Unversioned (pre-zone) data: nothing is known.
            return false;
        }
        if self.events == 0 {
            return true;
        }
        if let Some(kind) = filter.kind {
            if !self.kind_present(kind) {
                return true;
            }
        }
        if let Some(sev) = filter.severity {
            if self.event_severities & (1 << severity_bit(sev)) == 0 {
                return true;
            }
        }
        disjoint(
            self.min_event_id,
            self.max_event_id,
            filter.min_id,
            filter.max_id,
        ) || disjoint(
            self.min_event_ts_ms,
            self.max_event_ts_ms,
            filter.min_ts_ms,
            filter.max_ts_ms,
        )
    }
}

/// How far from the end of a segment the zone footer is sought. Footers
/// are one JSON line, well under this.
const ZONE_FOOTER_PROBE_BYTES: u64 = 64 << 10;

/// Read the zone footer of a sealed segment, if it has one. `None` for
/// pre-v2 segments (no footer), unreadable files, or anything that does
/// not parse — all of which degrade to "cannot prune", never to an error.
pub(crate) fn read_zone_footer(path: &Path) -> Option<ZoneMap> {
    let mut file = File::open(path).ok()?;
    let len = file.metadata().ok()?.len();
    if len == 0 {
        return None;
    }
    let probe = len.min(ZONE_FOOTER_PROBE_BYTES);
    file.seek(SeekFrom::End(-(probe as i64))).ok()?;
    let mut buf = Vec::with_capacity(probe as usize);
    std::io::Read::read_to_end(&mut file, &mut buf).ok()?;
    // The footer is the last newline-terminated, non-blank line.
    if buf.last() != Some(&b'\n') {
        return None;
    }
    let body = &buf[..buf.len() - 1];
    let line = match body.iter().rposition(|&b| b == b'\n') {
        Some(pos) => &body[pos + 1..],
        None if (len as usize) <= body.len() + 1 => body,
        // The probe window starts mid-line; a real footer fits well
        // within it, so this is not a footer.
        None => return None,
    };
    match serde_json::from_slice::<WalEvent>(line) {
        Ok(WalEvent::Zone { map }) => Some(map),
        _ => None,
    }
}

/// What one cold [`read_journal`] pass read and skipped.
#[derive(Debug, Clone, Default)]
pub struct JournalRead {
    /// Matching events, ascending by id. With a limit, the **most
    /// recent** `limit` matches (tail semantics).
    pub events: Vec<ObservabilityEvent>,
    /// Sealed segments not covered by the snapshot (candidates to read).
    pub segments_total: u64,
    /// Candidates skipped without decoding, via their zone footer.
    pub segments_pruned: u64,
    /// Journal events were imported from the snapshot.
    pub snapshot_used: bool,
    /// The snapshot's zone excluded the filter, so its records were
    /// skipped without parsing.
    pub snapshot_pruned: bool,
}

/// Read journal events from a WAL family on disk — snapshot, sealed
/// segments, active log — without opening the store (no locks taken,
/// usable cross-process). Zone maps make this sub-linear: segments (and
/// the snapshot) whose zones exclude `filter` are skipped whole, counted
/// in `wal.segments_pruned_total` on `registry` when one is given.
pub fn read_journal(
    path: impl AsRef<Path>,
    filter: &EventFilter,
    limit: Option<usize>,
    registry: Option<&Telemetry>,
) -> Result<JournalRead> {
    let path = path.as_ref();
    let mut out = JournalRead::default();
    let mut events: Vec<ObservabilityEvent> = Vec::new();

    // 1. The snapshot holds every journal event folded by checkpoints.
    let mut covered: u64 = 0;
    match snapshot::read_snapshot(path) {
        snapshot::SnapshotLoad::Missing | snapshot::SnapshotLoad::Corrupt(_) => {
            // No usable snapshot: the segments still hold the history
            // (until compaction), so read them all from seq 1.
        }
        snapshot::SnapshotLoad::Loaded {
            header,
            buf,
            records,
        } => {
            covered = header.covered_seq;
            if header
                .zone
                .as_ref()
                .is_some_and(|z| z.excludes_events(filter))
            {
                out.snapshot_pruned = true;
            } else {
                out.snapshot_used = true;
                for &(at, len) in &records {
                    if let Ok(WalEvent::Obs { rec }) =
                        serde_json::from_slice::<WalEvent>(&buf[at..at + len])
                    {
                        events.push(rec);
                    }
                }
            }
        }
    }

    // 2. Sealed segments past the snapshot, pruned by their footers.
    for (seq, seg_path) in segment::list_segments(path)? {
        if seq <= covered {
            continue;
        }
        out.segments_total += 1;
        if read_zone_footer(&seg_path).is_some_and(|z| z.excludes_events(filter)) {
            out.segments_pruned += 1;
            continue;
        }
        let (evs, _) = read_events_from(&seg_path, 0)?;
        events.extend(evs);
    }
    if let Some(registry) = registry {
        registry.add("wal.segments_pruned_total", out.segments_pruned);
    }

    // 3. The active log (never pruned: its zone is only in memory).
    let (evs, _) = read_events_from(path, 0)?;
    events.extend(evs);

    events.retain(|e| filter.matches(e));
    events.sort_by_key(|e| e.id);
    events.dedup_by_key(|e| e.id);
    if let Some(n) = limit {
        if events.len() > n {
            events.drain(..events.len() - n);
        }
    }
    out.events = events;
    Ok(out)
}

/// Serialize one event in the on-disk line format (`<json>\n`) onto `buf`.
/// The single definition of the format — `append`, `append_all`, and the
/// checkpoint writer all go through here.
fn encode_event(buf: &mut Vec<u8>, event: &WalEvent) -> Result<()> {
    serde_json::to_writer(&mut *buf, event)?;
    buf.push(b'\n');
    Ok(())
}

/// Wall-clock milliseconds for journal events the WAL itself emits
/// (recovery, policy, checkpoints). The store layer has no injected clock;
/// these are operator-facing timestamps, not test-controlled ones.
fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Incrementally read journal events appended to the WAL file at `path`
/// from byte `offset` onward, without opening the store (and so without
/// taking the owning process's locks). Complete lines that are not journal
/// events (runs, metrics, …) are skipped; a torn tail — a partial line the
/// owning process is still writing — is left in place for the next poll,
/// exactly as crash recovery treats it. If the file shrank underneath us,
/// reading restarts from the top. Returns the decoded events and the
/// offset to resume from.
///
/// This reads **one file**. To follow a checkpointing store across segment
/// rollover, use [`JournalFollower`], which chains sealed segments and the
/// active log.
pub fn read_events_from(
    path: impl AsRef<Path>,
    offset: u64,
) -> Result<(Vec<ObservabilityEvent>, u64)> {
    let path = path.as_ref();
    let Ok(meta) = std::fs::metadata(path) else {
        return Ok((Vec::new(), offset));
    };
    let mut at = if offset > meta.len() { 0 } else { offset };
    let mut reader = BufReader::new(File::open(path)?);
    reader.seek(SeekFrom::Start(at))?;
    let mut line = String::new();
    let mut out = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || !line.ends_with('\n') {
            break;
        }
        if let Ok(WalEvent::Obs { rec }) =
            serde_json::from_str::<WalEvent>(line.trim_end_matches('\n'))
        {
            out.push(rec);
        }
        at += n as u64;
    }
    Ok((out, at))
}

/// Cross-process journal tailing that survives checkpoints: tracks a byte
/// offset in the active log *and* the highest sealed segment already
/// drained, so when a checkpoint renames the active log to a segment
/// mid-follow, the next poll reads the rest of that segment first and then
/// continues into the fresh active log. This is the streaming path behind
/// `mltrace tail --follow`.
///
/// Best-effort like any cross-process tail: events inside a segment that
/// is compacted away *between* polls are gone (compaction is the point of
/// no return), and the poll never blocks on the owning process's locks.
pub struct JournalFollower {
    path: PathBuf,
    /// Highest segment sequence fully drained.
    seen_seq: u64,
    /// Resume offset — into the first unseen segment if one appears,
    /// otherwise into the active log.
    offset: u64,
    /// When set, only matching events are reported, and unseen sealed
    /// segments whose zone footer excludes the filter are skipped whole.
    filter: Option<EventFilter>,
    /// Sealed segments skipped via their zone footer so far.
    pruned: u64,
}

impl JournalFollower {
    /// Start following at the current end of the log (only events appended
    /// after this call are reported).
    pub fn from_end(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let seen_seq = segment::list_segments(&path)?
            .last()
            .map(|(seq, _)| *seq)
            .unwrap_or(0);
        let offset = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        Ok(JournalFollower {
            path,
            seen_seq,
            offset,
            filter: None,
            pruned: 0,
        })
    }

    /// Report only events matching `filter`, and skip sealed segments the
    /// filter's zone test excludes — without decoding a single line of
    /// them.
    pub fn with_filter(mut self, filter: EventFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Sealed segments skipped whole (zone footer excluded the filter)
    /// over this follower's lifetime.
    pub fn segments_pruned(&self) -> u64 {
        self.pruned
    }

    /// Decode every journal event appended since the last poll, in log
    /// order, crossing segment rollovers as needed.
    pub fn poll(&mut self) -> Result<Vec<ObservabilityEvent>> {
        let mut out = self.poll_unfiltered()?;
        if let Some(filter) = &self.filter {
            out.retain(|e| filter.matches(e));
        }
        Ok(out)
    }

    fn poll_unfiltered(&mut self) -> Result<Vec<ObservabilityEvent>> {
        let mut out = Vec::new();
        for _attempt in 0..2 {
            // Drain sealed segments newer than what we've seen: our offset
            // refers to the file that was the active log when we last
            // polled, which a checkpoint may have renamed to the first
            // unseen segment. Later unseen segments read from the top.
            for (seq, seg_path) in segment::list_segments(&self.path)? {
                if seq <= self.seen_seq {
                    continue;
                }
                // A zone footer that excludes the filter rules out every
                // line of the segment — including the unread suffix — so
                // the whole file can be skipped without decoding.
                if self.filter.as_ref().is_some_and(|f| {
                    read_zone_footer(&seg_path).is_some_and(|z| z.excludes_events(f))
                }) {
                    self.pruned += 1;
                    self.seen_seq = seq;
                    self.offset = 0;
                    continue;
                }
                let (evs, _) = read_events_from(&seg_path, self.offset)?;
                out.extend(evs);
                self.seen_seq = seq;
                self.offset = 0;
            }
            let active_len = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
            if active_len >= self.offset {
                let (evs, at) = read_events_from(&self.path, self.offset)?;
                out.extend(evs);
                self.offset = at;
                return Ok(out);
            }
            // The active log shrank under our offset: it was sealed (and
            // possibly already compacted away) after the listing above.
            // Re-list once to pick the new segment up.
        }
        // Still shrunk after a re-list: the covering segment is gone
        // (compacted); restart from the top of the new active log.
        let (evs, at) = read_events_from(&self.path, 0)?;
        out.extend(evs);
        self.offset = at;
        Ok(out)
    }
}

/// Pre-resolved telemetry handles for the WAL's hot paths. Cloned into
/// the writer so flush accounting happens under the writer lock without
/// touching the registry.
#[derive(Clone)]
struct WalTelemetry {
    /// Physical append calls (single or batched).
    appends: Counter,
    /// Events appended (a batch of N counts N).
    events: Counter,
    /// Flushes of buffered events to the OS.
    flushes: Counter,
    /// `fsync` barriers issued by [`WalStore::sync`] (and segment seals).
    fsyncs: Counter,
    /// Bytes handed to the log writer.
    bytes: Counter,
    /// Torn-tail truncations performed on open.
    recoveries: Counter,
    /// Log rewrites (checkpoint + compact via [`WalStore::rewrite`]).
    rewrites: Counter,
    /// Checkpoints written (snapshot + seal).
    checkpoints: Counter,
    /// Compaction passes that deleted at least one segment.
    compactions: Counter,
    /// Sealed segments deleted by compaction.
    segments_deleted: Counter,
    /// WAL events replayed on open (tail after the snapshot).
    replay_events: Counter,
    /// Opens that restored state from a snapshot.
    snapshot_loads: Counter,
    /// Opens that found a snapshot but fell back to full replay.
    snapshot_fallbacks: Counter,
    /// Size of the current snapshot in bytes.
    snapshot_bytes: Gauge,
    /// Wall-clock duration of open's recovery (snapshot load + replay).
    recovery: Histogram,
    /// Events per flush — the group-commit batch-size distribution. The
    /// ratio of `wal.append_events_total` to `wal.flushes_total` is the
    /// syscall amortization the §3.4 scale path buys.
    batch_events: Histogram,
    /// Latency of a physical WAL append, single or batched (serialize +
    /// buffered write + any policy-due flush).
    append_latency: Histogram,
}

impl WalTelemetry {
    fn new(registry: &Telemetry) -> Self {
        WalTelemetry {
            appends: registry.counter("wal.appends_total"),
            events: registry.counter("wal.append_events_total"),
            flushes: registry.counter("wal.flushes_total"),
            fsyncs: registry.counter("wal.fsyncs_total"),
            bytes: registry.counter("wal.bytes_written_total"),
            recoveries: registry.counter("wal.recoveries_total"),
            rewrites: registry.counter("wal.rewrites_total"),
            checkpoints: registry.counter("wal.checkpoints_total"),
            compactions: registry.counter("wal.compactions_total"),
            segments_deleted: registry.counter("wal.segments_deleted_total"),
            replay_events: registry.counter("wal.replay_events_total"),
            snapshot_loads: registry.counter("wal.snapshot_loads_total"),
            snapshot_fallbacks: registry.counter("wal.snapshot_fallbacks_total"),
            snapshot_bytes: registry.gauge("wal.snapshot_bytes"),
            recovery: registry.histogram("wal.recovery"),
            batch_events: registry.histogram("wal.group_commit_events"),
            append_latency: registry.histogram("wal.append_all"),
        }
    }
}

/// The log writer plus the group-commit bookkeeping it needs, kept under
/// one mutex so flush decisions see a consistent count.
struct WalWriter {
    out: BufWriter<File>,
    /// Events written since the last flush-to-OS.
    pending_events: usize,
    last_flush: Instant,
    tele: WalTelemetry,
}

impl WalWriter {
    fn new(file: File, tele: WalTelemetry) -> Self {
        WalWriter {
            out: BufWriter::new(file),
            pending_events: 0,
            last_flush: Instant::now(),
            tele,
        }
    }

    /// Append pre-serialized events and flush if the policy says so.
    fn write(&mut self, bytes: &[u8], events: usize, policy: DurabilityPolicy) -> Result<()> {
        self.out.write_all(bytes)?;
        self.pending_events += events;
        self.tele.bytes.add(bytes.len() as u64);
        self.tele.events.add(events as u64);
        let due = match policy {
            DurabilityPolicy::EveryEvent => true,
            DurabilityPolicy::Batch(n) => self.pending_events >= n,
            DurabilityPolicy::Interval(ms) => {
                self.last_flush.elapsed() >= Duration::from_millis(ms)
            }
            DurabilityPolicy::OnSync => false,
        };
        if due {
            self.flush_os()?;
        }
        Ok(())
    }

    /// Flush buffered bytes to the OS (not an fsync).
    fn flush_os(&mut self) -> Result<()> {
        self.out.flush()?;
        if self.pending_events > 0 {
            self.tele.flushes.incr();
            self.tele.batch_events.record(self.pending_events as u64);
        }
        self.pending_events = 0;
        self.last_flush = Instant::now();
        Ok(())
    }
}

/// A [`MemoryStore`] that records every mutation to an append-only log and
/// rebuilds itself from the newest snapshot plus the log tail on open.
pub struct WalStore {
    mem: MemoryStore,
    writer: Mutex<WalWriter>,
    path: PathBuf,
    policy: DurabilityPolicy,
    ckpt: CheckpointPolicy,
    recovered: bool,
    snapshot_fallback: bool,
    /// Shared with `mem`, so `store.*` and `wal.*` metrics land in one
    /// registry and one snapshot covers the whole storage layer.
    registry: Telemetry,
    tele: WalTelemetry,
    /// Sequence the *next* seal will use (1 + highest existing segment).
    next_seq: AtomicU64,
    /// Highest segment sequence the on-disk snapshot covers (0 = none).
    covered_seq: AtomicU64,
    /// Events appended or replayed since the last checkpoint.
    events_since_ckpt: AtomicU64,
    /// Bytes handed to the active log (including still-buffered ones).
    active_bytes: AtomicU64,
    /// Quiescence gate: every mutation holds `read` across its
    /// memory-apply + WAL-append pair; a checkpoint holds `write`, so the
    /// snapshot it takes never contains a record whose WAL line would land
    /// *after* the seal (which replay would then apply twice).
    gate: RwLock<()>,
    /// Re-entrancy damper: the checkpoint itself journals an event, whose
    /// append must not trigger another checkpoint.
    in_checkpoint: AtomicBool,
    /// Zone map of the active log, folded in on every append (the gate
    /// makes seal-vs-append race-free) and written as the segment's final
    /// line at seal time.
    active_zone: Mutex<ZoneMap>,
    /// Zone footers of the sealed segments on disk (`None` = no footer,
    /// pre-v2). Probed once at open, maintained by seal and compaction;
    /// backs [`Store::prunable_segments`] for `EXPLAIN`.
    zones: Mutex<BTreeMap<u64, Option<ZoneMap>>>,
}

impl WalStore {
    /// Open (creating if absent) a WAL-backed store at `path` with default
    /// [`WalOptions`] and rebuild state from snapshot + log tail.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_options(path, WalOptions::default())
    }

    /// Open with an explicit durability policy (see the module docs).
    pub fn open_with(path: impl AsRef<Path>, policy: DurabilityPolicy) -> Result<Self> {
        Self::open_with_options(
            path,
            WalOptions {
                durability: policy,
                ..WalOptions::default()
            },
        )
    }

    /// Open with full control over durability, checkpointing, and replay
    /// parallelism.
    pub fn open_with_options(path: impl AsRef<Path>, options: WalOptions) -> Result<Self> {
        let started = Instant::now();
        let path = path.as_ref().to_path_buf();
        let registry = Telemetry::new();
        let tele = WalTelemetry::new(&registry);
        let workers = options
            .replay_workers
            .unwrap_or_else(replay::default_workers)
            .max(1);
        let mut mem = MemoryStore::with_telemetry(registry.clone());

        // 1. Newest snapshot, if any. A snapshot is an accelerator, never
        // the only copy until compaction: anything unreadable falls back
        // to replaying every sealed segment from scratch. The bad file is
        // left in place for forensics; the next checkpoint replaces it.
        let mut covered: u64 = 0;
        let mut fallback: Option<String> = None;
        match snapshot::read_snapshot(&path) {
            snapshot::SnapshotLoad::Missing => {}
            snapshot::SnapshotLoad::Corrupt(why) => fallback = Some(why),
            snapshot::SnapshotLoad::Loaded {
                header,
                buf,
                records,
            } => {
                let slices: Vec<&[u8]> = records
                    .iter()
                    .map(|&(at, len)| &buf[at..at + len])
                    .collect();
                let imported = replay::parse_records(&slices, workers)
                    .map_err(|(i, e)| format!("record {i}: {e}"))
                    .and_then(|events| {
                        for event in events {
                            Self::apply(&mem, event).map_err(|e| format!("import: {e}"))?;
                        }
                        Ok(())
                    });
                match imported {
                    Ok(()) => {
                        mem.restore_watermarks(
                            header.next_run_id,
                            header.next_event_id,
                            header.runs_removed,
                        );
                        covered = header.covered_seq;
                        tele.snapshot_loads.incr();
                        tele.snapshot_bytes.set(buf.len() as i64);
                        // Operator-facing snapshot provenance: 0 means a
                        // pre-zone-map (v1) snapshot restored this state.
                        registry
                            .gauge("wal.snapshot_format_version")
                            .set(header.format_version as i64);
                        registry
                            .gauge("wal.snapshot_created_ms")
                            .set(header.created_ms as i64);
                    }
                    Err(why) => {
                        // A partial import may have polluted the store;
                        // start the fallback replay from a fresh one.
                        fallback = Some(why);
                        mem = MemoryStore::with_telemetry(registry.clone());
                    }
                }
            }
        }
        if fallback.is_some() {
            covered = 0;
            tele.snapshot_fallbacks.incr();
        }

        // 2. Sealed segments newer than the snapshot, oldest first.
        // Segments are immutable after rotation, so a torn tail here is
        // corruption, not crash recovery.
        let mut replayed: u64 = 0;
        let mut last_seq: u64 = 0;
        let segments = segment::list_segments(&path)?;
        let replayed_segments = segments.iter().filter(|(seq, _)| *seq > covered).count();
        // Probe every sealed segment's zone footer once; `None` (pre-v2
        // segment, no footer) simply means that segment is never pruned.
        let zone_cache: BTreeMap<u64, Option<ZoneMap>> = segments
            .iter()
            .map(|(seq, seg_path)| (*seq, read_zone_footer(seg_path)))
            .collect();
        // Segments whose zone footer proves them metric-free contribute
        // nothing to the monitoring-plane rebuild; count them so the
        // rebuild cost of a restart is inspectable from telemetry.
        let mut plane_skipped: u64 = 0;
        for (seq, seg_path) in &segments {
            last_seq = last_seq.max(*seq);
            if *seq <= covered {
                continue;
            }
            if zone_cache
                .get(seq)
                .and_then(|z| z.as_ref())
                .is_some_and(|z| z.excludes_metrics())
            {
                plane_skipped += 1;
            }
            let rep = replay::replay_file(seg_path, workers, |e| Self::apply(&mem, e))
                .map_err(|e| Self::replay_error(&path, seg_path, e))?;
            if rep.truncate_at.is_some() {
                return Err(StoreError::Corrupt(format!(
                    "sealed segment {} ends in a torn line; segments are immutable after \
                     rotation, so this file was modified outside mltrace",
                    seg_path.display()
                )));
            }
            replayed += rep.events_applied;
        }

        // 3. The active log, with torn-tail recovery.
        let mut recovered = false;
        let mut missing_final_newline = false;
        let mut active_len: u64 = 0;
        // The active log's zone accumulator is rebuilt alongside replay so
        // the footer written at the next seal covers replayed lines too.
        let mut active_zone = ZoneMap::new();
        if path.exists() {
            let rep = replay::replay_file(&path, workers, |e| {
                active_zone.observe(&e);
                Self::apply(&mem, e)
            })
            .map_err(|e| Self::replay_error(&path, &path, e))?;
            replayed += rep.events_applied;
            missing_final_newline = rep.missing_final_newline;
            if let Some(at) = rep.truncate_at {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(at)?;
                f.sync_data()?;
                recovered = true;
                missing_final_newline = false;
                tele.recoveries.incr();
            }
            active_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = WalWriter::new(file, tele.clone());
        if missing_final_newline {
            // A parseable final line without its newline (e.g. a
            // hand-edited log) is kept, but the separator must be restored
            // before anything is appended after it.
            writer.write(b"\n", 0, DurabilityPolicy::EveryEvent)?;
            active_len += 1;
        }
        tele.replay_events.add(replayed);
        tele.recovery.record(started.elapsed().as_nanos() as u64);
        registry
            .gauge("wal.replay_plane_skipped_segments")
            .set(plane_skipped as i64);
        // Re-arm drift dedup from persisted incidents: a breach that fires
        // again after restart must fold into its still-open incident, not
        // open a duplicate.
        mem.seed_drift_router();

        let store = WalStore {
            mem,
            writer: Mutex::new(writer),
            path,
            policy: options.durability,
            ckpt: options.checkpoint,
            recovered,
            snapshot_fallback: fallback.is_some(),
            registry,
            tele,
            next_seq: AtomicU64::new(last_seq.max(covered) + 1),
            covered_seq: AtomicU64::new(covered),
            events_since_ckpt: AtomicU64::new(replayed),
            active_bytes: AtomicU64::new(active_len),
            gate: RwLock::new(()),
            in_checkpoint: AtomicBool::new(false),
            active_zone: Mutex::new(active_zone),
            zones: Mutex::new(zone_cache),
        };
        // Journal the open itself: a torn-tail truncation or a snapshot
        // fallback is an operator fact worth keeping (queryable later via
        // `SELECT … FROM events`), and a relaxed fsync policy changes what
        // a crash can lose, so the transition is recorded too. The default
        // policy is not journaled — every CLI invocation opens the store
        // and would spam the log.
        if store.recovered {
            store.log_events(vec![ObservabilityEvent::new(
                EventKind::WalRecovered,
                EventSeverity::Warn,
                wall_ms(),
            )
            .component("wal")
            .detail(format!(
                "torn tail truncated during recovery of {}",
                store.path.display()
            ))])?;
        }
        if let Some(why) = fallback {
            store.log_events(vec![ObservabilityEvent::new(
                EventKind::WalRecovered,
                EventSeverity::Warn,
                wall_ms(),
            )
            .component("wal")
            .detail(format!(
                "snapshot {} unreadable ({why}); replayed {replayed_segments} segment(s) \
                 and the active log from scratch",
                snapshot::snapshot_path(&store.path).display()
            ))])?;
        }
        if store.policy != DurabilityPolicy::EveryEvent {
            store.log_events(vec![ObservabilityEvent::new(
                EventKind::WalPolicy,
                EventSeverity::Info,
                wall_ms(),
            )
            .component("wal")
            .detail(format!("durability policy {:?}", store.policy))
            .payload("policy", Value::Str(format!("{:?}", store.policy)))])?;
        }
        Ok(store)
    }

    /// Turn a replay failure into a [`StoreError`], attaching the byte
    /// offset and an operator hint for recovering via the last snapshot.
    fn replay_error(base: &Path, file: &Path, e: replay::ReplayError) -> StoreError {
        match e {
            replay::ReplayError::Store(e) => e,
            replay::ReplayError::Corrupt {
                lineno,
                offset,
                why,
            } => {
                let snap = snapshot::snapshot_path(base);
                let hint = if snap.exists() {
                    format!(
                        "recovery hint: state up to the last checkpoint is intact in {}; \
                         move {} aside and reopen to restore from the snapshot and the \
                         remaining segments, or truncate the file at byte offset {offset} \
                         to keep the undamaged prefix",
                        snap.display(),
                        file.display()
                    )
                } else {
                    format!(
                        "recovery hint: no snapshot exists; truncate {} at byte offset \
                         {offset} to keep the undamaged prefix, and run `mltrace checkpoint` \
                         periodically to bound loss from future corruption",
                        file.display()
                    )
                };
                StoreError::Corrupt(format!(
                    "{}: line {lineno} (byte offset {offset}): {why}; {hint}",
                    file.display()
                ))
            }
        }
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The durability policy this store was opened with.
    pub fn durability(&self) -> DurabilityPolicy {
        self.policy
    }

    /// True if the last open truncated a torn trailing line left by a
    /// crash mid-append.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// True if the last open found a snapshot but could not use it and
    /// fell back to replaying every segment from scratch.
    pub fn snapshot_fallback(&self) -> bool {
        self.snapshot_fallback
    }

    /// Flush buffered log writes to the OS **and** fsync. The hard
    /// durability barrier under every [`DurabilityPolicy`].
    pub fn sync(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush_os()?;
        w.out.get_ref().sync_data()?;
        self.tele.fsyncs.incr();
        Ok(())
    }

    fn apply(mem: &MemoryStore, event: WalEvent) -> Result<()> {
        match event {
            WalEvent::Component { rec } => mem.register_component(rec),
            WalEvent::Run { rec } => mem.restore_run(rec),
            WalEvent::IoPointer { rec } => mem.upsert_io_pointer(rec),
            WalEvent::Flag { io, flag } => mem.set_flag(&io, flag).map(|_| ()),
            // Replay feeds the monitoring plane but never re-routes drift
            // (the drift events/incidents produced online were themselves
            // journaled and replay as `Obs`/`Incident` records).
            WalEvent::Metric { rec } => mem.restore_metric(rec),
            WalEvent::DeleteRuns { ids } => mem.delete_runs(&ids).map(|_| ()),
            WalEvent::DeleteIos { names } => mem.delete_io_pointers(&names).map(|_| ()),
            WalEvent::Summary { rec } => mem.put_summary(rec),
            WalEvent::Obs { rec } => mem.restore_event(rec),
            WalEvent::Incident { rec } => mem.upsert_incident(rec),
            WalEvent::Diagnosis { key, rows } => mem.put_diagnosis(&key, rows),
            // Segment metadata, not state; replay filters these out before
            // apply, but the match must stay exhaustive.
            WalEvent::Zone { .. } => Ok(()),
        }
    }

    /// Run one mutation (memory apply + WAL append) under the checkpoint
    /// gate, then fire an automatic checkpoint if thresholds say so.
    fn with_gate<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let out = {
            let _quiesce = self.gate.read();
            f()
        };
        if out.is_ok() {
            self.checkpoint_if_due();
        }
        out
    }

    fn append(&self, event: &WalEvent) -> Result<()> {
        // Serialize outside the writer lock.
        let started = Instant::now();
        let mut buf = Vec::with_capacity(256);
        encode_event(&mut buf, event)?;
        self.active_zone.lock().observe(event);
        self.writer.lock().write(&buf, 1, self.policy)?;
        self.active_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.events_since_ckpt.fetch_add(1, Ordering::Relaxed);
        self.tele.appends.incr();
        self.tele
            .append_latency
            .record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Append a batch of events with one lock acquisition and one buffered
    /// write; all serialization happens outside the lock.
    fn append_all(&self, events: &[WalEvent]) -> Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let mut buf = Vec::with_capacity(256 * events.len());
        for event in events {
            encode_event(&mut buf, event)?;
        }
        {
            let mut zone = self.active_zone.lock();
            for event in events {
                zone.observe(event);
            }
        }
        self.writer.lock().write(&buf, events.len(), self.policy)?;
        self.active_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.events_since_ckpt
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        self.tele.appends.incr();
        self.tele
            .append_latency
            .record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    fn checkpoint_due(&self) -> bool {
        let CheckpointPolicy {
            every_events,
            every_bytes,
        } = self.ckpt;
        (every_events > 0 && self.events_since_ckpt.load(Ordering::Relaxed) >= every_events)
            || (every_bytes > 0 && self.active_bytes.load(Ordering::Relaxed) >= every_bytes)
    }

    /// Automatic checkpoint on the write path: best-effort (a failure
    /// leaves the log longer, never the data wrong) and damped so the
    /// checkpoint's own journal append cannot re-trigger it.
    fn checkpoint_if_due(&self) {
        if self.checkpoint_due() && !self.in_checkpoint.load(Ordering::SeqCst) {
            let _ = self.checkpoint();
        }
    }

    /// Checkpoint now: seal the active log into a segment, write a fresh
    /// snapshot of the full store state, and journal a
    /// [`EventKind::CheckpointWritten`] event. After this, a cold open
    /// replays only what is appended from here on. No-op (with
    /// `wrote_snapshot == false`) when nothing changed since the last
    /// checkpoint. Does not delete superseded segments — that is
    /// [`WalStore::compact_segments`].
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        let was = self.in_checkpoint.swap(true, Ordering::SeqCst);
        let result = self.checkpoint_guarded();
        if !was {
            self.in_checkpoint.store(false, Ordering::SeqCst);
        }
        result
    }

    fn checkpoint_guarded(&self) -> Result<CheckpointReport> {
        let report = {
            let _quiesced = self.gate.write();
            let next = self.next_seq.load(Ordering::SeqCst);
            let covered = self.covered_seq.load(Ordering::SeqCst);
            let active = self.active_bytes.load(Ordering::SeqCst);
            if active == 0 && covered + 1 == next {
                // Nothing appended since the last checkpoint and no orphan
                // segments: report the snapshot already on disk.
                let snapshot_bytes = std::fs::metadata(snapshot::snapshot_path(&self.path))
                    .map(|m| m.len())
                    .unwrap_or(0);
                return Ok(CheckpointReport {
                    sealed_seq: None,
                    snapshot_bytes,
                    events_folded: 0,
                    wrote_snapshot: false,
                });
            }
            // Seal the active log (if it has content) BEFORE writing the
            // snapshot: a crash between the two leaves an extra segment to
            // replay on top of the old snapshot — correct, merely slower.
            // The reverse order could write a snapshot that already
            // contains the sealed records and then replay them again.
            let sealed_seq = if active > 0 {
                // Take (and reset) the active log's zone; the fresh log
                // starts with an empty one.
                let zone = std::mem::replace(&mut *self.active_zone.lock(), ZoneMap::new());
                {
                    let mut w = self.writer.lock();
                    w.flush_os()?;
                    // The zone footer is the segment's final line. Written
                    // directly (not via `write`) so it is never counted as
                    // an appended event; a crash before the rename leaves
                    // it mid-file in the active log, where replay and
                    // journal readers skip it.
                    let mut footer = Vec::with_capacity(256);
                    encode_event(&mut footer, &WalEvent::Zone { map: zone.clone() })?;
                    w.out.write_all(&footer)?;
                    w.out.flush()?;
                    w.out.get_ref().sync_data()?;
                    self.tele.fsyncs.incr();
                    std::fs::rename(&self.path, segment::segment_path(&self.path, next))?;
                    segment::fsync_dir(&self.path);
                    let file = OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&self.path)?;
                    *w = WalWriter::new(file, self.tele.clone());
                }
                self.zones.lock().insert(next, Some(zone));
                self.next_seq.store(next + 1, Ordering::SeqCst);
                self.active_bytes.store(0, Ordering::SeqCst);
                Some(next)
            } else {
                // Active log empty but orphan segments exist past the
                // snapshot (a crash between seal and snapshot write):
                // fold them without sealing anything new.
                None
            };
            let covers = self.next_seq.load(Ordering::SeqCst) - 1;
            let records = self.state_events()?;
            let mut encoded = Vec::with_capacity(records.len());
            // The snapshot gets a zone over everything it folds, so cold
            // readers can skip parsing its records too.
            let mut snap_zone = ZoneMap::new();
            for event in &records {
                snap_zone.observe(event);
                encoded.push(serde_json::to_vec(event)?);
            }
            let (next_run_id, next_event_id, runs_removed) = self.mem.watermarks();
            let header = snapshot::SnapshotHeader {
                format_version: ZONE_FORMAT_VERSION,
                zone: Some(snap_zone),
                covered_seq: covers,
                next_run_id,
                next_event_id,
                runs_removed,
                records: encoded.len() as u64,
                created_ms: wall_ms(),
            };
            let snapshot_bytes = snapshot::write_snapshot(&self.path, &header, &encoded)?;
            let events_folded = self.events_since_ckpt.swap(0, Ordering::SeqCst);
            self.covered_seq.store(covers, Ordering::SeqCst);
            self.tele.checkpoints.incr();
            self.tele.snapshot_bytes.set(snapshot_bytes as i64);
            CheckpointReport {
                sealed_seq,
                snapshot_bytes,
                events_folded,
                wrote_snapshot: true,
            }
        };
        // Journal outside the write gate (the append takes a read lock);
        // `in_checkpoint` is still held by the caller, so this append
        // cannot re-trigger a checkpoint.
        let detail = match report.sealed_seq {
            Some(seq) => format!(
                "sealed segment {seq}; snapshot {} bytes, {} events folded",
                report.snapshot_bytes, report.events_folded
            ),
            None => format!(
                "snapshot {} bytes, {} events folded",
                report.snapshot_bytes, report.events_folded
            ),
        };
        self.log_events(vec![ObservabilityEvent::new(
            EventKind::CheckpointWritten,
            EventSeverity::Info,
            wall_ms(),
        )
        .component("wal")
        .detail(detail)
        .payload(
            "covered_seq",
            Value::Int(self.covered_seq.load(Ordering::SeqCst) as i64),
        )
        .payload("snapshot_bytes", Value::Int(report.snapshot_bytes as i64))])?;
        Ok(report)
    }

    /// The store's current state as WAL events, in replay order. The same
    /// emit order the pre-segmentation log rewrite used, so a snapshot
    /// import is byte-for-byte the same apply sequence as replaying a
    /// rewritten log. Metrics and summaries are enumerated from their own
    /// tables (not via registered components) so records logged for
    /// never-registered components survive the fold.
    fn state_events(&self) -> Result<Vec<WalEvent>> {
        let mut out = Vec::new();
        for rec in self.mem.components()? {
            out.push(WalEvent::Component { rec });
        }
        for rec in self.mem.io_pointers()? {
            let flag = rec.flag;
            let name = rec.name.clone();
            out.push(WalEvent::IoPointer { rec });
            if flag {
                out.push(WalEvent::Flag {
                    io: name,
                    flag: true,
                });
            }
        }
        for id in self.mem.run_ids()? {
            if let Some(rec) = self.mem.run(id)? {
                out.push(WalEvent::Run { rec });
            }
        }
        for comp in self.mem.metric_components() {
            for name in self.mem.metric_names(&comp)? {
                for rec in self.mem.metrics(&comp, &name)? {
                    out.push(WalEvent::Metric { rec });
                }
            }
        }
        for comp in self.mem.summary_components() {
            for rec in self.mem.summaries(&comp)? {
                out.push(WalEvent::Summary { rec });
            }
        }
        for rec in self.mem.scan_events(None, &EventFilter::all(), None)? {
            out.push(WalEvent::Obs { rec });
        }
        for rec in self.mem.incidents()? {
            out.push(WalEvent::Incident { rec });
        }
        let mut by_key: BTreeMap<String, Vec<DiagnosisRecord>> = BTreeMap::new();
        for row in self.mem.diagnoses()? {
            by_key
                .entry(row.incident_key.clone())
                .or_default()
                .push(row);
        }
        for (key, rows) in by_key {
            out.push(WalEvent::Diagnosis { key, rows });
        }
        Ok(out)
    }

    /// Delete sealed segments the snapshot covers, reclaiming disk. This
    /// is the point of no return: afterwards the snapshot is the only copy
    /// of the folded history. Journals [`EventKind::WalCompacted`] when
    /// anything was deleted.
    pub fn compact_segments(&self) -> Result<SegmentCompaction> {
        let covered = self.covered_seq.load(Ordering::SeqCst);
        let mut segments_deleted = 0usize;
        let mut bytes_reclaimed = 0u64;
        for (seq, seg_path) in segment::list_segments(&self.path)? {
            if seq > covered {
                continue;
            }
            let len = std::fs::metadata(&seg_path).map(|m| m.len()).unwrap_or(0);
            match std::fs::remove_file(&seg_path) {
                Ok(()) => {
                    segments_deleted += 1;
                    bytes_reclaimed += len;
                    self.zones.lock().remove(&seq);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        if segments_deleted > 0 {
            segment::fsync_dir(&self.path);
            self.tele.compactions.incr();
            self.tele.segments_deleted.add(segments_deleted as u64);
            self.log_events(vec![ObservabilityEvent::new(
                EventKind::WalCompacted,
                EventSeverity::Info,
                wall_ms(),
            )
            .component("wal")
            .detail(format!(
                "{segments_deleted} superseded segment(s) deleted, \
                 {bytes_reclaimed} bytes reclaimed"
            ))
            .payload("segments_deleted", Value::Int(segments_deleted as i64))
            .payload("bytes_reclaimed", Value::Int(bytes_reclaimed as i64))])?;
        }
        Ok(SegmentCompaction {
            segments_deleted,
            bytes_reclaimed,
        })
    }

    /// On-disk footprint of this store's WAL family.
    pub fn footprint(&self) -> Result<WalFootprint> {
        let segments = segment::list_segments(&self.path)?;
        let mut segment_bytes = 0u64;
        for (_, seg_path) in &segments {
            segment_bytes += std::fs::metadata(seg_path).map(|m| m.len()).unwrap_or(0);
        }
        let snapshot_bytes = std::fs::metadata(snapshot::snapshot_path(&self.path))
            .map(|m| m.len())
            .unwrap_or(0);
        Ok(WalFootprint {
            active_bytes: self.active_bytes.load(Ordering::Relaxed),
            segment_count: segments.len(),
            segment_bytes,
            snapshot_bytes,
            events_since_checkpoint: self.events_since_ckpt.load(Ordering::Relaxed),
        })
    }

    /// Shrink the log to the store's current state (dropping deleted runs
    /// and superseded records): a checkpoint followed by segment
    /// compaction. Used after retention/GDPR deletion to reclaim disk.
    /// Returns total on-disk bytes before and after.
    pub fn rewrite(&self) -> Result<(u64, u64)> {
        let before = self.footprint()?.total_bytes();
        self.checkpoint()?;
        self.compact_segments()?;
        self.tele.rewrites.incr();
        let after = self.footprint()?.total_bytes();
        Ok((before, after))
    }
}

impl Store for WalStore {
    fn register_component(&self, rec: ComponentRecord) -> Result<()> {
        self.with_gate(|| {
            self.mem.register_component(rec.clone())?;
            self.append(&WalEvent::Component { rec })
        })
    }

    fn component(&self, name: &str) -> Result<Option<ComponentRecord>> {
        self.mem.component(name)
    }

    fn components(&self) -> Result<Vec<ComponentRecord>> {
        self.mem.components()
    }

    fn log_run(&self, mut run: ComponentRunRecord) -> Result<RunId> {
        self.with_gate(|| {
            let id = self.mem.log_run(run.clone())?;
            // Log the record with its assigned id so replay restores ids.
            run.id = id;
            self.append(&WalEvent::Run { rec: run })?;
            Ok(id)
        })
    }

    fn log_runs(&self, runs: Vec<ComponentRunRecord>) -> Result<Vec<RunId>> {
        self.with_gate(|| {
            let mut recs = runs.clone();
            let ids = self.mem.log_runs(runs)?;
            for (rec, id) in recs.iter_mut().zip(ids.iter()) {
                rec.id = *id;
            }
            let events: Vec<WalEvent> = recs.into_iter().map(|rec| WalEvent::Run { rec }).collect();
            self.append_all(&events)?;
            Ok(ids)
        })
    }

    fn log_metrics(&self, metrics: Vec<MetricRecord>) -> Result<()> {
        let rolls = self.with_gate(|| {
            let rolls = self.mem.ingest_metrics(metrics.clone())?;
            let events: Vec<WalEvent> = metrics
                .into_iter()
                .map(|rec| WalEvent::Metric { rec })
                .collect();
            self.append_all(&events)?;
            Ok(rolls)
        })?;
        // Drift routing journals events and incidents of its own, so it
        // runs after the gate releases and takes the normal durable
        // `log_events`/`upsert_incident` paths (re-entering the gate while
        // a checkpointer waits for it would deadlock).
        self.mem.route_rolls(self, &rolls)
    }

    fn log_run_bundle(&self, bundle: RunBundle) -> Result<RunId> {
        let out = self.with_gate(|| {
            let mut events: Vec<WalEvent> = Vec::with_capacity(
                bundle.pointers.len() + 1 + bundle.metrics.len() + bundle.events.len(),
            );
            for rec in bundle.pointers {
                self.mem.upsert_io_pointer(rec.clone())?;
                events.push(WalEvent::IoPointer { rec });
            }
            let mut run = bundle.run;
            let id = self.mem.log_run(run.clone())?;
            run.id = id;
            events.push(WalEvent::Run { rec: run });
            let mut metrics = bundle.metrics;
            for m in &mut metrics {
                m.run_id = Some(id);
            }
            let rolls = self.mem.ingest_metrics(metrics.clone())?;
            events.extend(metrics.into_iter().map(|rec| WalEvent::Metric { rec }));
            // Journal events ride the same single group-commit append as
            // the run and its metrics: stamp the run id, let the memory
            // store assign ids (and fan out to live subscribers), then log
            // the id-stamped records.
            let mut obs = bundle.events;
            for e in &mut obs {
                if e.run_id.is_none() {
                    e.run_id = Some(id);
                }
            }
            if !obs.is_empty() {
                let event_ids = self.mem.log_events(obs.clone())?;
                for (e, eid) in obs.iter_mut().zip(event_ids.iter()) {
                    e.id = *eid;
                }
                events.extend(obs.into_iter().map(|rec| WalEvent::Obs { rec }));
            }
            self.append_all(&events)?;
            Ok((id, rolls))
        });
        let (id, rolls) = out?;
        // Outside the gate for the same reason as `log_metrics`.
        self.mem.route_rolls(self, &rolls)?;
        Ok(id)
    }

    fn run(&self, id: RunId) -> Result<Option<ComponentRunRecord>> {
        self.mem.run(id)
    }

    fn runs_for_component(&self, name: &str) -> Result<Vec<RunId>> {
        self.mem.runs_for_component(name)
    }

    fn latest_run(&self, name: &str) -> Result<Option<ComponentRunRecord>> {
        self.mem.latest_run(name)
    }

    fn run_ids(&self) -> Result<Vec<RunId>> {
        self.mem.run_ids()
    }

    // Reads never touch the log; the sharded scan paths (and their
    // telemetry, recorded in the shared registry) apply unchanged.
    fn scan_runs(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ComponentRunRecord>> {
        self.mem.scan_runs(since, filter, limit)
    }

    fn scan_runs_chunked(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        chunk_size: usize,
        visit: &mut dyn FnMut(&[ComponentRunRecord]) -> bool,
    ) -> Result<()> {
        self.mem.scan_runs_chunked(since, filter, chunk_size, visit)
    }

    fn scan_runs_indexed(
        &self,
        since: Option<RunId>,
        filter: &RunFilter,
        limit: Option<usize>,
        route: IndexRoute,
    ) -> Result<Option<Vec<ComponentRunRecord>>> {
        self.mem.scan_runs_indexed(since, filter, limit, route)
    }

    fn scan_runs_grouped(
        &self,
        filter: &RunFilter,
        route: Option<IndexRoute>,
        group_cols: &[usize],
        aggs: &[AggInput],
    ) -> Result<Option<Vec<GroupPartial>>> {
        self.mem.scan_runs_grouped(filter, route, group_cols, aggs)
    }

    fn index_stats(&self) -> Result<Option<IndexStats>> {
        self.mem.index_stats()
    }

    fn index_footprint(&self) -> Result<Vec<IndexFootprint>> {
        self.mem.index_footprint()
    }

    fn prunable_segments(&self, filter: &EventFilter) -> Result<Option<(u64, u64)>> {
        let zones = self.zones.lock();
        let total = zones.len() as u64;
        let pruned = zones
            .values()
            .filter(|z| z.as_ref().is_some_and(|z| z.excludes_events(filter)))
            .count() as u64;
        Ok(Some((pruned, total)))
    }

    fn component_history(&self, name: &str, limit: usize) -> Result<Vec<ComponentRunRecord>> {
        self.mem.component_history(name, limit)
    }

    fn upsert_io_pointer(&self, rec: IoPointerRecord) -> Result<()> {
        self.with_gate(|| {
            self.mem.upsert_io_pointer(rec.clone())?;
            self.append(&WalEvent::IoPointer { rec })
        })
    }

    fn io_pointer(&self, name: &str) -> Result<Option<IoPointerRecord>> {
        self.mem.io_pointer(name)
    }

    fn io_pointers(&self) -> Result<Vec<IoPointerRecord>> {
        self.mem.io_pointers()
    }

    fn producers_of(&self, io: &str) -> Result<Vec<RunId>> {
        self.mem.producers_of(io)
    }

    fn consumers_of(&self, io: &str) -> Result<Vec<RunId>> {
        self.mem.consumers_of(io)
    }

    fn set_flag(&self, io: &str, flag: bool) -> Result<bool> {
        self.with_gate(|| {
            let prev = self.mem.set_flag(io, flag)?;
            self.append(&WalEvent::Flag {
                io: io.to_owned(),
                flag,
            })?;
            Ok(prev)
        })
    }

    fn flagged(&self) -> Result<Vec<String>> {
        self.mem.flagged()
    }

    fn log_metric(&self, m: MetricRecord) -> Result<()> {
        let rolls = self.with_gate(|| {
            let rolls = self.mem.ingest_metrics(vec![m.clone()])?;
            self.append(&WalEvent::Metric { rec: m })?;
            Ok(rolls)
        })?;
        // Outside the gate for the same reason as `log_metrics`.
        self.mem.route_rolls(self, &rolls)
    }

    fn metrics(&self, component: &str, name: &str) -> Result<Vec<MetricRecord>> {
        self.mem.metrics(component, name)
    }

    fn metric_names(&self, component: &str) -> Result<Vec<String>> {
        self.mem.metric_names(component)
    }

    fn monitor_summaries(&self) -> Result<Vec<mltrace_metrics::MonitorSummary>> {
        self.mem.monitor_summaries()
    }

    fn delete_runs(&self, ids: &[RunId]) -> Result<usize> {
        self.with_gate(|| {
            let n = self.mem.delete_runs(ids)?;
            self.append(&WalEvent::DeleteRuns { ids: ids.to_vec() })?;
            Ok(n)
        })
    }

    fn delete_io_pointers(&self, names: &[String]) -> Result<usize> {
        self.with_gate(|| {
            let n = self.mem.delete_io_pointers(names)?;
            self.append(&WalEvent::DeleteIos {
                names: names.to_vec(),
            })?;
            Ok(n)
        })
    }

    fn put_summary(&self, s: CompactionSummary) -> Result<()> {
        self.with_gate(|| {
            self.mem.put_summary(s.clone())?;
            self.append(&WalEvent::Summary { rec: s })
        })
    }

    fn summaries(&self, component: &str) -> Result<Vec<CompactionSummary>> {
        self.mem.summaries(component)
    }

    fn log_events(&self, events: Vec<ObservabilityEvent>) -> Result<Vec<EventId>> {
        if events.is_empty() {
            return Ok(Vec::new());
        }
        self.with_gate(|| {
            let mut recs = events.clone();
            // The memory store assigns ids and publishes to live
            // subscribers; the log gets the id-stamped records so replay
            // restores ids.
            let ids = self.mem.log_events(events)?;
            for (rec, id) in recs.iter_mut().zip(ids.iter()) {
                rec.id = *id;
            }
            let wal_events: Vec<WalEvent> =
                recs.into_iter().map(|rec| WalEvent::Obs { rec }).collect();
            self.append_all(&wal_events)?;
            Ok(ids)
        })
    }

    fn scan_events(
        &self,
        since: Option<EventId>,
        filter: &EventFilter,
        limit: Option<usize>,
    ) -> Result<Vec<ObservabilityEvent>> {
        self.mem.scan_events(since, filter, limit)
    }

    fn upsert_incident(&self, rec: IncidentRecord) -> Result<()> {
        self.with_gate(|| {
            self.mem.upsert_incident(rec.clone())?;
            self.append(&WalEvent::Incident { rec })
        })
    }

    fn incidents(&self) -> Result<Vec<IncidentRecord>> {
        self.mem.incidents()
    }

    fn put_diagnosis(&self, incident_key: &str, rows: Vec<DiagnosisRecord>) -> Result<()> {
        self.with_gate(|| {
            self.mem.put_diagnosis(incident_key, rows.clone())?;
            self.append(&WalEvent::Diagnosis {
                key: incident_key.to_string(),
                rows,
            })
        })
    }

    fn diagnoses(&self) -> Result<Vec<DiagnosisRecord>> {
        self.mem.diagnoses()
    }

    fn event_bus(&self) -> Option<&EventBus> {
        self.mem.event_bus()
    }

    fn stats(&self) -> Result<StoreStats> {
        self.mem.stats()
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Remove a WAL family — active log, snapshot, sealed segments — so a
    /// stale sidecar from an earlier run can't pollute this one.
    fn purge(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(snapshot::snapshot_path(p));
        if let Ok(segs) = segment::list_segments(p) {
            for (_, sp) in segs {
                let _ = std::fs::remove_file(&sp);
            }
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mltrace-wal-test-{}-{}.jsonl",
            name,
            std::process::id()
        ));
        purge(&p);
        p
    }

    fn run(component: &str, start: u64, inputs: &[&str], outputs: &[&str]) -> ComponentRunRecord {
        ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 1,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn replay_restores_full_state() {
        let path = tmp("replay");
        let (a, b);
        {
            let s = WalStore::open(&path).unwrap();
            s.register_component(ComponentRecord::named("etl")).unwrap();
            s.upsert_io_pointer(IoPointerRecord::new("raw.csv", 5))
                .unwrap();
            a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            b = s
                .log_run(run("clean", 200, &["raw.csv"], &["clean.csv"]))
                .unwrap();
            s.set_flag("raw.csv", true).unwrap();
            s.log_metric(MetricRecord {
                component: "etl".into(),
                run_id: Some(a),
                name: "rows".into(),
                value: 123.0,
                ts_ms: 101,
            })
            .unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert_eq!(s.component("etl").unwrap().unwrap().name, "etl");
        assert_eq!(s.run(a).unwrap().unwrap().component, "etl");
        assert_eq!(s.producers_of("raw.csv").unwrap(), vec![a]);
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![b]);
        assert_eq!(s.flagged().unwrap(), vec!["raw.csv".to_string()]);
        assert_eq!(s.metrics("etl", "rows").unwrap().len(), 1);
        // Fresh ids continue above replayed ones.
        let c = s.log_run(run("etl", 300, &[], &[])).unwrap();
        assert!(c > b);
        purge(&path);
    }

    #[test]
    fn replay_applies_deletions() {
        let path = tmp("delete");
        {
            let s = WalStore::open(&path).unwrap();
            let a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            s.log_run(run("etl", 200, &[], &["raw.csv"])).unwrap();
            s.delete_runs(&[a]).unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 1);
        purge(&path);
    }

    #[test]
    fn corrupt_line_is_reported_with_line_number() {
        // Mid-log corruption: the bad line is newline-terminated (the
        // append completed), so this is not a torn tail and must error.
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"event\":\"Component\",\"rec\"\n").unwrap();
        match WalStore::open(&path) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("line 1"), "{msg}");
                assert!(msg.contains("byte offset 0"), "{msg}");
                assert!(msg.contains("recovery hint"), "{msg}");
            }
            Err(other) => panic!("expected corrupt error, got {other:?}"),
            Ok(_) => panic!("expected corrupt error, got Ok"),
        }
        purge(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_recovered() {
        let path = tmp("torn");
        let (a, b);
        {
            let s = WalStore::open(&path).unwrap();
            a = s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
            b = s.log_run(run("etl", 200, &[], &["raw.csv"])).unwrap();
            s.sync().unwrap();
        }
        // Simulate a crash mid-append: partial JSON, no trailing newline.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"Run\",\"rec\":{\"id\":3")
                .unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert!(s.recovered(), "torn tail should be recovered, not fatal");
        assert_eq!(
            s.telemetry().unwrap().snapshot().counters["wal.recoveries_total"],
            1,
            "recovery surfaces in telemetry"
        );
        assert_eq!(s.run_ids().unwrap(), vec![a, b], "complete events survive");
        // The torn fragment is gone; what grew past the clean prefix is the
        // journaled recovery event, itself a complete line.
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(
            content.len() as u64 > clean_len,
            "recovery event appended past the clean prefix"
        );
        assert!(
            !content.contains("{\"event\":\"Run\",\"rec\":{\"id\":3"),
            "torn fragment truncated away"
        );
        assert!(content.ends_with('\n'), "log ends on a complete line");
        let recoveries = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::WalRecovered),
                None,
            )
            .unwrap();
        assert_eq!(recoveries.len(), 1, "recovery is journaled");
        assert_eq!(recoveries[0].severity, EventSeverity::Warn);
        // Store remains writable and the next open replays cleanly.
        let c = s.log_run(run("etl", 300, &[], &[])).unwrap();
        assert!(c > b);
        s.sync().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert_eq!(s.stats().unwrap().runs, 3);
        assert_eq!(
            s.scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::WalRecovered),
                None
            )
            .unwrap()
            .len(),
            1,
            "recovery event replays without being re-emitted"
        );
        purge(&path);
    }

    #[test]
    fn torn_only_line_recovers_to_empty_store() {
        let path = tmp("torn-only");
        std::fs::write(&path, "{\"event\":\"Run\",\"rec\"").unwrap();
        let s = WalStore::open(&path).unwrap();
        assert!(s.recovered());
        assert_eq!(s.stats().unwrap().runs, 0);
        // The log holds exactly one record now: the journaled recovery.
        assert_eq!(s.stats().unwrap().events, 1);
        let evs = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(evs[0].kind, EventKind::WalRecovered);
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert_eq!(s.stats().unwrap().events, 1);
        purge(&path);
    }

    #[test]
    fn group_commit_buffers_until_sync() {
        let path = tmp("group-commit");
        {
            let s = WalStore::open_with(&path, DurabilityPolicy::Batch(10)).unwrap();
            assert_eq!(s.durability(), DurabilityPolicy::Batch(10));
            for i in 0..5 {
                s.log_run(run("etl", i, &[], &["raw.csv"])).unwrap();
            }
            // Below the batch threshold nothing has left the writer buffer.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
            s.sync().unwrap();
            assert!(std::fs::metadata(&path).unwrap().len() > 0);
            // Crossing the threshold flushes without an explicit sync.
            for i in 0..10 {
                s.log_run(run("etl", 100 + i, &[], &[])).unwrap();
            }
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 15);
        purge(&path);
    }

    #[test]
    fn batched_log_runs_replays_identically() {
        let path = tmp("batched");
        let ids;
        {
            let s = WalStore::open_with(&path, DurabilityPolicy::OnSync).unwrap();
            ids = s
                .log_runs(vec![
                    run("etl", 100, &[], &["raw.csv"]),
                    run("clean", 200, &["raw.csv"], &["clean.csv"]),
                    run("etl", 300, &[], &["raw.csv"]),
                ])
                .unwrap();
            assert_eq!(ids, vec![RunId(1), RunId(2), RunId(3)]);
            s.log_run_bundle(RunBundle {
                run: run("infer", 400, &["clean.csv"], &["pred-1"]),
                pointers: vec![IoPointerRecord::new("pred-1", 400)],
                metrics: vec![MetricRecord {
                    component: "infer".into(),
                    run_id: None,
                    name: "latency_ms".into(),
                    value: 2.0,
                    ts_ms: 401,
                }],
                events: vec![ObservabilityEvent::new(
                    EventKind::RunFinished,
                    EventSeverity::Info,
                    401,
                )
                .component("infer")],
            })
            .unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 4);
        assert_eq!(s.producers_of("raw.csv").unwrap(), vec![ids[0], ids[2]]);
        assert_eq!(s.consumers_of("raw.csv").unwrap(), vec![ids[1]]);
        let pts = s.metrics("infer", "latency_ms").unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].run_id, Some(RunId(4)));
        // The bundled journal event replays with its assigned id and the
        // run id it was stamped with (the OnSync open also journaled a
        // WalPolicy event, which took id 1).
        let evs = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::RunFinished),
                None,
            )
            .unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, EventId(2));
        assert_eq!(evs[0].run_id, Some(RunId(4)));
        assert_eq!(s.stats().unwrap().events, 2);
        purge(&path);
    }

    #[test]
    fn rewrite_shrinks_log_after_deletions() {
        let path = tmp("rewrite");
        let s = WalStore::open(&path).unwrap();
        let mut ids = Vec::new();
        for i in 0..50 {
            ids.push(s.log_run(run("c", i, &[], &["out.csv"])).unwrap());
        }
        s.delete_runs(&ids[..45]).unwrap();
        s.sync().unwrap();
        let (before, after) = s.rewrite().unwrap();
        assert!(after < before, "rewrite should shrink: {before} -> {after}");
        assert_eq!(s.stats().unwrap().runs, 5);
        // Rewrite = checkpoint + compact: the history is folded into the
        // snapshot and no sealed segment remains.
        let fp = s.footprint().unwrap();
        assert_eq!(fp.segment_count, 0);
        assert!(fp.snapshot_bytes > 0);
        // Store still writable after rewrite, and state replays.
        s.log_run(run("c", 999, &[], &[])).unwrap();
        s.sync().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 6);
        purge(&path);
    }

    #[test]
    fn wal_telemetry_counts_appends_flushes_and_fsyncs() {
        let path = tmp("telemetry");
        let s = WalStore::open_with(&path, DurabilityPolicy::Batch(4)).unwrap();
        s.log_runs(vec![
            run("etl", 100, &[], &["raw.csv"]),
            run("etl", 200, &[], &["raw.csv"]),
        ])
        .unwrap();
        s.log_run(run("etl", 300, &[], &[])).unwrap();
        s.sync().unwrap();
        let snap = s.telemetry().unwrap().snapshot();
        // 3 runs + the WalPolicy journal event the non-default open emits.
        assert_eq!(snap.counters["wal.append_events_total"], 4);
        assert_eq!(
            snap.counters["wal.appends_total"], 3,
            "policy event + one batched + one scalar"
        );
        assert_eq!(snap.counters["wal.fsyncs_total"], 1);
        assert!(snap.counters["wal.bytes_written_total"] > 0);
        assert!(snap.counters["wal.flushes_total"] >= 1);
        assert_eq!(snap.counters["wal.recoveries_total"], 0);
        let lat = &snap.histograms["wal.append_all"];
        assert_eq!(lat.count, 3, "all physical appends timed");
        // The memory store underneath reports into the same registry.
        assert_eq!(snap.counters["store.runs_logged_total"], 3);
        let batches = &snap.histograms["wal.group_commit_events"];
        assert_eq!(
            batches.sum, 4,
            "every appended event is attributed to some flush"
        );
        purge(&path);
    }

    #[test]
    fn empty_lines_tolerated() {
        let path = tmp("blank");
        std::fs::write(&path, "\n\n").unwrap();
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 0);
        purge(&path);
    }

    #[test]
    fn journal_events_and_incidents_replay_identically() {
        use crate::event::IncidentState;
        let path = tmp("journal");
        let ids;
        {
            let s = WalStore::open(&path).unwrap();
            ids = s
                .log_events(vec![
                    ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, 100)
                        .component("etl"),
                    ObservabilityEvent::new(EventKind::AlertFired, EventSeverity::Page, 110)
                        .component("infer")
                        .detail("null-rate breach"),
                ])
                .unwrap();
            assert_eq!(ids, vec![EventId(1), EventId(2)]);
            s.upsert_incident(IncidentRecord {
                key: "infer/null-rate".into(),
                state: IncidentState::Open,
                severity: EventSeverity::Page,
                subject: "infer".into(),
                opened_ms: 110,
                last_fire_ms: 110,
                resolved_ms: None,
                fire_count: 1,
                suppressed_count: 0,
                burn_ms: 0,
                detail: "null-rate breach".into(),
            })
            .unwrap();
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        let evs = s.scan_events(None, &EventFilter::all(), None).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].id, EventId(1));
        assert_eq!(evs[1].kind, EventKind::AlertFired);
        assert_eq!(evs[1].detail, "null-rate breach");
        let incs = s.incidents().unwrap();
        assert_eq!(incs.len(), 1);
        assert_eq!(incs[0].key, "infer/null-rate");
        assert_eq!(incs[0].state, IncidentState::Open);
        // Fresh event ids continue above replayed ones.
        let next = s
            .log_events(vec![ObservabilityEvent::new(
                EventKind::RunFinished,
                EventSeverity::Info,
                120,
            )])
            .unwrap();
        assert_eq!(next, vec![EventId(3)]);
        purge(&path);
    }

    #[test]
    fn rewrite_preserves_journal_and_incidents() {
        use crate::event::IncidentState;
        let path = tmp("rewrite-journal");
        let s = WalStore::open(&path).unwrap();
        let mut run_ids = Vec::new();
        for i in 0..20 {
            run_ids.push(s.log_run(run("c", i, &[], &["out.csv"])).unwrap());
        }
        s.log_events(vec![ObservabilityEvent::new(
            EventKind::StalenessFlagged,
            EventSeverity::Warn,
            50,
        )
        .component("c")])
            .unwrap();
        s.upsert_incident(IncidentRecord {
            key: "c/stale".into(),
            state: IncidentState::Resolved,
            severity: EventSeverity::Page,
            subject: "c".into(),
            opened_ms: 10,
            last_fire_ms: 20,
            resolved_ms: Some(40),
            fire_count: 3,
            suppressed_count: 1,
            burn_ms: 30,
            detail: "resolved after quiet period".into(),
        })
        .unwrap();
        s.delete_runs(&run_ids[..15]).unwrap();
        s.sync().unwrap();
        s.rewrite().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert_eq!(s.stats().unwrap().runs, 5);
        let evs = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::StalenessFlagged),
                None,
            )
            .unwrap();
        assert_eq!(evs.len(), 1, "journal survives rewrite");
        assert_eq!(evs[0].kind, EventKind::StalenessFlagged);
        // The rewrite itself is journaled: a checkpoint and a compaction.
        assert_eq!(
            s.scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::CheckpointWritten),
                None
            )
            .unwrap()
            .len(),
            1
        );
        assert_eq!(
            s.scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::WalCompacted),
                None
            )
            .unwrap()
            .len(),
            1
        );
        let incs = s.incidents().unwrap();
        assert_eq!(incs.len(), 1, "incidents survive rewrite");
        assert_eq!(incs[0].resolved_ms, Some(40));
        purge(&path);
    }

    #[test]
    fn read_events_from_streams_and_tolerates_torn_tail() {
        let path = tmp("follow");
        let s = WalStore::open(&path).unwrap();
        s.log_run(run("etl", 100, &[], &["raw.csv"])).unwrap();
        s.log_events(vec![ObservabilityEvent::new(
            EventKind::RunStarted,
            EventSeverity::Info,
            100,
        )
        .component("etl")])
            .unwrap();
        s.sync().unwrap();
        // First poll from the top: run lines are skipped, the journal
        // event is decoded.
        let (evs, offset) = read_events_from(&path, 0).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::RunStarted);
        assert_eq!(offset, std::fs::metadata(&path).unwrap().len());
        // Nothing new: no events, offset stays put.
        let (evs, offset2) = read_events_from(&path, offset).unwrap();
        assert!(evs.is_empty());
        assert_eq!(offset2, offset);
        // New event arrives; the poll picks up only the delta.
        s.log_events(vec![ObservabilityEvent::new(
            EventKind::RunFinished,
            EventSeverity::Info,
            200,
        )])
        .unwrap();
        s.sync().unwrap();
        let (evs, offset3) = read_events_from(&path, offset2).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::RunFinished);
        // A torn tail (writer mid-append) is left for the next poll.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"Obs\",\"rec\":{\"id\":9")
                .unwrap();
        }
        let (evs, offset4) = read_events_from(&path, offset3).unwrap();
        assert!(evs.is_empty(), "partial line is not decoded");
        assert_eq!(offset4, offset3, "offset does not advance past torn tail");
        purge(&path);
    }

    #[test]
    fn checkpoint_on_empty_store_is_a_noop() {
        let path = tmp("ckpt-empty");
        let s = WalStore::open(&path).unwrap();
        let report = s.checkpoint().unwrap();
        assert!(!report.wrote_snapshot, "nothing to checkpoint");
        assert_eq!(report.sealed_seq, None);
        assert_eq!(s.footprint().unwrap().snapshot_bytes, 0);
        purge(&path);
    }

    #[test]
    fn checkpoint_folds_state_and_cold_open_replays_only_the_tail() {
        let path = tmp("ckpt");
        {
            let s = WalStore::open(&path).unwrap();
            for i in 0..10 {
                s.log_run(run("etl", i, &[], &["raw.csv"])).unwrap();
            }
            let report = s.checkpoint().unwrap();
            assert!(report.wrote_snapshot);
            assert_eq!(report.sealed_seq, Some(1));
            assert!(report.snapshot_bytes > 0);
            assert_eq!(report.events_folded, 10);
            for i in 0..3 {
                s.log_run(run("etl", 100 + i, &[], &[])).unwrap();
            }
            s.sync().unwrap();
        }
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert!(!s.snapshot_fallback());
        assert_eq!(s.stats().unwrap().runs, 13);
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["wal.snapshot_loads_total"], 1);
        // The tail is the CheckpointWritten journal event plus 3 runs; the
        // 10 folded runs come from the snapshot, not replay.
        assert_eq!(snap.counters["wal.replay_events_total"], 4);
        assert_eq!(snap.histograms["wal.recovery"].count, 1);
        // Fresh ids continue above snapshot-restored ones.
        let c = s.log_run(run("etl", 200, &[], &[])).unwrap();
        assert_eq!(c, RunId(14));
        // Footprint sees the sealed segment until compaction reclaims it.
        let fp = s.footprint().unwrap();
        assert_eq!(fp.segment_count, 1);
        assert!(fp.segment_bytes > 0);
        assert!(fp.snapshot_bytes > 0);
        let done = s.compact_segments().unwrap();
        assert_eq!(done.segments_deleted, 1);
        assert!(done.bytes_reclaimed > 0);
        assert_eq!(s.footprint().unwrap().segment_count, 0);
        purge(&path);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_replay() {
        let path = tmp("snap-corrupt");
        {
            let s = WalStore::open(&path).unwrap();
            for i in 0..8 {
                s.log_run(run("etl", i, &[], &["raw.csv"])).unwrap();
            }
            s.checkpoint().unwrap();
            s.log_run(run("etl", 99, &[], &[])).unwrap();
            s.sync().unwrap();
        }
        // Scribble over the snapshot. The sealed segment still holds the
        // full history (no compaction ran), so nothing is lost.
        std::fs::write(snapshot::snapshot_path(&path), b"garbage").unwrap();
        let s = WalStore::open(&path).unwrap();
        assert!(s.snapshot_fallback());
        assert!(!s.recovered());
        assert_eq!(s.stats().unwrap().runs, 9);
        let snap = s.telemetry().unwrap().snapshot();
        assert_eq!(snap.counters["wal.snapshot_fallbacks_total"], 1);
        assert_eq!(snap.counters["wal.snapshot_loads_total"], 0);
        // Full replay: 8 runs in the segment + checkpoint event + 1 run.
        assert_eq!(snap.counters["wal.replay_events_total"], 10);
        // The fallback is journaled for the operator.
        let evs = s
            .scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::WalRecovered),
                None,
            )
            .unwrap();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].detail.contains("unreadable"), "{}", evs[0].detail);
        // The next checkpoint replaces the bad snapshot and heals the open.
        s.checkpoint().unwrap();
        drop(s);
        let s = WalStore::open(&path).unwrap();
        assert!(!s.snapshot_fallback());
        assert_eq!(s.stats().unwrap().runs, 9);
        purge(&path);
    }

    #[test]
    fn serial_and_parallel_replay_agree() {
        let path = tmp("parallel");
        {
            let s = WalStore::open_with(&path, DurabilityPolicy::OnSync).unwrap();
            for batch in 0u64..20 {
                let runs: Vec<ComponentRunRecord> = (0u64..1000)
                    .map(|i| run("etl", batch * 1000 + i, &["in.csv"], &["out.csv"]))
                    .collect();
                s.log_runs(runs).unwrap();
            }
            s.sync().unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(
            len > (2 << 20),
            "fixture must exceed the parallel replay threshold (got {len} bytes)"
        );
        // Torn tail on top, so the parallel path proves its tail handling.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"Run\",\"rec\":{\"id\":7")
                .unwrap();
        }
        let copy = tmp("parallel-copy");
        std::fs::copy(&path, &copy).unwrap();
        let serial = WalStore::open_with_options(
            &path,
            WalOptions {
                replay_workers: Some(1),
                ..WalOptions::default()
            },
        )
        .unwrap();
        let parallel = WalStore::open_with_options(
            &copy,
            WalOptions {
                replay_workers: Some(4),
                ..WalOptions::default()
            },
        )
        .unwrap();
        assert!(serial.recovered() && parallel.recovered());
        assert_eq!(serial.stats().unwrap().runs, 20_000);
        assert_eq!(serial.stats().unwrap().runs, parallel.stats().unwrap().runs);
        assert_eq!(serial.run_ids().unwrap(), parallel.run_ids().unwrap());
        assert_eq!(
            serial.producers_of("out.csv").unwrap(),
            parallel.producers_of("out.csv").unwrap()
        );
        assert_eq!(
            serial.consumers_of("in.csv").unwrap(),
            parallel.consumers_of("in.csv").unwrap()
        );
        purge(&path);
        purge(&copy);
    }

    /// Journal event with a fixed subject component, for zone tests.
    fn obs(kind: EventKind, severity: EventSeverity, ts_ms: u64) -> ObservabilityEvent {
        ObservabilityEvent::new(kind, severity, ts_ms).component("etl")
    }

    #[test]
    fn zone_map_bounds_and_bitmaps_gate_pruning() {
        let mut zone = ZoneMap::new();
        let mut a = obs(EventKind::AlertFired, EventSeverity::Warn, 100);
        a.id = EventId(5);
        let mut b = obs(EventKind::RunStarted, EventSeverity::Info, 200);
        b.id = EventId(9);
        zone.observe(&WalEvent::Obs { rec: a });
        zone.observe(&WalEvent::Obs { rec: b });
        assert_eq!(zone.events, 2);
        // Kind bitmap: present kinds keep the zone, absent kinds prune.
        assert!(!zone.excludes_events(&EventFilter::all().with_kind(EventKind::AlertFired)));
        assert!(zone.excludes_events(&EventFilter::all().with_kind(EventKind::IncidentOpened)));
        // Severity bitmap (exact-match filter semantics).
        assert!(!zone.excludes_events(&EventFilter::all().with_severity(EventSeverity::Warn)));
        assert!(zone.excludes_events(&EventFilter::all().with_severity(EventSeverity::Page)));
        // Timestamp bounds: disjoint windows prune, overlapping keep.
        assert!(zone.excludes_events(&EventFilter::all().at_or_after(201)));
        assert!(zone.excludes_events(&EventFilter::all().at_or_before(99)));
        assert!(!zone.excludes_events(&EventFilter::all().at_or_after(150)));
        // Event-id bounds.
        let mut above = EventFilter::all();
        above.min_id = Some(10);
        assert!(zone.excludes_events(&above));
        let mut within = EventFilter::all();
        within.min_id = Some(6);
        within.max_id = Some(7);
        assert!(!zone.excludes_events(&within));
        // A zone with no journal events excludes every event read — a
        // runs-only segment never needs decoding for `tail`.
        let mut runs_only = ZoneMap::new();
        runs_only.observe(&WalEvent::Run {
            rec: run("etl", 100, &[], &[]),
        });
        assert!(runs_only.excludes_events(&EventFilter::all()));
        assert_eq!(runs_only.runs, 1);
        assert_eq!(runs_only.min_start_ms, Some(100));
    }

    #[test]
    fn unversioned_zones_and_snapshot_headers_decode_and_never_prune() {
        // `{}` is what a pre-v2 reader-writer pair would round-trip: every
        // field defaults, version 0 disables pruning entirely.
        let zone: ZoneMap = serde_json::from_str("{}").unwrap();
        assert_eq!(zone.version, 0);
        assert!(!zone.excludes_events(&EventFilter::all().with_kind(EventKind::AlertFired)));
        // Pre-v2 snapshot headers carry neither format_version nor zone.
        let header: snapshot::SnapshotHeader = serde_json::from_str(
            r#"{"covered_seq":3,"next_run_id":5,"next_event_id":7,"runs_removed":1,"records":0,"created_ms":42}"#,
        )
        .unwrap();
        assert_eq!(header.format_version, 0);
        assert!(header.zone.is_none());
        assert_eq!(header.covered_seq, 3);
    }

    #[test]
    fn zone_footers_prune_cold_journal_reads() {
        let path = tmp("zone-prune");
        let s = WalStore::open(&path).unwrap();
        // Three checkpoints, each sealing a segment with distinct kinds.
        // The post-seal CheckpointWritten event lands in the *next*
        // segment, so segment 1 holds only RunStarted.
        s.log_events(vec![
            obs(EventKind::RunStarted, EventSeverity::Info, 100),
            obs(EventKind::RunStarted, EventSeverity::Info, 110),
        ])
        .unwrap();
        s.checkpoint().unwrap();
        s.log_events(vec![obs(EventKind::AlertFired, EventSeverity::Page, 200)])
            .unwrap();
        s.checkpoint().unwrap();
        s.log_events(vec![obs(
            EventKind::IncidentOpened,
            EventSeverity::Warn,
            300,
        )])
        .unwrap();
        s.checkpoint().unwrap();
        let alerts = EventFilter::all().with_kind(EventKind::AlertFired);
        // The live store's zone cache answers EXPLAIN-style estimates:
        // segments 1 (runs only) and 3 (incident) are prunable.
        assert_eq!(s.prunable_segments(&alerts).unwrap(), Some((2, 3)));
        drop(s);
        // Healthy cold read: the snapshot covers every segment, its zone
        // includes AlertFired, so the answer comes from the snapshot.
        let t = Telemetry::new();
        let read = read_journal(&path, &alerts, None, Some(&t)).unwrap();
        assert!(read.snapshot_used && !read.snapshot_pruned);
        assert_eq!(read.segments_total, 0);
        assert_eq!(read.events.len(), 1);
        assert_eq!(read.events[0].kind, EventKind::AlertFired);
        // Without the snapshot the segments are the only copy — and the
        // zone footers skip 2 of 3 without decoding a line.
        std::fs::remove_file(snapshot::snapshot_path(&path)).unwrap();
        let t = Telemetry::new();
        let read = read_journal(&path, &alerts, None, Some(&t)).unwrap();
        assert!(!read.snapshot_used && !read.snapshot_pruned);
        assert_eq!(read.segments_total, 3);
        assert_eq!(read.segments_pruned, 2);
        assert_eq!(read.events.len(), 1);
        assert_eq!(read.events[0].kind, EventKind::AlertFired);
        assert_eq!(
            t.snapshot()
                .counters
                .get("wal.segments_pruned_total")
                .copied(),
            Some(2)
        );
        purge(&path);
    }

    #[test]
    fn snapshot_zone_skips_parsing_when_filter_excluded() {
        let path = tmp("zone-snapshot");
        {
            let s = WalStore::open(&path).unwrap();
            s.log_run(run("etl", 100, &[], &["out.csv"])).unwrap();
            s.log_events(vec![obs(EventKind::AlertFired, EventSeverity::Page, 200)])
                .unwrap();
            s.checkpoint().unwrap();
        }
        // No StalenessFlagged anywhere: the snapshot's zone proves it, so
        // its records are skipped without parsing a single one.
        let read = read_journal(
            &path,
            &EventFilter::all().with_kind(EventKind::StalenessFlagged),
            None,
            None,
        )
        .unwrap();
        assert!(read.snapshot_pruned && !read.snapshot_used);
        assert_eq!(read.segments_total, 0);
        assert!(read.events.is_empty());
        purge(&path);
    }

    #[test]
    fn segments_without_zone_footers_still_replay_and_read() {
        let path = tmp("zone-v1");
        {
            let s = WalStore::open(&path).unwrap();
            s.log_run(run("etl", 100, &[], &["out.csv"])).unwrap();
            s.log_events(vec![obs(EventKind::AlertFired, EventSeverity::Page, 200)])
                .unwrap();
            s.checkpoint().unwrap();
        }
        // Strip the footer line, leaving the pre-v2 segment layout.
        let seg = segment::segment_path(&path, 1);
        assert!(read_zone_footer(&seg).is_some());
        let body = std::fs::read(&seg).unwrap();
        let cut = body[..body.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap();
        std::fs::write(&seg, &body[..cut]).unwrap();
        assert!(read_zone_footer(&seg).is_none());
        // Force replay from the footerless segment, as a pre-v2 tree.
        std::fs::remove_file(snapshot::snapshot_path(&path)).unwrap();
        let s = WalStore::open(&path).unwrap();
        assert!(!s.recovered());
        assert_eq!(s.stats().unwrap().runs, 1);
        assert_eq!(
            s.scan_events(
                None,
                &EventFilter::all().with_kind(EventKind::AlertFired),
                None
            )
            .unwrap()
            .len(),
            1
        );
        drop(s);
        // Cold reads degrade to "cannot prune", never to an error.
        let read = read_journal(
            &path,
            &EventFilter::all().with_kind(EventKind::IncidentOpened),
            None,
            None,
        )
        .unwrap();
        assert_eq!(read.segments_total, 1);
        assert_eq!(read.segments_pruned, 0);
        assert!(read.events.is_empty());
        purge(&path);
    }

    #[test]
    fn journal_follower_skips_sealed_segments_via_zone() {
        let path = tmp("follower-zone");
        let s = WalStore::open(&path).unwrap();
        let mut f = JournalFollower::from_end(&path)
            .unwrap()
            .with_filter(EventFilter::all().with_kind(EventKind::AlertFired));
        s.log_events(vec![
            obs(EventKind::RunStarted, EventSeverity::Info, 100),
            obs(EventKind::RunFinished, EventSeverity::Info, 110),
        ])
        .unwrap();
        // Seals a segment whose zone has no AlertFired: the follower must
        // cross the rollover without decoding it.
        s.checkpoint().unwrap();
        s.log_events(vec![obs(EventKind::AlertFired, EventSeverity::Page, 200)])
            .unwrap();
        s.sync().unwrap();
        let evs = f.poll().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::AlertFired);
        assert_eq!(f.segments_pruned(), 1);
        // Quiet follow-up poll: nothing new, nothing re-read.
        assert!(f.poll().unwrap().is_empty());
        assert_eq!(f.segments_pruned(), 1);
        purge(&path);
    }
}
