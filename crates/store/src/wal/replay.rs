//! WAL replay: turn a log file back into store state, fast.
//!
//! Replay cost is dominated by serde parsing, not by applying records to
//! the memory store, so the pipeline splits the two: a reader thread cuts
//! the file into newline-aligned blocks, a pool of `std::thread::scope`
//! workers parses blocks concurrently, and the calling thread applies the
//! parsed events strictly in file order (a small reorder buffer absorbs
//! out-of-order completions). Apply order is what makes replay
//! deterministic — id watermarks, journal ordering, and delete-then-log
//! sequences all assume the log's own order — so only the parse stage
//! fans out.
//!
//! Small files skip the pipeline entirely: below [`PARALLEL_MIN_BYTES`]
//! (or with one worker) a plain serial read wins, and the serial path is
//! also the semantic reference — both paths must agree on torn-tail
//! handling, blank-line tolerance, and error positions, which the
//! `serial_and_parallel_replay_agree` test in the parent module pins.

use super::WalEvent;
use crate::error::{Result, StoreError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;
use std::sync::{mpsc, Arc};

/// Newline-aligned block handed to a parse worker.
const BLOCK_BYTES: usize = 2 << 20;

/// Files smaller than this replay serially — thread spin-up would cost
/// more than the parse fan-out saves.
const PARALLEL_MIN_BYTES: u64 = 2 << 20;

/// What replaying one file found.
#[derive(Debug, Default)]
pub(crate) struct FileReplay {
    /// WAL events decoded and applied.
    pub events_applied: u64,
    /// A torn tail (unparseable final partial line) starts at this byte
    /// offset; the caller decides whether to truncate (active log) or
    /// treat it as corruption (sealed segment).
    pub truncate_at: Option<u64>,
    /// The final line parsed but lacked its trailing newline; the caller
    /// must restore the separator before appending.
    pub missing_final_newline: bool,
}

/// Replay failure: real corruption (with position) or a store error.
pub(crate) enum ReplayError {
    /// A complete line (or a mid-file region) failed to parse.
    Corrupt {
        /// 1-based line number of the bad line.
        lineno: usize,
        /// Byte offset where the bad line starts.
        offset: u64,
        /// The underlying parse error.
        why: String,
    },
    /// I/O or apply-side failure.
    Store(StoreError),
}

impl From<StoreError> for ReplayError {
    fn from(e: StoreError) -> Self {
        ReplayError::Store(e)
    }
}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Store(e.into())
    }
}

/// Parse workers sized to the machine; capped because replay is
/// memory-bandwidth-bound well before 8 parsers saturate.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Replay every WAL line of `path` through `apply`, in file order.
pub(crate) fn replay_file(
    path: &Path,
    workers: usize,
    apply: impl FnMut(WalEvent) -> Result<()>,
) -> std::result::Result<FileReplay, ReplayError> {
    let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if workers <= 1 || len < PARALLEL_MIN_BYTES {
        replay_serial(path, apply)
    } else {
        replay_parallel(path, workers, apply)
    }
}

/// Parse pre-split record payloads (snapshot import), preserving order.
/// The error carries the index of the first undecodable record.
pub(crate) fn parse_records(
    slices: &[&[u8]],
    workers: usize,
) -> std::result::Result<Vec<WalEvent>, (usize, serde_json::Error)> {
    if workers <= 1 || slices.len() < 4096 {
        return slices
            .iter()
            .enumerate()
            .map(|(i, s)| serde_json::from_slice::<WalEvent>(s).map_err(|e| (i, e)))
            .collect();
    }
    let chunk = slices.len().div_ceil(workers);
    let parsed = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .chunks(chunk)
            .enumerate()
            .map(|(ci, part)| {
                scope.spawn(move || {
                    part.iter()
                        .enumerate()
                        .map(|(i, s)| {
                            serde_json::from_slice::<WalEvent>(s).map_err(|e| (ci * chunk + i, e))
                        })
                        .collect::<std::result::Result<Vec<WalEvent>, _>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("snapshot parse worker panicked"))
            .collect::<Vec<_>>()
    });
    // Chunks are contiguous, so the first failing chunk in order holds
    // the lowest failing record index.
    let mut out = Vec::with_capacity(slices.len());
    for part in parsed {
        out.extend(part?);
    }
    Ok(out)
}

/// The reference implementation: line-by-line, single thread.
fn replay_serial(
    path: &Path,
    mut apply: impl FnMut(WalEvent) -> Result<()>,
) -> std::result::Result<FileReplay, ReplayError> {
    let mut reader = BufReader::with_capacity(1 << 20, File::open(path)?);
    let mut line = String::new();
    let mut out = FileReplay::default();
    let mut offset: u64 = 0;
    let mut lineno: usize = 0;
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let complete = line.ends_with('\n');
        if !line.trim().is_empty() {
            match serde_json::from_str::<WalEvent>(line.trim_end_matches('\n')) {
                // Zone footers are segment metadata, not state events:
                // skipped, and not counted as applied.
                Ok(WalEvent::Zone { .. }) => {}
                Ok(event) => {
                    apply(event)?;
                    out.events_applied += 1;
                }
                Err(_) if !complete => {
                    // A partial line with no trailing newline can only be
                    // the tail of a crashed append.
                    out.truncate_at = Some(offset);
                    break;
                }
                Err(e) => {
                    return Err(ReplayError::Corrupt {
                        lineno,
                        offset,
                        why: e.to_string(),
                    });
                }
            }
        }
        out.missing_final_newline = !complete;
        offset += n as u64;
    }
    Ok(out)
}

/// The pipelined implementation: one reader, `workers` parsers, in-order
/// apply on the calling thread.
fn replay_parallel(
    path: &Path,
    workers: usize,
    mut apply: impl FnMut(WalEvent) -> Result<()>,
) -> std::result::Result<FileReplay, ReplayError> {
    /// Complete lines (every line newline-terminated) plus their position.
    struct Block {
        idx: usize,
        base_offset: u64,
        base_lineno: usize,
        data: Vec<u8>,
    }

    /// The partial final line left after the last newline in the file.
    struct ReaderTail {
        bytes: Vec<u8>,
        offset: u64,
        lineno: usize,
    }

    enum Parsed {
        Events(Vec<WalEvent>),
        Corrupt {
            lineno: usize,
            offset: u64,
            why: String,
        },
    }

    fn parse_block(block: &Block) -> Parsed {
        let mut events = Vec::new();
        let mut offset = block.base_offset;
        for (lineno, line) in
            (block.base_lineno + 1..).zip(block.data.split_inclusive(|&b| b == b'\n'))
        {
            let body = &line[..line.len() - 1];
            if !body.iter().all(|b| b.is_ascii_whitespace()) {
                match serde_json::from_slice::<WalEvent>(body) {
                    // Zone footers are metadata; drop them at parse time
                    // so the apply stage never sees (or counts) them.
                    Ok(WalEvent::Zone { .. }) => {}
                    Ok(event) => events.push(event),
                    Err(e) => {
                        return Parsed::Corrupt {
                            lineno,
                            offset,
                            why: e.to_string(),
                        };
                    }
                }
            }
            offset += line.len() as u64;
        }
        Parsed::Events(events)
    }

    let file = File::open(path)?;
    std::thread::scope(|scope| -> std::result::Result<FileReplay, ReplayError> {
        let (block_tx, block_rx) = mpsc::sync_channel::<Block>(workers * 2);
        let block_rx = Arc::new(Mutex::new(block_rx));
        let (result_tx, result_rx) = mpsc::sync_channel::<(usize, Parsed)>(workers * 2);

        // Reader: cut the file into newline-aligned blocks. The partial
        // line after the file's last newline comes back as the tail.
        let reader = scope.spawn(move || -> std::io::Result<ReaderTail> {
            let mut file = file;
            let mut buf = vec![0u8; BLOCK_BYTES];
            let mut carry: Vec<u8> = Vec::new();
            let mut carry_offset: u64 = 0;
            let mut carry_lineno: usize = 0;
            let mut idx = 0usize;
            loop {
                let n = file.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                let chunk = &buf[..n];
                match chunk.iter().rposition(|&b| b == b'\n') {
                    Some(pos) => {
                        let mut data = std::mem::take(&mut carry);
                        data.extend_from_slice(&chunk[..=pos]);
                        let base_offset = carry_offset;
                        let base_lineno = carry_lineno;
                        carry_offset = base_offset + data.len() as u64;
                        carry_lineno = base_lineno + data.iter().filter(|&&b| b == b'\n').count();
                        carry.extend_from_slice(&chunk[pos + 1..]);
                        let block = Block {
                            idx,
                            base_offset,
                            base_lineno,
                            data,
                        };
                        if block_tx.send(block).is_err() {
                            // Receivers are gone: an error is being
                            // reported downstream; stop reading.
                            break;
                        }
                        idx += 1;
                    }
                    None => carry.extend_from_slice(chunk),
                }
            }
            Ok(ReaderTail {
                bytes: carry,
                offset: carry_offset,
                lineno: carry_lineno,
            })
        });

        for _ in 0..workers {
            let rx = Arc::clone(&block_rx);
            let tx = result_tx.clone();
            scope.spawn(move || loop {
                let block = {
                    let guard = rx.lock();
                    match guard.recv() {
                        Ok(block) => block,
                        Err(_) => break,
                    }
                };
                let parsed = parse_block(&block);
                if tx.send((block.idx, parsed)).is_err() {
                    break;
                }
            });
        }
        drop(result_tx);

        // Apply strictly in file order; `pending` holds blocks that
        // finished before their predecessors. On failure keep draining so
        // the reader and workers can exit, but stop applying.
        let mut pending: BTreeMap<usize, Parsed> = BTreeMap::new();
        let mut next = 0usize;
        let mut applied: u64 = 0;
        let mut failure: Option<ReplayError> = None;
        for (idx, parsed) in result_rx {
            if failure.is_some() {
                continue;
            }
            pending.insert(idx, parsed);
            while failure.is_none() {
                let Some(parsed) = pending.remove(&next) else {
                    break;
                };
                match parsed {
                    Parsed::Events(events) => {
                        for event in events {
                            if let Err(e) = apply(event) {
                                failure = Some(ReplayError::Store(e));
                                break;
                            }
                            applied += 1;
                        }
                    }
                    Parsed::Corrupt {
                        lineno,
                        offset,
                        why,
                    } => {
                        failure = Some(ReplayError::Corrupt {
                            lineno,
                            offset,
                            why,
                        });
                    }
                }
                next += 1;
            }
        }
        let tail = reader.join().expect("wal replay reader panicked")?;
        if let Some(e) = failure {
            return Err(e);
        }

        // The final partial line, handled exactly like the serial path.
        let mut out = FileReplay {
            events_applied: applied,
            ..FileReplay::default()
        };
        if !tail.bytes.is_empty() {
            if tail.bytes.iter().all(u8::is_ascii_whitespace) {
                out.missing_final_newline = true;
            } else {
                match serde_json::from_slice::<WalEvent>(&tail.bytes) {
                    Ok(WalEvent::Zone { .. }) => out.missing_final_newline = true,
                    Ok(event) => {
                        apply(event).map_err(ReplayError::Store)?;
                        out.events_applied += 1;
                        out.missing_final_newline = true;
                    }
                    Err(_) => out.truncate_at = Some(tail.offset),
                }
            }
        }
        let _ = tail.lineno;
        Ok(out)
    })
}
