//! Forward-trace deletion (§5.3): "when an application client deletes
//! their account, practitioners need to delete all artifacts derived from
//! that client's data."
//!
//! Starting from a set of source I/O pointers, [`forward_closure`] walks
//! the consumer index transitively — every run that read a tainted pointer
//! taints all of its outputs — and [`delete_derived`] removes the derived
//! runs and pointers (optionally sparing the roots, e.g. when the client
//! data itself lives outside the store).

use crate::error::Result;
use crate::record::RunId;
use crate::store::Store;
use std::collections::{BTreeSet, VecDeque};

/// The transitive closure of data derived from a set of source pointers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForwardClosure {
    /// All tainted I/O pointer names (including the roots).
    pub pointers: BTreeSet<String>,
    /// All runs that consumed tainted data (and therefore produced tainted
    /// outputs).
    pub runs: BTreeSet<RunId>,
}

/// Compute the forward closure of `roots` over the consumer index.
pub fn forward_closure(store: &dyn Store, roots: &[String]) -> Result<ForwardClosure> {
    let mut closure = ForwardClosure::default();
    let mut queue: VecDeque<String> = VecDeque::new();
    for r in roots {
        if closure.pointers.insert(r.clone()) {
            queue.push_back(r.clone());
        }
    }
    while let Some(io) = queue.pop_front() {
        for rid in store.consumers_of(&io)? {
            if !closure.runs.insert(rid) {
                continue;
            }
            if let Some(run) = store.run(rid)? {
                for out in run.outputs {
                    if closure.pointers.insert(out.clone()) {
                        queue.push_back(out);
                    }
                }
            }
        }
    }
    Ok(closure)
}

/// Report of a forward deletion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeletionReport {
    /// Runs deleted.
    pub runs_deleted: usize,
    /// Pointers deleted.
    pub pointers_deleted: usize,
    /// Components whose latest artifacts were affected — the paper warns
    /// that "deleting artifacts without rerunning dependent components ...
    /// could break production", so callers must be told what to re-run.
    pub components_needing_rerun: BTreeSet<String>,
}

/// Delete everything derived from `roots`. When `keep_roots` is true the
/// root pointers themselves are retained (only derived data is purged).
pub fn delete_derived(
    store: &dyn Store,
    roots: &[String],
    keep_roots: bool,
) -> Result<DeletionReport> {
    let closure = forward_closure(store, roots)?;
    let mut components = BTreeSet::new();
    for rid in &closure.runs {
        if let Some(run) = store.run(*rid)? {
            components.insert(run.component);
        }
    }
    let run_ids: Vec<RunId> = closure.runs.iter().copied().collect();
    let runs_deleted = store.delete_runs(&run_ids)?;
    let root_set: BTreeSet<&String> = roots.iter().collect();
    let pointer_names: Vec<String> = closure
        .pointers
        .iter()
        .filter(|p| !(keep_roots && root_set.contains(p)))
        .cloned()
        .collect();
    let pointers_deleted = store.delete_io_pointers(&pointer_names)?;
    Ok(DeletionReport {
        runs_deleted,
        pointers_deleted,
        components_needing_rerun: components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use crate::record::{ComponentRunRecord, IoPointerRecord};

    fn log(
        s: &MemoryStore,
        component: &str,
        start: u64,
        inputs: &[&str],
        outputs: &[&str],
    ) -> RunId {
        for io in inputs.iter().chain(outputs.iter()) {
            s.upsert_io_pointer(IoPointerRecord::new(*io, start))
                .unwrap();
        }
        s.log_run(ComponentRunRecord {
            component: component.into(),
            start_ms: start,
            end_ms: start + 1,
            inputs: inputs.iter().map(|x| x.to_string()).collect(),
            outputs: outputs.iter().map(|x| x.to_string()).collect(),
            ..Default::default()
        })
        .unwrap()
    }

    /// client.csv → [clean] → clean.csv → [train] → model.bin
    ///               other.csv ─────────────↗
    /// unrelated.csv → [other_pipeline] → other_out.csv
    fn diamond(s: &MemoryStore) -> (RunId, RunId, RunId) {
        let clean = log(s, "clean", 10, &["client.csv"], &["clean.csv"]);
        let train = log(s, "train", 20, &["clean.csv", "other.csv"], &["model.bin"]);
        let other = log(
            s,
            "other_pipeline",
            30,
            &["unrelated.csv"],
            &["other_out.csv"],
        );
        (clean, train, other)
    }

    #[test]
    fn closure_follows_transitive_consumers() {
        let s = MemoryStore::new();
        let (clean, train, _other) = diamond(&s);
        let c = forward_closure(&s, &["client.csv".to_string()]).unwrap();
        assert!(c.runs.contains(&clean));
        assert!(c.runs.contains(&train));
        assert_eq!(c.runs.len(), 2);
        assert!(c.pointers.contains("client.csv"));
        assert!(c.pointers.contains("clean.csv"));
        assert!(c.pointers.contains("model.bin"));
        assert!(
            !c.pointers.contains("other.csv"),
            "inputs of tainted runs are not tainted"
        );
        assert!(!c.pointers.contains("unrelated.csv"));
    }

    #[test]
    fn closure_of_unknown_root_is_just_root() {
        let s = MemoryStore::new();
        diamond(&s);
        let c = forward_closure(&s, &["ghost.csv".to_string()]).unwrap();
        assert!(c.runs.is_empty());
        assert_eq!(c.pointers.len(), 1);
    }

    #[test]
    fn delete_derived_removes_downstream_and_reports_components() {
        let s = MemoryStore::new();
        let (_clean, _train, other) = diamond(&s);
        let report = delete_derived(&s, &["client.csv".to_string()], true).unwrap();
        assert_eq!(report.runs_deleted, 2);
        assert_eq!(report.pointers_deleted, 2); // clean.csv + model.bin
        assert!(report.components_needing_rerun.contains("clean"));
        assert!(report.components_needing_rerun.contains("train"));
        // Roots kept, unrelated pipeline untouched.
        assert!(s.io_pointer("client.csv").unwrap().is_some());
        assert!(s.io_pointer("clean.csv").unwrap().is_none());
        assert!(s.run(other).unwrap().is_some());
    }

    #[test]
    fn delete_derived_can_drop_roots_too() {
        let s = MemoryStore::new();
        diamond(&s);
        let report = delete_derived(&s, &["client.csv".to_string()], false).unwrap();
        assert_eq!(report.pointers_deleted, 3);
        assert!(s.io_pointer("client.csv").unwrap().is_none());
    }

    #[test]
    fn cycle_in_io_names_terminates() {
        // A component that reads and writes the same pointer (in-place
        // update) must not loop the traversal forever.
        let s = MemoryStore::new();
        log(&s, "updater", 5, &["state.bin"], &["state.bin"]);
        let c = forward_closure(&s, &["state.bin".to_string()]).unwrap();
        assert_eq!(c.runs.len(), 1);
        assert_eq!(c.pointers.len(), 1);
    }
}
