//! Small, dependency-free hashing utilities used for content addressing
//! (artifact dedup, code snapshots). FNV-1a at 64 and 128 bits: not
//! cryptographic, but collision-safe enough at the scale of an embedded
//! observability store, and fully deterministic across platforms.

/// 64-bit FNV-1a.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// 128-bit FNV-1a.
pub fn fnv1a_128(data: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in data {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hex-encode a 128-bit hash, the textual form of content addresses.
pub fn hex128(h: u128) -> String {
    format!("{h:032x}")
}

/// A content hash of arbitrary text, used for the paper's "code snapshot"
/// when no git hash is supplied.
pub fn content_hash(text: &str) -> String {
    hex128(fnv1a_128(text.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv128_distinguishes_and_is_deterministic() {
        assert_eq!(fnv1a_128(b"abc"), fnv1a_128(b"abc"));
        assert_ne!(fnv1a_128(b"abc"), fnv1a_128(b"abd"));
        assert_ne!(fnv1a_128(b"abc"), fnv1a_128(b"acb"));
    }

    #[test]
    fn hex_is_32_chars_zero_padded() {
        let s = hex128(0x1f);
        assert_eq!(s.len(), 32);
        assert!(s.starts_with("000000000000000000000000000000"));
        assert!(s.ends_with("1f"));
    }

    #[test]
    fn content_hash_stable() {
        assert_eq!(content_hash("fn main() {}"), content_hash("fn main() {}"));
        assert_ne!(content_hash("v1"), content_hash("v2"));
    }
}
