//! # mltrace-store
//!
//! The storage layer of the mltrace reproduction (Figure 2 of *"Towards
//! Observability for Machine Learning Pipelines"*, VLDB 2022): an embedded
//! store for component metadata, component-run logs, I/O pointers, metric
//! series, plus the operational machinery the paper's challenges sections
//! call for — WAL durability, content-addressed artifact dedup (§5.1), log
//! compaction (§5.3), and forward-trace GDPR deletion (§5.3).
//!
//! Entry points:
//! * [`MemoryStore`] / [`WalStore`] — [`Store`] implementations. The
//!   memory store is lock-sharded for concurrent ingest; the WAL store
//!   adds group commit with a configurable [`DurabilityPolicy`] (see the
//!   [`wal`] module docs for the durability/throughput trade-off table).
//! * [`Store::log_runs`] / [`Store::log_run_bundle`] — batched ingest
//!   APIs for the paper's §3.4 million-node/day scale scenario.
//! * [`ArtifactStore`] — chunk-deduplicating payload storage.
//! * [`retention::compact_before`], [`deletion::delete_derived`] —
//!   maintenance operations over any [`Store`].
//! * [`schema`] — relational view consumed by the SQL engine.

#![warn(missing_docs)]

pub mod aggregate;
pub mod artifact;
pub mod artifact_disk;
pub mod clock;
pub mod deletion;
pub mod error;
pub mod event;
pub mod hash;
pub mod memory;
pub mod record;
pub mod retention;
pub mod scan;
pub mod schema;
pub mod store;
pub mod value;
pub mod wal;

pub use aggregate::{AggInput, AggPartial, ExactSum, GroupPartial};
pub use artifact::{ArtifactStats, ArtifactStore, ChunkerConfig};
pub use clock::{Clock, ManualClock, SystemClock, MS_PER_DAY};
pub use error::{Result, StoreError};
pub use event::{
    DiagnosisRecord, EventBus, EventFilter, EventId, EventKind, EventSeverity, EventSubscription,
    IncidentRecord, IncidentState, ObservabilityEvent, EVENT_KINDS,
};
pub use memory::MemoryStore;
pub use mltrace_metrics::{MonitorConfig, MonitorSummary};
pub use record::{
    CompactionSummary, ComponentRecord, ComponentRunRecord, IoPointerRecord, MetricAggregate,
    MetricRecord, PointerType, RunId, RunStatus, TriggerOutcomeRecord,
};
pub use scan::{IndexRoute, RunFilter};
pub use store::{IndexFootprint, IndexStats, RunBundle, Store, StoreStats};
pub use value::Value;
pub use wal::{
    read_journal, CheckpointPolicy, CheckpointReport, DurabilityPolicy, JournalFollower,
    JournalRead, SegmentCompaction, WalFootprint, WalOptions, WalStore, ZoneMap,
};
