//! ML Service Level Agreements (§4.1): contractual targets on
//! business-critical metrics, e.g. "90% recall for a pipeline that
//! predicts taxi riders who will tip their drivers".
//!
//! An [`Sla`] binds a metric name to an aggregation over a trailing
//! window and a comparator against a threshold; [`Sla::evaluate`] turns a
//! series of observations into a pass/violate verdict. The paper's alert
//! philosophy — gate alerts on SLAs, not on per-feature distribution
//! twitches — is built on these evaluations (see [`crate::alert`]).

use serde::{Deserialize, Serialize};

/// Direction of an SLA comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparator {
    /// Metric must stay at or above the threshold (e.g. recall ≥ 0.9).
    Gte,
    /// Metric must stay at or below the threshold (e.g. p95 latency ≤ 200).
    Lte,
}

impl Comparator {
    /// Apply the comparison.
    pub fn holds(self, observed: f64, threshold: f64) -> bool {
        match self {
            Comparator::Gte => observed >= threshold,
            Comparator::Lte => observed <= threshold,
        }
    }

    /// Symbol for rendering (`>=` / `<=`).
    pub fn symbol(self) -> &'static str {
        match self {
            Comparator::Gte => ">=",
            Comparator::Lte => "<=",
        }
    }
}

/// How the trailing window of observations is reduced to one number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean of the window.
    Mean,
    /// Minimum of the window.
    Min,
    /// Maximum of the window.
    Max,
    /// Most recent observation.
    Last,
}

impl Aggregation {
    /// Reduce a non-empty window.
    pub fn apply(self, window: &[f64]) -> f64 {
        debug_assert!(!window.is_empty());
        match self {
            Aggregation::Mean => window.iter().sum::<f64>() / window.len() as f64,
            Aggregation::Min => window.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Max => window.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Last => *window.last().expect("non-empty window"),
        }
    }
}

/// A service-level agreement on one metric series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sla {
    /// Human-readable identifier, e.g. `tip-recall-90`.
    pub name: String,
    /// Metric series the SLA is written against, e.g. `recall`.
    pub metric: String,
    /// Window reduction.
    pub aggregation: Aggregation,
    /// Direction of the requirement.
    pub comparator: Comparator,
    /// The contractual threshold.
    pub threshold: f64,
    /// Number of trailing observations evaluated (0 = all available).
    pub window: usize,
    /// Minimum observations before the SLA is evaluable at all.
    pub min_points: usize,
}

impl Sla {
    /// Shorthand for the common "mean of last `window` points must be ≥ t".
    pub fn mean_at_least(
        name: impl Into<String>,
        metric: impl Into<String>,
        threshold: f64,
        window: usize,
    ) -> Self {
        Sla {
            name: name.into(),
            metric: metric.into(),
            aggregation: Aggregation::Mean,
            comparator: Comparator::Gte,
            threshold,
            window,
            min_points: 1,
        }
    }

    /// Evaluate against a full observation series (oldest-first).
    pub fn evaluate(&self, series: &[f64]) -> SlaStatus {
        if series.len() < self.min_points.max(1) {
            return SlaStatus::InsufficientData {
                have: series.len(),
                need: self.min_points.max(1),
            };
        }
        let window = if self.window == 0 || self.window >= series.len() {
            series
        } else {
            &series[series.len() - self.window..]
        };
        let observed = self.aggregation.apply(window);
        if self.comparator.holds(observed, self.threshold) {
            SlaStatus::Met { observed }
        } else {
            SlaStatus::Violated { observed }
        }
    }
}

/// Outcome of an SLA evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlaStatus {
    /// The requirement holds.
    Met {
        /// Aggregated value that satisfied the SLA.
        observed: f64,
    },
    /// The requirement is breached.
    Violated {
        /// Aggregated value that breached the SLA.
        observed: f64,
    },
    /// Too few observations to evaluate.
    InsufficientData {
        /// Observations available.
        have: usize,
        /// Observations required.
        need: usize,
    },
}

impl SlaStatus {
    /// True only for [`SlaStatus::Violated`].
    pub fn is_violated(&self) -> bool {
        matches!(self, SlaStatus::Violated { .. })
    }

    /// The aggregated value, when one was computed.
    pub fn observed(&self) -> Option<f64> {
        match self {
            SlaStatus::Met { observed } | SlaStatus::Violated { observed } => Some(*observed),
            SlaStatus::InsufficientData { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_and_aggregation() {
        assert!(Comparator::Gte.holds(0.95, 0.9));
        assert!(!Comparator::Gte.holds(0.85, 0.9));
        assert!(Comparator::Lte.holds(100.0, 200.0));
        assert_eq!(Comparator::Gte.symbol(), ">=");
        let w = [1.0, 5.0, 3.0];
        assert_eq!(Aggregation::Mean.apply(&w), 3.0);
        assert_eq!(Aggregation::Min.apply(&w), 1.0);
        assert_eq!(Aggregation::Max.apply(&w), 5.0);
        assert_eq!(Aggregation::Last.apply(&w), 3.0);
    }

    #[test]
    fn sla_met_and_violated() {
        let sla = Sla::mean_at_least("recall-90", "recall", 0.9, 3);
        match sla.evaluate(&[0.95, 0.92, 0.91]) {
            SlaStatus::Met { observed } => assert!((observed - 0.926666).abs() < 1e-4),
            other => panic!("expected Met, got {other:?}"),
        }
        let st = sla.evaluate(&[0.95, 0.6, 0.6]);
        assert!(st.is_violated());
        assert!(st.observed().unwrap() < 0.9);
    }

    #[test]
    fn sla_windows_trailing_points_only() {
        let sla = Sla::mean_at_least("acc", "accuracy", 0.9, 2);
        // Old garbage, recent good: window of 2 sees only the good points.
        let st = sla.evaluate(&[0.1, 0.1, 0.95, 0.93]);
        assert!(!st.is_violated());
        // window=0 means whole series.
        let all = Sla {
            window: 0,
            ..sla.clone()
        };
        assert!(all.evaluate(&[0.1, 0.1, 0.95, 0.93]).is_violated());
    }

    #[test]
    fn sla_insufficient_data() {
        let sla = Sla {
            min_points: 5,
            ..Sla::mean_at_least("x", "m", 0.5, 3)
        };
        match sla.evaluate(&[0.9, 0.9]) {
            SlaStatus::InsufficientData { have, need } => {
                assert_eq!((have, need), (2, 5));
            }
            other => panic!("expected InsufficientData, got {other:?}"),
        }
        assert!(sla.evaluate(&[]).observed().is_none());
    }

    #[test]
    fn latency_style_lte_sla() {
        let sla = Sla {
            name: "latency-p95".into(),
            metric: "latency_ms".into(),
            aggregation: Aggregation::Max,
            comparator: Comparator::Lte,
            threshold: 200.0,
            window: 4,
            min_points: 1,
        };
        assert!(!sla.evaluate(&[150.0, 180.0, 190.0, 170.0]).is_violated());
        assert!(sla.evaluate(&[150.0, 180.0, 250.0, 170.0]).is_violated());
    }
}
