//! Hypothesis tests for drift monitoring: the two-sample
//! Kolmogorov–Smirnov test (§5.2: "well-known metrics like the
//! Kolmogorov-Smirnov test statistic can be expensive and produce too many
//! false positive alerts"), Welch's t-test (the paper's "t-test scores"),
//! and the chi-square goodness-of-fit test for categorical features.

use crate::special::{gamma_q, kolmogorov_q, student_t_two_sided_p};

/// Result of a two-sample test: the statistic and its p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (D for KS, t for Welch, χ² for chi-square).
    pub statistic: f64,
    /// Probability of a statistic at least this extreme under H₀ (same
    /// distribution / same mean).
    pub p_value: f64,
}

impl TestResult {
    /// True when the null hypothesis is rejected at significance `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample Kolmogorov–Smirnov test. Sorts both samples: O(n log n) —
/// the cost the paper warns about at production scale. Returns NaN
/// statistic for empty samples.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> TestResult {
    let mut xs: Vec<f64> = a.iter().copied().filter(|x| x.is_finite()).collect();
    let mut ys: Vec<f64> = b.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.is_empty() || ys.is_empty() {
        return TestResult {
            statistic: f64::NAN,
            p_value: f64::NAN,
        };
    }
    xs.sort_by(|p, q| p.total_cmp(q));
    ys.sort_by(|p, q| p.total_cmp(q));
    let (n1, n2) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xs.len() && j < ys.len() {
        let x = xs[i];
        let y = ys[j];
        let t = x.min(y);
        while i < xs.len() && xs[i] <= t {
            i += 1;
        }
        while j < ys.len() && ys[j] <= t {
            j += 1;
        }
        let f1 = i as f64 / n1;
        let f2 = j as f64 / n2;
        d = d.max((f1 - f2).abs());
    }
    let ne = (n1 * n2 / (n1 + n2)).sqrt();
    // Asymptotic p-value with the small-sample correction of Stephens.
    let lambda = (ne + 0.12 + 0.11 / ne) * d;
    TestResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// Welch's unequal-variance t-test for a difference in means, with the
/// Welch–Satterthwaite degrees of freedom. Requires ≥ 2 finite values per
/// sample (otherwise NaN).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TestResult {
    let xs: Vec<f64> = a.iter().copied().filter(|x| x.is_finite()).collect();
    let ys: Vec<f64> = b.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.len() < 2 || ys.len() < 2 {
        return TestResult {
            statistic: f64::NAN,
            p_value: f64::NAN,
        };
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var = |v: &[f64], m: f64| {
        v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() as f64 - 1.0)
    };
    let (m1, m2) = (mean(&xs), mean(&ys));
    let (v1, v2) = (var(&xs, m1), var(&ys, m2));
    let (n1, n2) = (xs.len() as f64, ys.len() as f64);
    let se2 = v1 / n1 + v2 / n2;
    if se2 == 0.0 {
        // Identical constants: no evidence of difference.
        let equal = (m1 - m2).abs() < f64::EPSILON;
        return TestResult {
            statistic: if equal { 0.0 } else { f64::INFINITY },
            p_value: if equal { 1.0 } else { 0.0 },
        };
    }
    let t = (m1 - m2) / se2.sqrt();
    let df = se2 * se2 / ((v1 / n1) * (v1 / n1) / (n1 - 1.0) + (v2 / n2) * (v2 / n2) / (n2 - 1.0));
    TestResult {
        statistic: t,
        p_value: student_t_two_sided_p(t, df),
    }
}

/// Chi-square goodness-of-fit between observed counts and expected counts
/// (scaled to the observed total). Bins with zero expectation after
/// scaling are pooled into the smoothing floor.
pub fn chi_square_gof(observed: &[u64], expected: &[f64]) -> TestResult {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    assert!(observed.len() >= 2, "need at least two categories");
    let total_obs: f64 = observed.iter().map(|&c| c as f64).sum();
    let total_exp: f64 = expected.iter().sum();
    if total_obs == 0.0 || total_exp == 0.0 {
        return TestResult {
            statistic: f64::NAN,
            p_value: f64::NAN,
        };
    }
    let scale = total_obs / total_exp;
    let mut chi2 = 0.0;
    for (&o, &e) in observed.iter().zip(expected.iter()) {
        let e = (e * scale).max(1e-9);
        let d = o as f64 - e;
        chi2 += d * d / e;
    }
    let df = (observed.len() - 1) as f64;
    TestResult {
        statistic: chi2,
        p_value: gamma_q(df / 2.0, chi2 / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic uniform stream in [0,1).
    fn uniform(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn ks_identical_samples_not_significant() {
        let a = uniform(2000, 7);
        let b = uniform(2000, 99);
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic < 0.06, "D = {}", r.statistic);
        assert!(!r.significant(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn ks_shifted_samples_significant() {
        let a = uniform(1000, 7);
        let b: Vec<f64> = uniform(1000, 99).iter().map(|x| x + 0.2).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic > 0.15);
        assert!(r.significant(0.001));
    }

    #[test]
    fn ks_detects_variance_change_mean_misses() {
        // Same mean (0.5), different spread: D should be sizable.
        let a = uniform(4000, 3);
        let b: Vec<f64> = uniform(4000, 11)
            .iter()
            .map(|x| 0.5 + (x - 0.5) * 0.3)
            .collect();
        let mean_a: f64 = a.iter().sum::<f64>() / a.len() as f64;
        let mean_b: f64 = b.iter().sum::<f64>() / b.len() as f64;
        assert!((mean_a - mean_b).abs() < 0.02, "means match by design");
        let r = ks_two_sample(&a, &b);
        assert!(r.significant(0.001), "KS should catch shape change");
    }

    #[test]
    fn ks_empty_is_nan() {
        let r = ks_two_sample(&[], &[1.0]);
        assert!(r.statistic.is_nan());
    }

    #[test]
    fn ks_statistic_bounds() {
        // Completely disjoint samples → D = 1.
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 0.1);
    }

    #[test]
    fn welch_equal_means_not_significant() {
        let a = uniform(500, 5);
        let b = uniform(500, 17);
        let r = welch_t_test(&a, &b);
        assert!(!r.significant(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn welch_detects_mean_shift() {
        let a = uniform(500, 5);
        let b: Vec<f64> = uniform(500, 17).iter().map(|x| x + 0.3).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.significant(1e-6));
        assert!(r.statistic < 0.0, "a's mean is lower");
    }

    #[test]
    fn welch_misses_pure_variance_change() {
        // The §5.2 claim, inverted: a mean test cannot see shape-only drift.
        let a = uniform(2000, 3);
        let b: Vec<f64> = uniform(2000, 11)
            .iter()
            .map(|x| 0.5 + (x - 0.5) * 0.3)
            .collect();
        let r = welch_t_test(&a, &b);
        assert!(!r.significant(0.001), "t-test blind to variance change");
    }

    #[test]
    fn welch_identical_constants() {
        let r = welch_t_test(&[2.0, 2.0, 2.0], &[2.0, 2.0]);
        assert_eq!(r.p_value, 1.0);
        let r = welch_t_test(&[2.0, 2.0, 2.0], &[3.0, 3.0]);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn welch_small_samples_nan() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).statistic.is_nan());
    }

    #[test]
    fn chi_square_uniform_fit() {
        let observed = [100u64, 105, 95, 100];
        let expected = [1.0, 1.0, 1.0, 1.0];
        let r = chi_square_gof(&observed, &expected);
        assert!(!r.significant(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn chi_square_detects_category_shift() {
        let observed = [300u64, 50, 25, 25];
        let expected = [1.0, 1.0, 1.0, 1.0];
        let r = chi_square_gof(&observed, &expected);
        assert!(r.significant(1e-6));
    }

    #[test]
    fn chi_square_scales_expected() {
        // Expected given as proportions vs counts must agree.
        let observed = [30u64, 70];
        let r1 = chi_square_gof(&observed, &[0.5, 0.5]);
        let r2 = chi_square_gof(&observed, &[50.0, 50.0]);
        assert!((r1.statistic - r2.statistic).abs() < 1e-9);
    }

    #[test]
    fn ks_false_positive_rate_near_alpha() {
        // Repeated same-distribution comparisons should reject at ≈ alpha.
        let mut rejections = 0;
        let trials = 200;
        for t in 0..trials {
            let a = uniform(300, 1000 + t);
            let b = uniform(300, 5000 + t);
            if ks_two_sample(&a, &b).significant(0.05) {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(rate < 0.12, "false positive rate {rate} too high");
    }
}
