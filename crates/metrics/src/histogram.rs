//! Equal-width histograms: the compact distributional snapshot logged per
//! component run ("intermediate aggregations ... in ComponentRun logs",
//! §4.1) and the common input to the divergence measures (KL, JS, PSI).

use serde::{Deserialize, Serialize};

/// Equal-width histogram over a closed range. Out-of-range observations go
/// to the edge bins, so two histograms with the same configuration are
/// always comparable bin-by-bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi]` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Build from a sample, taking the range from the sample itself
    /// (degenerate samples get a unit-width range).
    pub fn from_samples(xs: &[f64], bins: usize) -> Self {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let (lo, hi) = if finite.is_empty() {
            (0.0, 1.0)
        } else {
            let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if lo == hi {
                (lo - 0.5, hi + 0.5)
            } else {
                (lo, hi)
            }
        };
        let mut h = Histogram::new(lo, hi, bins);
        for &x in &finite {
            h.push(x);
        }
        h
    }

    /// Build with the same range/bin configuration as `reference` — the
    /// shape needed when comparing a current window to a training-time
    /// snapshot.
    pub fn like(reference: &Histogram) -> Self {
        Histogram::new(reference.lo, reference.hi, reference.counts.len())
    }

    /// Add one observation (non-finite ignored; out-of-range clamps to the
    /// edge bins).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Extend from a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Range covered.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Bin probabilities with additive (Laplace) smoothing `alpha`.
    /// Smoothing keeps divergences finite when a bin is empty on one side —
    /// the standard guard for KL on empirical histograms.
    pub fn probabilities(&self, alpha: f64) -> Vec<f64> {
        assert!(alpha >= 0.0);
        let k = self.counts.len() as f64;
        let denom = self.total as f64 + alpha * k;
        if denom == 0.0 {
            return vec![1.0 / k; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| (c as f64 + alpha) / denom)
            .collect()
    }

    /// True when both histograms share range and bin count and are
    /// therefore comparable bin-by-bin.
    pub fn comparable(&self, other: &Histogram) -> bool {
        self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len()
    }

    /// Merge a comparable histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(self.comparable(other), "histograms are not comparable");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 2.5, 4.5, 6.5, 8.5] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(99.0);
        h.push(1.0); // upper edge → last bin
        h.push(0.0); // lower edge → first bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[3], 2);
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(f64::NAN);
        h.push(f64::NEG_INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn from_samples_covers_data() {
        let xs = [3.0, 7.0, 5.0, 9.0, 1.0];
        let h = Histogram::from_samples(&xs, 4);
        assert_eq!(h.total(), 5);
        assert_eq!(h.range(), (1.0, 9.0));
    }

    #[test]
    fn from_samples_degenerate() {
        let h = Histogram::from_samples(&[4.0, 4.0], 3);
        assert_eq!(h.total(), 2);
        assert_eq!(h.range(), (3.5, 4.5));
        let empty = Histogram::from_samples(&[], 3);
        assert_eq!(empty.total(), 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 100.0);
        }
        for alpha in [0.0, 0.5, 1.0] {
            let p = h.probabilities(alpha);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "alpha={alpha}");
        }
    }

    #[test]
    fn empty_histogram_probabilities_uniform() {
        let h = Histogram::new(0.0, 1.0, 4);
        let p = h.probabilities(0.0);
        assert_eq!(p, vec![0.25; 4]);
    }

    #[test]
    fn smoothing_removes_zeros() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.1);
        let p0 = h.probabilities(0.0);
        assert!(p0[3] == 0.0);
        let p1 = h.probabilities(0.5);
        assert!(p1.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn like_and_merge() {
        let a = Histogram::from_samples(&[1.0, 2.0, 3.0], 3);
        let mut b = Histogram::like(&a);
        assert!(a.comparable(&b));
        b.extend(&[1.0, 3.0]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), 5);
    }

    #[test]
    #[should_panic(expected = "not comparable")]
    fn merge_incomparable_panics() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 2.0, 2);
        a.merge(&b);
    }
}
