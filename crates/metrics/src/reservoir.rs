//! Reservoir sampling (Vitter's Algorithm R): the bounded-memory sample of
//! recent component inputs/outputs that triggers compare against training
//! snapshots. Keeps drift checks O(k) in space no matter how many
//! predictions flow through the pipeline (§3.4's Ω(1M) daily events).

use rand::Rng;

/// Uniform reservoir sample of fixed capacity over an unbounded stream.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// Reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Reservoir {
            items: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Offer one item, replacing a random resident with probability k/n.
    pub fn push<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number currently held (min(capacity, seen)).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items were offered yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drop the sample but keep the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_to_capacity_then_stays() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(10);
        for i in 0..100 {
            r.push(i, &mut rng);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn short_stream_kept_entirely() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = Reservoir::new(10);
        for i in 0..5 {
            r.push(i, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Each of 1000 items should appear with probability ~k/n = 0.05;
        // count how often item 0 (the earliest, most at-risk) survives.
        let mut survivals = 0;
        for seed in 0..2000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(50);
            for i in 0..1000 {
                r.push(i, &mut rng);
            }
            if r.items().contains(&0) {
                survivals += 1;
            }
        }
        let rate = survivals as f64 / 2000.0;
        assert!(
            (rate - 0.05).abs() < 0.015,
            "early-item survival rate {rate} should be ~0.05"
        );
    }

    #[test]
    fn clear_resets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = Reservoir::new(4);
        r.push(1, &mut rng);
        assert!(!r.is_empty());
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Reservoir::<i32>::new(0);
    }
}
