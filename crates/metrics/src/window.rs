//! Sliding windows over metric streams: the bounded-memory state behind
//! batched trigger computation (§5.2: consecutive runs of a component may
//! execute on different cluster nodes, "possibly motivating triggers to
//! be computed in batch to save resources").
//!
//! [`CountWindow`] keeps the last N observations; [`TimeWindow`] keeps
//! observations newer than a horizon. Both expose the same summary
//! surface used by SLA evaluation and drift checks.

use crate::desc::StreamingMoments;
use std::collections::VecDeque;

/// The last `capacity` observations of a stream.
#[derive(Debug, Clone)]
pub struct CountWindow {
    items: VecDeque<f64>,
    capacity: usize,
}

impl CountWindow {
    /// Window of the most recent `capacity` values.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CountWindow {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Push one value, evicting the oldest when full. Returns the evicted
    /// value, if any.
    pub fn push(&mut self, v: f64) -> Option<f64> {
        let evicted = if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(v);
        evicted
    }

    /// Values oldest-first.
    pub fn values(&self) -> Vec<f64> {
        self.items.iter().copied().collect()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no values are held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True once the window holds `capacity` values.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Summary statistics over the current contents.
    pub fn moments(&self) -> StreamingMoments {
        let mut m = StreamingMoments::new();
        for &v in &self.items {
            m.push(v);
        }
        m
    }
}

/// Observations within a trailing time horizon.
#[derive(Debug, Clone)]
pub struct TimeWindow {
    items: VecDeque<(u64, f64)>,
    horizon_ms: u64,
}

impl TimeWindow {
    /// Window keeping observations newer than `horizon_ms` before the
    /// latest `evict_older_than` call.
    pub fn new(horizon_ms: u64) -> Self {
        assert!(horizon_ms > 0, "horizon must be positive");
        TimeWindow {
            items: VecDeque::new(),
            horizon_ms,
        }
    }

    /// Record a timestamped value. Timestamps should be non-decreasing;
    /// stragglers are accepted but evicted by the same horizon rule.
    pub fn push(&mut self, ts_ms: u64, v: f64) {
        self.items.push_back((ts_ms, v));
        self.evict_older_than(ts_ms);
    }

    /// Drop values older than the horizon relative to `now_ms`.
    pub fn evict_older_than(&mut self, now_ms: u64) {
        let cutoff = now_ms.saturating_sub(self.horizon_ms);
        while let Some(&(ts, _)) = self.items.front() {
            if ts < cutoff {
                self.items.pop_front();
            } else {
                break;
            }
        }
    }

    /// Values oldest-first.
    pub fn values(&self) -> Vec<f64> {
        self.items.iter().map(|&(_, v)| v).collect()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the window holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Summary statistics over the current contents.
    pub fn moments(&self) -> StreamingMoments {
        let mut m = StreamingMoments::new();
        for &(_, v) in &self.items {
            m.push(v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_window_evicts_fifo() {
        let mut w = CountWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert_eq!(w.push(3.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.values(), vec![2.0, 3.0, 4.0]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn count_window_moments() {
        let mut w = CountWindow::new(2);
        for v in [10.0, 20.0, 30.0] {
            w.push(v);
        }
        let m = w.moments();
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), 25.0);
    }

    #[test]
    fn time_window_horizon() {
        let mut w = TimeWindow::new(100);
        w.push(0, 1.0);
        w.push(50, 2.0);
        w.push(120, 3.0);
        // Cutoff at 120-100=20: the ts=0 value is gone.
        assert_eq!(w.values(), vec![2.0, 3.0]);
        w.evict_older_than(300);
        assert!(w.is_empty());
    }

    #[test]
    fn time_window_boundary_inclusive() {
        let mut w = TimeWindow::new(100);
        w.push(0, 1.0);
        w.push(100, 2.0);
        // Cutoff = 0: ts=0 is not `< 0`, so it stays.
        assert_eq!(w.len(), 2);
        w.push(101, 3.0);
        assert_eq!(w.values(), vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CountWindow::new(0);
    }
}
