//! Streaming descriptive statistics.
//!
//! §5.2 of the paper: "Computing simple metrics like the mean and median is
//! a good start but can fail when skew and kurtosis changes." The monitor
//! therefore tracks the first four central moments in one pass (updating
//! formulas of Pébay/Welford), so skewness and kurtosis changes are visible
//! without retaining raw data. Two accumulators can be merged, supporting
//! the paper's batched/containerized trigger computation (§5.2).

use serde::{Deserialize, Serialize};

/// One-pass accumulator of count, min, max and the first four central
/// moments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StreamingMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl StreamingMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        StreamingMoments {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Accumulate from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one observation. Non-finite values are ignored (they are
    /// surfaced by data-quality triggers, not silently folded into moments).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (Pébay's pairwise update).
    pub fn merge(&mut self, o: &StreamingMoments) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *o;
            return;
        }
        let (na, nb) = (self.n as f64, o.n as f64);
        let n = na + nb;
        let delta = o.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta3 * delta;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + o.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + o.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * o.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + o.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * o.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * o.m3 - nb * self.m3) / n;
        self.n += o.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance; NaN when empty.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance; NaN when n < 2.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Skewness (population, g1); NaN when variance is ~0 or n < 2.
    pub fn skewness(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            return f64::NAN;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Excess kurtosis (g2 − 3); NaN when variance is ~0 or n < 2.
    pub fn kurtosis(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            return f64::NAN;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Minimum observation; NaN when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation; NaN when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b}");
    }

    #[test]
    fn basic_moments() {
        let s = StreamingMoments::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        close(s.mean(), 5.0, 1e-12);
        close(s.variance(), 4.0, 1e-12);
        close(s.std_dev(), 2.0, 1e-12);
        close(s.min(), 2.0, 0.0);
        close(s.max(), 9.0, 0.0);
    }

    #[test]
    fn empty_is_nan() {
        let s = StreamingMoments::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.skewness().is_nan());
        assert!(s.kurtosis().is_nan());
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data → positive skewness.
        let right = StreamingMoments::from_slice(&[1.0, 1.0, 1.0, 2.0, 2.0, 10.0]);
        assert!(right.skewness() > 0.5);
        // Symmetric data → ~0 skewness.
        let sym = StreamingMoments::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        close(sym.skewness(), 0.0, 1e-12);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        // Uniform distribution has excess kurtosis −1.2.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let s = StreamingMoments::from_slice(&xs);
        close(s.kurtosis(), -1.2, 0.01);
    }

    #[test]
    fn constant_data_has_nan_shape_stats() {
        let s = StreamingMoments::from_slice(&[3.0; 10]);
        close(s.variance(), 0.0, 1e-15);
        assert!(s.skewness().is_nan());
        assert!(s.kurtosis().is_nan());
    }

    #[test]
    fn non_finite_ignored() {
        let mut s = StreamingMoments::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        close(s.mean(), 2.0, 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 * 0.31).collect();
        let whole = StreamingMoments::from_slice(&xs);
        let mut a = StreamingMoments::from_slice(&xs[..137]);
        let b = StreamingMoments::from_slice(&xs[137..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        close(a.mean(), whole.mean(), 1e-9);
        close(a.variance(), whole.variance(), 1e-9);
        close(a.skewness(), whole.skewness(), 1e-9);
        close(a.kurtosis(), whole.kurtosis(), 1e-9);
        close(a.min(), whole.min(), 0.0);
        close(a.max(), whole.max(), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut a = StreamingMoments::from_slice(&xs);
        a.merge(&StreamingMoments::new());
        close(a.mean(), 2.0, 1e-12);
        let mut e = StreamingMoments::new();
        e.merge(&a);
        close(e.mean(), 2.0, 1e-12);
        assert_eq!(e.count(), 3);
    }

    #[test]
    fn sample_variance_bessel() {
        let s = StreamingMoments::from_slice(&[1.0, 2.0, 3.0]);
        close(s.sample_variance(), 1.0, 1e-12);
        let one = StreamingMoments::from_slice(&[5.0]);
        assert!(one.sample_variance().is_nan());
    }
}
