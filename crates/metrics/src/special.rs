//! Special functions needed by the statistical tests: log-gamma,
//! regularized incomplete gamma and beta, error function, normal CDF, and
//! the Kolmogorov distribution. Implemented from scratch (Lanczos
//! approximation and the classic series / continued-fraction evaluations)
//! so the monitoring layer has no numerical dependencies.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
/// Accurate to ~1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

const MAX_ITER: usize = 300;
const EPS: f64 = 3e-14;

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let fpmin = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function via the incomplete gamma relation erf(x) = P(1/2, x²).
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        gamma_q(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Regularized incomplete beta I_x(a, b), via the continued fraction.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires positive parameters");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let fpmin = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < fpmin {
        d = fpmin;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = 1.0 + aa / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = 1.0 + aa / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Survival function Q(λ) of the Kolmogorov distribution:
/// Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²). Used for KS-test p-values.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let l2 = lambda * lambda;
    for j in 1..=100 {
        let term = sign * (-2.0 * (j as f64) * (j as f64) * l2).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-10);
        close(ln_gamma(11.0), (3628800.0_f64).ln(), 1e-9);
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 7.5), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
        assert_eq!(gamma_p(1.0, 0.0), 0.0);
        assert_eq!(gamma_q(1.0, 0.0), 1.0);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 − e^{−x}
        close(gamma_p(1.0, 2.0), 1.0 - (-2.0_f64).exp(), 1e-12);
        // Chi-square CDF with k=2 df at x=5.991 ≈ 0.95
        close(gamma_p(1.0, 5.991 / 2.0), 0.95, 1e-3);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-9);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-9);
        close(erf(2.0), 0.995_322_265_018_953, 1e-9);
        close(erfc(1.0), 1.0 - 0.842_700_792_949_715, 1e-9);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.959_963_985), 0.975, 1e-6);
        close(normal_cdf(-1.644_853_627), 0.05, 1e-6);
    }

    #[test]
    fn beta_inc_symmetry_and_known() {
        // I_x(1,1) = x
        close(beta_inc(1.0, 1.0, 0.3), 0.3, 1e-12);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        close(
            beta_inc(2.5, 1.5, 0.4),
            1.0 - beta_inc(1.5, 2.5, 0.6),
            1e-10,
        );
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn student_t_p_values() {
        // t=0 → p=1 (no evidence)
        close(student_t_two_sided_p(0.0, 10.0), 1.0, 1e-12);
        // Critical value: t(df=10, two-sided p=0.05) ≈ 2.228
        close(student_t_two_sided_p(2.228, 10.0), 0.05, 1e-3);
        // Large |t| → tiny p.
        assert!(student_t_two_sided_p(10.0, 30.0) < 1e-9);
    }

    #[test]
    fn kolmogorov_q_reference_points() {
        close(kolmogorov_q(0.0), 1.0, 1e-15);
        // Known critical value: Q(1.358) ≈ 0.05
        close(kolmogorov_q(1.358), 0.05, 2e-3);
        close(kolmogorov_q(1.628), 0.01, 2e-3);
        assert!(kolmogorov_q(3.0) < 1e-6);
        // Monotone decreasing.
        assert!(kolmogorov_q(0.5) > kolmogorov_q(1.0));
    }
}
