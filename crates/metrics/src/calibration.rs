//! Probability calibration diagnostics: reliability curves and expected
//! calibration error (ECE). A drifting pipeline often *stays accurate*
//! while its probabilities decalibrate — a silent failure class the
//! paper's business-SLA monitoring (§4.1) wants surfaced before
//! thresholded decisions go wrong.

use serde::{Deserialize, Serialize};

/// One bin of a reliability curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Bin lower edge (inclusive).
    pub lo: f64,
    /// Bin upper edge (exclusive; the last bin includes 1.0).
    pub hi: f64,
    /// Predictions falling in the bin.
    pub count: u64,
    /// Mean predicted probability in the bin (NaN when empty).
    pub mean_predicted: f64,
    /// Observed positive fraction in the bin (NaN when empty).
    pub observed_rate: f64,
}

impl ReliabilityBin {
    /// |observed − predicted| for this bin; NaN when empty.
    pub fn gap(&self) -> f64 {
        (self.observed_rate - self.mean_predicted).abs()
    }
}

/// A binned reliability curve over `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityCurve {
    /// Equal-width bins.
    pub bins: Vec<ReliabilityBin>,
    /// Total scored predictions.
    pub total: u64,
}

impl ReliabilityCurve {
    /// Build from parallel probability/label slices with `bins`
    /// equal-width bins. Panics on length mismatch or zero bins;
    /// probabilities are clamped into [0, 1].
    pub fn fit(probabilities: &[f64], labels: &[bool], bins: usize) -> Self {
        assert_eq!(probabilities.len(), labels.len(), "length mismatch");
        assert!(bins >= 1, "need at least one bin");
        let mut count = vec![0u64; bins];
        let mut sum_p = vec![0.0f64; bins];
        let mut positives = vec![0u64; bins];
        for (&p, &l) in probabilities.iter().zip(labels.iter()) {
            if !p.is_finite() {
                continue;
            }
            let p = p.clamp(0.0, 1.0);
            let idx = ((p * bins as f64) as usize).min(bins - 1);
            count[idx] += 1;
            sum_p[idx] += p;
            if l {
                positives[idx] += 1;
            }
        }
        let total: u64 = count.iter().sum();
        let bins = (0..bins)
            .map(|i| {
                let width = 1.0 / count.len() as f64;
                ReliabilityBin {
                    lo: i as f64 * width,
                    hi: (i + 1) as f64 * width,
                    count: count[i],
                    mean_predicted: if count[i] == 0 {
                        f64::NAN
                    } else {
                        sum_p[i] / count[i] as f64
                    },
                    observed_rate: if count[i] == 0 {
                        f64::NAN
                    } else {
                        positives[i] as f64 / count[i] as f64
                    },
                }
            })
            .collect();
        ReliabilityCurve { bins, total }
    }

    /// Expected calibration error: count-weighted mean |observed −
    /// predicted| across non-empty bins. NaN when no predictions scored.
    pub fn ece(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| b.count as f64 / self.total as f64 * b.gap())
            .sum()
    }

    /// Maximum calibration error across non-empty bins; NaN when empty.
    pub fn mce(&self) -> f64 {
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(ReliabilityBin::gap)
            .fold(f64::NAN, f64::max)
    }
}

/// Convenience: ECE with 10 bins.
pub fn expected_calibration_error(probabilities: &[f64], labels: &[bool]) -> f64 {
    ReliabilityCurve::fit(probabilities, labels, 10).ece()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic uniform stream in [0,1).
    fn unif(state: &mut u64) -> f64 {
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Perfectly calibrated stream: label drawn with probability p.
    fn calibrated(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>) {
        let mut st = seed | 1;
        let mut probs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let p = unif(&mut st);
            probs.push(p);
            labels.push(unif(&mut st) < p);
        }
        (probs, labels)
    }

    #[test]
    fn calibrated_predictions_have_low_ece() {
        let (probs, labels) = calibrated(50_000, 3);
        let ece = expected_calibration_error(&probs, &labels);
        assert!(ece < 0.02, "calibrated ECE {ece}");
    }

    #[test]
    fn overconfident_predictions_have_high_ece() {
        // Push probabilities toward the extremes without changing labels.
        let (probs, labels) = calibrated(50_000, 5);
        let sharpened: Vec<f64> = probs
            .iter()
            .map(|p| if *p >= 0.5 { 0.99 } else { 0.01 })
            .collect();
        let ece = expected_calibration_error(&sharpened, &labels);
        assert!(ece > 0.2, "overconfident ECE {ece}");
        let curve = ReliabilityCurve::fit(&sharpened, &labels, 10);
        assert!(curve.mce() >= ece);
    }

    #[test]
    fn bins_partition_and_count() {
        let probs = [0.05, 0.15, 0.95, 1.0, 0.95];
        let labels = [false, false, true, true, false];
        let curve = ReliabilityCurve::fit(&probs, &labels, 10);
        assert_eq!(curve.total, 5);
        assert_eq!(curve.bins.len(), 10);
        assert_eq!(curve.bins[0].count, 1);
        assert_eq!(curve.bins[1].count, 1);
        assert_eq!(curve.bins[9].count, 3, "1.0 clamps into the last bin");
        let last = curve.bins[9];
        assert!((last.observed_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let curve = ReliabilityCurve::fit(&[], &[], 10);
        assert!(curve.ece().is_nan());
        assert!(curve.mce().is_nan());
        // NaN probabilities skipped.
        let curve = ReliabilityCurve::fit(&[f64::NAN, 0.5], &[true, true], 4);
        assert_eq!(curve.total, 1);
    }

    #[test]
    fn empty_bins_are_nan_but_excluded_from_ece() {
        let probs = [0.95; 100];
        let labels = [true; 100];
        let curve = ReliabilityCurve::fit(&probs, &labels, 10);
        assert!(curve.bins[0].mean_predicted.is_nan());
        let ece = curve.ece();
        assert!(
            (ece - 0.05).abs() < 1e-9,
            "single-bin gap |1.0 − 0.95|, got {ece}"
        );
    }
}
