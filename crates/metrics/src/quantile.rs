//! Quantile estimation: exact (sorting) and streaming (the P² algorithm of
//! Jain & Chlamtac), used to monitor medians and tail latencies without
//! materializing historical I/O values (§5.2 "large, stateful aggregations
//! of data ... can be inefficient").

use serde::{Deserialize, Serialize};

/// Exact quantile of a sample by sorting (linear interpolation between
/// order statistics). `q` in [0, 1]. Returns NaN on an empty slice.
pub fn exact_quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Exact median.
pub fn exact_median(xs: &[f64]) -> f64 {
    exact_quantile(xs, 0.5)
}

/// Streaming quantile estimator (P² algorithm): O(1) memory, O(1) update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    /// Observations seen so far (first 5 buffered in `heights`).
    count: usize,
}

impl P2Quantile {
    /// Estimator for quantile `q` in (0, 1).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "P² quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Streaming median estimator.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Add one observation (non-finite values ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }
        // Adjust interior markers via parabolic (fallback linear) formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < qp && qp < self.heights[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
        self.count += 1;
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate; exact for < 5 observations, NaN when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.count < 5 {
            let mut v = self.heights[..self.count].to_vec();
            v.sort_by(|a, b| a.total_cmp(b));
            return exact_quantile(&v, self.q);
        }
        self.heights[2]
    }

    /// Observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn exact_quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(exact_quantile(&xs, 0.0), 1.0);
        assert_eq!(exact_quantile(&xs, 1.0), 5.0);
        assert_eq!(exact_median(&xs), 3.0);
        assert_eq!(exact_quantile(&xs, 0.25), 2.0);
        // Interpolation.
        let ys = [1.0, 2.0, 3.0, 4.0];
        close(exact_median(&ys), 2.5, 1e-12);
    }

    #[test]
    fn exact_quantile_edge_cases() {
        assert!(exact_median(&[]).is_nan());
        assert!(exact_median(&[f64::NAN]).is_nan());
        assert_eq!(exact_median(&[7.0]), 7.0);
        // Unsorted input handled.
        assert_eq!(exact_median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn p2_small_samples_exact() {
        let mut p = P2Quantile::median();
        assert!(p.value().is_nan());
        p.push(10.0);
        assert_eq!(p.value(), 10.0);
        p.push(20.0);
        close(p.value(), 15.0, 1e-12);
        p.push(0.0);
        assert_eq!(p.value(), 10.0);
    }

    #[test]
    fn p2_median_converges_on_uniform() {
        let mut p = P2Quantile::median();
        // Deterministic low-discrepancy-ish stream on [0, 100).
        for i in 0..100_000u64 {
            p.push(((i.wrapping_mul(2654435761)) % 100_000) as f64 / 1000.0);
        }
        close(p.value(), 50.0, 1.0);
    }

    #[test]
    fn p2_p95_converges() {
        let mut p = P2Quantile::new(0.95);
        for i in 0..100_000u64 {
            p.push(((i.wrapping_mul(2654435761)) % 100_000) as f64 / 1000.0);
        }
        close(p.value(), 95.0, 1.5);
        assert_eq!(p.count(), 100_000);
    }

    #[test]
    fn p2_handles_skewed_stream() {
        // Exponential-ish: quantile estimate should be near exact one.
        let xs: Vec<f64> = (1..50_000u64)
            .map(|i| {
                let u = ((i.wrapping_mul(2654435761)) % 1_000_000) as f64 / 1_000_000.0;
                -(1.0 - u).ln()
            })
            .collect();
        let mut p = P2Quantile::new(0.9);
        for &x in &xs {
            p.push(x);
        }
        let exact = exact_quantile(&xs, 0.9);
        close(p.value(), exact, 0.08);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn p2_rejects_extremes() {
        P2Quantile::new(1.0);
    }
}
