//! ML performance metrics — the business-critical quantities the paper's
//! SLAs are written against (§4.1: "an example ML SLA could be 90% recall
//! for a pipeline that predicts taxi riders who will tip their drivers").
//!
//! Classification metrics accumulate into a [`ConfusionMatrix`]; threshold
//! -free quality uses [`roc_auc`]; probabilistic quality uses [`log_loss`]
//! and [`brier_score`]; regression uses the error helpers at the bottom.

use serde::{Deserialize, Serialize};

/// Binary confusion matrix accumulated from (prediction, label) pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from parallel prediction/label slices.
    pub fn from_pairs(predictions: &[bool], labels: &[bool]) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        let mut m = Self::new();
        for (&p, &l) in predictions.iter().zip(labels.iter()) {
            m.record(p, l);
        }
        m
    }

    /// Record one observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merge counts from another matrix.
    pub fn merge(&mut self, o: &ConfusionMatrix) {
        self.tp += o.tp;
        self.fp += o.fp;
        self.tn += o.tn;
        self.fn_ += o.fn_;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// (tp + tn) / total; NaN when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// tp / (tp + fp); NaN when no positive predictions.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// tp / (tp + fn); NaN when no positive labels.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; NaN when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            f64::NAN
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False positive rate: fp / (fp + tn).
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Matthews correlation coefficient, robust under class imbalance.
    pub fn mcc(&self) -> f64 {
        let (tp, fp, tn, fn_) = (
            self.tp as f64,
            self.fp as f64,
            self.tn as f64,
            self.fn_ as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            f64::NAN
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with midrank handling of score ties. NaN when either class is absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n = scores.len();
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = n - pos;
    if pos == 0 || neg == 0 {
        return f64::NAN;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Assign midranks.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let pos_f = pos as f64;
    let neg_f = neg as f64;
    (rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0) / (pos_f * neg_f)
}

/// Binary cross-entropy with probability clamping; NaN when empty.
pub fn log_loss(probabilities: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    if probabilities.is_empty() {
        return f64::NAN;
    }
    let eps = 1e-15;
    let mut sum = 0.0;
    for (&p, &l) in probabilities.iter().zip(labels.iter()) {
        let p = p.clamp(eps, 1.0 - eps);
        sum -= if l { p.ln() } else { (1.0 - p).ln() };
    }
    sum / probabilities.len() as f64
}

/// Brier score: mean squared error of probabilities; NaN when empty.
pub fn brier_score(probabilities: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    if probabilities.is_empty() {
        return f64::NAN;
    }
    probabilities
        .iter()
        .zip(labels.iter())
        .map(|(&p, &l)| {
            let y = if l { 1.0 } else { 0.0 };
            (p - y) * (p - y)
        })
        .sum::<f64>()
        / probabilities.len() as f64
}

/// Mean squared error; NaN when empty.
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    predictions
        .iter()
        .zip(targets.iter())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64
}

/// Root mean squared error.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    mse(predictions, targets).sqrt()
}

/// Mean absolute error; NaN when empty.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    predictions
        .iter()
        .zip(targets.iter())
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination R²; NaN when targets are constant/empty.
pub fn r2(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if targets.is_empty() {
        return f64::NAN;
    }
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|&t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return f64::NAN;
    }
    let ss_res: f64 = predictions
        .iter()
        .zip(targets.iter())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn confusion_matrix_basics() {
        let preds = [true, true, false, false, true];
        let labels = [true, false, false, true, true];
        let m = ConfusionMatrix::from_pairs(&preds, &labels);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 1, 1));
        close(m.accuracy(), 0.6, 1e-12);
        close(m.precision(), 2.0 / 3.0, 1e-12);
        close(m.recall(), 2.0 / 3.0, 1e-12);
        close(m.f1(), 2.0 / 3.0, 1e-12);
        close(m.false_positive_rate(), 0.5, 1e-12);
    }

    #[test]
    fn empty_matrix_is_nan() {
        let m = ConfusionMatrix::new();
        assert!(m.accuracy().is_nan());
        assert!(m.precision().is_nan());
        assert!(m.recall().is_nan());
        assert!(m.f1().is_nan());
        assert!(m.mcc().is_nan());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::from_pairs(&[true], &[true]);
        let b = ConfusionMatrix::from_pairs(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fn_, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn mcc_perfect_and_inverse() {
        let perfect = ConfusionMatrix::from_pairs(&[true, false], &[true, false]);
        close(perfect.mcc(), 1.0, 1e-12);
        let inverse = ConfusionMatrix::from_pairs(&[true, false], &[false, true]);
        close(inverse.mcc(), -1.0, 1e-12);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let labels = [false, false, true, true];
        close(roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0, 1e-12);
        close(roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0, 1e-12);
        // All-tied scores → 0.5 by midrank.
        close(roc_auc(&[0.5, 0.5, 0.5, 0.5], &labels), 0.5, 1e-12);
    }

    #[test]
    fn auc_with_ties_partial() {
        let scores = [0.2, 0.5, 0.5, 0.9];
        let labels = [false, false, true, true];
        // Pairs: (0.5 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.9 vs 0.2)=1, (0.9 vs 0.5)=1
        close(roc_auc(&scores, &labels), 3.5 / 4.0, 1e-12);
    }

    #[test]
    fn auc_single_class_nan() {
        assert!(roc_auc(&[0.1, 0.9], &[true, true]).is_nan());
    }

    #[test]
    fn log_loss_behaviour() {
        // Confident-correct ≈ 0; confident-wrong large; 0.5 → ln 2.
        close(log_loss(&[0.5], &[true]), std::f64::consts::LN_2, 1e-12);
        assert!(log_loss(&[0.99], &[true]) < 0.02);
        assert!(log_loss(&[0.01], &[true]) > 4.0);
        // Clamping keeps 0/1 probabilities finite.
        assert!(log_loss(&[0.0], &[true]).is_finite());
        assert!(log_loss(&[], &[]).is_nan());
    }

    #[test]
    fn brier_score_behaviour() {
        close(brier_score(&[1.0, 0.0], &[true, false]), 0.0, 1e-15);
        close(brier_score(&[0.0, 1.0], &[true, false]), 1.0, 1e-15);
        close(brier_score(&[0.5], &[true]), 0.25, 1e-15);
    }

    #[test]
    fn regression_metrics() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 2.0, 5.0];
        close(mse(&p, &t), 4.0 / 3.0, 1e-12);
        close(rmse(&p, &t), (4.0f64 / 3.0).sqrt(), 1e-12);
        close(mae(&p, &t), 2.0 / 3.0, 1e-12);
        // Perfect prediction → R² = 1.
        close(r2(&t, &t), 1.0, 1e-12);
        // Mean prediction → R² = 0.
        let mean = [8.0 / 3.0; 3];
        close(r2(&mean, &t), 0.0, 1e-12);
        assert!(r2(&[1.0], &[1.0]).is_nan(), "constant targets");
    }
}
