//! Distribution-divergence measures used by the drift monitors: KL
//! divergence (the paper's Example 4.2 monitors "the KL divergence between
//! train and inference states"), Jensen–Shannon, Population Stability
//! Index, and total variation distance.

use crate::histogram::Histogram;

fn check_dists(p: &[f64], q: &[f64]) {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    assert!(!p.is_empty(), "distributions must be non-empty");
}

/// Kullback–Leibler divergence D(p ‖ q) in nats. Bins where `p` is zero
/// contribute nothing; bins where `q` is zero but `p` is not yield
/// `f64::INFINITY` (callers typically smooth first, see
/// [`Histogram::probabilities`]).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    check_dists(p, q);
    let mut sum = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        sum += pi * (pi / qi).ln();
    }
    sum.max(0.0)
}

/// Jensen–Shannon divergence (symmetric, bounded by ln 2).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    check_dists(p, q);
    let m: Vec<f64> = p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Population Stability Index with the industry-standard smoothing of
/// zero bins to `eps`. PSI < 0.1 is conventionally "no shift", 0.1–0.25
/// "moderate", > 0.25 "major".
pub fn psi(expected: &[f64], actual: &[f64], eps: f64) -> f64 {
    check_dists(expected, actual);
    let mut sum = 0.0;
    for (&e, &a) in expected.iter().zip(actual.iter()) {
        let e = e.max(eps);
        let a = a.max(eps);
        sum += (a - e) * (a / e).ln();
    }
    sum.max(0.0)
}

/// Total variation distance: half the L1 distance, in [0, 1].
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    check_dists(p, q);
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| (a - b).abs())
        .sum::<f64>()
}

/// KL divergence between two comparable histograms with Laplace smoothing
/// `alpha` (the form logged by monitoring triggers).
pub fn histogram_kl(p: &Histogram, q: &Histogram, alpha: f64) -> f64 {
    assert!(p.comparable(q), "histograms are not comparable");
    kl_divergence(&p.probabilities(alpha), &q.probabilities(alpha))
}

/// PSI between two comparable histograms.
pub fn histogram_psi(expected: &Histogram, actual: &Histogram) -> f64 {
    assert!(expected.comparable(actual), "histograms are not comparable");
    psi(
        &expected.probabilities(0.0),
        &actual.probabilities(0.0),
        1e-4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_known_value() {
        // D([1,0] || [0.5,0.5]) = ln 2
        close(
            kl_divergence(&[1.0, 0.0], &[0.5, 0.5]),
            std::f64::consts::LN_2,
            1e-12,
        );
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        assert!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn kl_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-3);
    }

    #[test]
    fn js_symmetric_and_bounded() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = js_divergence(&p, &q);
        close(d, std::f64::consts::LN_2, 1e-12); // maximal
        close(js_divergence(&p, &q), js_divergence(&q, &p), 1e-15);
        assert_eq!(js_divergence(&p, &p), 0.0);
    }

    #[test]
    fn psi_bands() {
        let expected = [0.25, 0.25, 0.25, 0.25];
        // No shift.
        close(psi(&expected, &expected, 1e-4), 0.0, 1e-12);
        // Mild shift stays under 0.1.
        let mild = [0.28, 0.24, 0.24, 0.24];
        assert!(psi(&expected, &mild, 1e-4) < 0.1);
        // Major shift exceeds 0.25.
        let major = [0.7, 0.1, 0.1, 0.1];
        assert!(psi(&expected, &major, 1e-4) > 0.25);
    }

    #[test]
    fn total_variation_properties() {
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        close(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0, 1e-15);
        close(total_variation(&[0.6, 0.4], &[0.4, 0.6]), 0.2, 1e-12);
    }

    #[test]
    fn histogram_divergences() {
        let base: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let shifted: Vec<f64> = base.iter().map(|x| x + 50.0).collect();
        let hp = Histogram::new(0.0, 150.0, 15);
        let mut p = hp.clone();
        p.extend(&base);
        let mut q = Histogram::like(&hp);
        q.extend(&shifted);
        let same_kl = histogram_kl(&p, &p, 0.5);
        let diff_kl = histogram_kl(&p, &q, 0.5);
        assert!(same_kl < 1e-12);
        assert!(diff_kl > 0.5, "shifted data should diverge, got {diff_kl}");
        assert!(histogram_psi(&p, &q) > 0.25);
        assert!(histogram_psi(&p, &p) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal support")]
    fn mismatched_lengths_panic() {
        kl_divergence(&[1.0], &[0.5, 0.5]);
    }
}
