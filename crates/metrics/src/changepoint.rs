//! Sequential change-point detection over metric streams: CUSUM and an
//! EWMA control chart. Windowed drift tests (see [`crate::drift`]) ask
//! "are these two samples different?"; these detectors ask the §4.1
//! monitoring question continuously — "has this business metric's level
//! shifted?" — with O(1) state per series.

use serde::{Deserialize, Serialize};

/// Two-sided CUSUM detector (Page's test) on a standardized stream.
///
/// Accumulates deviations beyond a `slack` (k) allowance; an alarm fires
/// when either cumulative sum exceeds `threshold` (h). Standard tuning:
/// k = δ/2 where δ is the smallest shift (in σ units) worth catching,
/// h ≈ 4–5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cusum {
    mean: f64,
    std: f64,
    slack: f64,
    threshold: f64,
    pos: f64,
    neg: f64,
    observed: u64,
}

/// Direction of a detected shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Shift {
    /// Level moved up.
    Up,
    /// Level moved down.
    Down,
}

impl Cusum {
    /// Detector calibrated to a reference mean and standard deviation.
    pub fn new(mean: f64, std: f64, slack: f64, threshold: f64) -> Self {
        assert!(std > 0.0, "reference std must be positive");
        assert!(slack >= 0.0 && threshold > 0.0, "invalid tuning");
        Cusum {
            mean,
            std,
            slack,
            threshold,
            pos: 0.0,
            neg: 0.0,
            observed: 0,
        }
    }

    /// Calibrate from a reference sample with k = 0.5, h = 5 defaults.
    pub fn from_reference(reference: &[f64]) -> Self {
        let finite: Vec<f64> = reference
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .collect();
        assert!(finite.len() >= 2, "need at least two reference points");
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        let var = finite.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (finite.len() as f64 - 1.0);
        Cusum::new(mean, var.sqrt().max(1e-12), 0.5, 5.0)
    }

    /// Feed one observation; `Some(shift)` when an alarm fires (state
    /// resets so monitoring continues).
    pub fn push(&mut self, x: f64) -> Option<Shift> {
        if !x.is_finite() {
            return None;
        }
        self.observed += 1;
        let z = (x - self.mean) / self.std;
        self.pos = (self.pos + z - self.slack).max(0.0);
        self.neg = (self.neg - z - self.slack).max(0.0);
        if self.pos > self.threshold {
            self.reset();
            Some(Shift::Up)
        } else if self.neg > self.threshold {
            self.reset();
            Some(Shift::Down)
        } else {
            None
        }
    }

    /// Clear accumulated sums (automatically done after an alarm).
    pub fn reset(&mut self) {
        self.pos = 0.0;
        self.neg = 0.0;
    }

    /// Observations consumed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Current cumulative sums (positive, negative side).
    pub fn sums(&self) -> (f64, f64) {
        (self.pos, self.neg)
    }
}

/// EWMA control chart: smooths the stream with factor `lambda` and alarms
/// when the smoothed value leaves the ±L·σ_ewma control band.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EwmaChart {
    mean: f64,
    std: f64,
    lambda: f64,
    limit: f64,
    ewma: f64,
    observed: u64,
}

impl EwmaChart {
    /// Chart calibrated to a reference mean/std. Typical λ = 0.2, L = 3.
    pub fn new(mean: f64, std: f64, lambda: f64, limit: f64) -> Self {
        assert!(std > 0.0, "reference std must be positive");
        assert!(
            (0.0..=1.0).contains(&lambda) && lambda > 0.0,
            "lambda in (0,1]"
        );
        EwmaChart {
            mean,
            std,
            lambda,
            limit,
            ewma: mean,
            observed: 0,
        }
    }

    /// Feed one observation; `Some(shift)` while out of control.
    pub fn push(&mut self, x: f64) -> Option<Shift> {
        if !x.is_finite() {
            return None;
        }
        self.observed += 1;
        self.ewma = self.lambda * x + (1.0 - self.lambda) * self.ewma;
        // Steady-state EWMA standard deviation.
        let sigma = self.std * (self.lambda / (2.0 - self.lambda)).sqrt();
        let z = (self.ewma - self.mean) / sigma;
        if z > self.limit {
            Some(Shift::Up)
        } else if z < -self.limit {
            Some(Shift::Down)
        } else {
            None
        }
    }

    /// Current smoothed level.
    pub fn level(&self) -> f64 {
        self.ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(n: usize, level: f64, seed: u64) -> Vec<f64> {
        let mut st = seed | 1;
        (0..n)
            .map(|_| {
                st ^= st >> 12;
                st ^= st << 25;
                st ^= st >> 27;
                let u = (st.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
                level + (u - 0.5) * 0.2
            })
            .collect()
    }

    #[test]
    fn cusum_quiet_on_stable_stream() {
        let reference = noisy(200, 0.9, 1);
        let mut c = Cusum::from_reference(&reference);
        let mut alarms = 0;
        for x in noisy(2000, 0.9, 99) {
            if c.push(x).is_some() {
                alarms += 1;
            }
        }
        // With k = 0.5, h = 5 the in-control average run length is ~900
        // observations, so a couple of alarms per 2000 points is the
        // designed false-alarm budget.
        assert!(alarms <= 5, "stable stream fired {alarms} alarms");
        assert_eq!(c.observed(), 2000);
    }

    #[test]
    fn cusum_catches_small_persistent_drop() {
        // A 0.05 absolute drop is well under any single-point threshold
        // but accumulates: exactly CUSUM's strength.
        let reference = noisy(200, 0.9, 1);
        let mut c = Cusum::from_reference(&reference);
        let mut fired_at = None;
        for (i, x) in noisy(500, 0.85, 7).into_iter().enumerate() {
            if let Some(shift) = c.push(x) {
                assert_eq!(shift, Shift::Down);
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("persistent drop must alarm");
        assert!(at < 200, "alarm within a reasonable run length, got {at}");
    }

    #[test]
    fn cusum_detects_direction() {
        let reference = noisy(200, 0.5, 1);
        let mut c = Cusum::from_reference(&reference);
        let mut up = None;
        for x in noisy(300, 0.58, 3) {
            if let Some(s) = c.push(x) {
                up = Some(s);
                break;
            }
        }
        assert_eq!(up, Some(Shift::Up));
    }

    #[test]
    fn cusum_resets_after_alarm_and_ignores_nan() {
        let mut c = Cusum::new(0.0, 1.0, 0.5, 3.0);
        assert!(c.push(f64::NAN).is_none());
        assert_eq!(c.observed(), 0);
        for _ in 0..10 {
            if c.push(2.0).is_some() {
                break;
            }
        }
        assert_eq!(c.sums(), (0.0, 0.0), "alarm resets the sums");
    }

    #[test]
    fn ewma_tracks_and_alarms() {
        let mut chart = EwmaChart::new(0.9, 0.06, 0.2, 3.0);
        // Stable: no alarms.
        for x in noisy(500, 0.9, 5) {
            assert_eq!(chart.push(x), None);
        }
        // Shift down: alarms and stays out of control.
        let mut fired = false;
        for x in noisy(100, 0.8, 9) {
            if chart.push(x) == Some(Shift::Down) {
                fired = true;
                break;
            }
        }
        assert!(fired, "EWMA must catch a 0.1 drop");
        assert!(chart.level() < 0.9);
    }

    #[test]
    #[should_panic(expected = "std must be positive")]
    fn zero_std_rejected() {
        Cusum::new(0.0, 0.0, 0.5, 5.0);
    }
}
