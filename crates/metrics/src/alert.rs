//! Alerting with fatigue suppression.
//!
//! §4.1 of the paper: "triggering alerts for all intermediates can
//! contribute to alert 'fatigue,' rendering metrics useless in practice.
//! ... MLTRACE houses intermediate aggregations in ComponentRun logs and
//! focuses alert-triggering metrics on SLAs or other business-critical
//! requirements."
//!
//! [`AlertManager`] therefore supports two rule tiers: `Page` rules (SLA
//! violations — always surfaced, subject only to a per-rule cooldown) and
//! `Log` rules (per-feature signals — recorded, never paged). Experiment
//! E8 compares alert volumes of an SLA-gated configuration against a
//! naive page-per-feature configuration over the same faulty stream.

use crate::sla::{Comparator, Sla, SlaStatus};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a firing rule is surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Recorded in the log only; never interrupts a human.
    Log,
    /// Warrants attention soon.
    Warn,
    /// Business-critical; pages.
    Page,
}

/// A threshold rule on one metric series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Unique rule identifier.
    pub id: String,
    /// Metric series the rule watches.
    pub metric: String,
    /// Fire when `value <comparator-violated> threshold`, i.e. the rule
    /// describes the *healthy* direction and fires on its violation.
    pub comparator: Comparator,
    /// Healthy-side threshold.
    pub threshold: f64,
    /// Surfacing tier.
    pub severity: Severity,
    /// Minimum milliseconds between consecutive firings of this rule
    /// (suppression window against alert storms).
    pub cooldown_ms: u64,
}

impl AlertRule {
    /// Rule derived from an SLA: fires at `Page` severity on violation.
    pub fn from_sla(sla: &Sla, cooldown_ms: u64) -> Self {
        AlertRule {
            id: sla.name.clone(),
            metric: sla.metric.clone(),
            comparator: sla.comparator,
            threshold: sla.threshold,
            severity: Severity::Page,
            cooldown_ms,
        }
    }
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Rule that fired.
    pub rule_id: String,
    /// Metric observed.
    pub metric: String,
    /// Observed value.
    pub value: f64,
    /// Observation time, epoch milliseconds.
    pub ts_ms: u64,
    /// Tier of the firing rule.
    pub severity: Severity,
}

/// Counters for fatigue analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlertStats {
    /// Observations evaluated.
    pub observations: u64,
    /// Alerts fired (all severities).
    pub fired: u64,
    /// Page-severity alerts fired.
    pub pages: u64,
    /// Warn-severity alerts fired: surfaced in the health report but
    /// never routed to a pager.
    pub warns: u64,
    /// Firings suppressed by cooldown.
    pub suppressed: u64,
}

/// One evaluation decision for a violated rule: either the alert fired,
/// or the cooldown suppressed it. Suppressions carry the would-be alert
/// so observers (e.g. the event journal) can record what was withheld.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertOutcome {
    /// The alert that fired, or would have fired absent the cooldown.
    pub alert: Alert,
    /// True when the cooldown withheld it.
    pub suppressed: bool,
}

/// Evaluates observations against a rule set with cooldown suppression.
#[derive(Debug, Default)]
pub struct AlertManager {
    rules: Vec<AlertRule>,
    /// metric → indexes into `rules`
    by_metric: HashMap<String, Vec<usize>>,
    last_fired: HashMap<String, u64>,
    log: Vec<Alert>,
    stats: AlertStats,
}

impl AlertManager {
    /// Manager with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule. Rules on the same metric coexist.
    pub fn add_rule(&mut self, rule: AlertRule) {
        self.by_metric
            .entry(rule.metric.clone())
            .or_default()
            .push(self.rules.len());
        self.rules.push(rule);
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Feed one observation; returns alerts fired by it.
    pub fn observe(&mut self, metric: &str, value: f64, ts_ms: u64) -> Vec<Alert> {
        self.observe_outcomes(metric, value, ts_ms)
            .into_iter()
            .filter(|o| !o.suppressed)
            .map(|o| o.alert)
            .collect()
    }

    /// Feed one observation; returns every decision on a violated rule,
    /// including cooldown suppressions (which `observe` drops).
    pub fn observe_outcomes(&mut self, metric: &str, value: f64, ts_ms: u64) -> Vec<AlertOutcome> {
        self.stats.observations += 1;
        let Some(indexes) = self.by_metric.get(metric) else {
            return Vec::new();
        };
        let mut outcomes = Vec::new();
        for &i in indexes {
            let rule = &self.rules[i];
            if rule.comparator.holds(value, rule.threshold) {
                continue; // healthy
            }
            let alert = Alert {
                rule_id: rule.id.clone(),
                metric: rule.metric.clone(),
                value,
                ts_ms,
                severity: rule.severity,
            };
            if let Some(&last) = self.last_fired.get(&rule.id) {
                if ts_ms.saturating_sub(last) < rule.cooldown_ms {
                    self.stats.suppressed += 1;
                    outcomes.push(AlertOutcome {
                        alert,
                        suppressed: true,
                    });
                    continue;
                }
            }
            self.last_fired.insert(rule.id.clone(), ts_ms);
            self.stats.fired += 1;
            match rule.severity {
                Severity::Page => self.stats.pages += 1,
                Severity::Warn => self.stats.warns += 1,
                Severity::Log => {}
            }
            self.log.push(alert.clone());
            outcomes.push(AlertOutcome {
                alert,
                suppressed: false,
            });
        }
        outcomes
    }

    /// Evaluate an SLA over a series at time `ts_ms`, firing a `Page`
    /// alert on violation (with the SLA's name as the rule id and no
    /// cooldown bookkeeping beyond rules already installed).
    pub fn observe_sla(&mut self, sla: &Sla, series: &[f64], ts_ms: u64) -> Option<Alert> {
        match sla.evaluate(series) {
            SlaStatus::Violated { observed } => {
                let alert = Alert {
                    rule_id: sla.name.clone(),
                    metric: sla.metric.clone(),
                    value: observed,
                    ts_ms,
                    severity: Severity::Page,
                };
                self.stats.fired += 1;
                self.stats.pages += 1;
                self.log.push(alert.clone());
                Some(alert)
            }
            _ => None,
        }
    }

    /// All alerts fired so far, oldest first.
    pub fn log(&self) -> &[Alert] {
        &self.log
    }

    /// Fatigue counters.
    pub fn stats(&self) -> AlertStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy_rule(cooldown: u64) -> AlertRule {
        AlertRule {
            id: "acc-floor".into(),
            metric: "accuracy".into(),
            comparator: Comparator::Gte,
            threshold: 0.9,
            severity: Severity::Page,
            cooldown_ms: cooldown,
        }
    }

    #[test]
    fn fires_on_violation_only() {
        let mut m = AlertManager::new();
        m.add_rule(accuracy_rule(0));
        assert!(m.observe("accuracy", 0.95, 1).is_empty());
        let fired = m.observe("accuracy", 0.80, 2);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule_id, "acc-floor");
        assert_eq!(fired[0].severity, Severity::Page);
        assert!(m.observe("other_metric", 0.0, 3).is_empty());
        assert_eq!(m.stats().pages, 1);
    }

    #[test]
    fn cooldown_suppresses_storms() {
        let mut m = AlertManager::new();
        m.add_rule(accuracy_rule(1000));
        let mut fired = 0;
        for t in 0..100u64 {
            fired += m.observe("accuracy", 0.5, t * 100).len();
        }
        // 10 s of violations every 100 ms with a 1 s cooldown → 10 firings.
        assert_eq!(fired, 10);
        assert_eq!(m.stats().suppressed, 90);
        assert_eq!(m.log().len(), 10);
    }

    #[test]
    fn multiple_rules_same_metric() {
        let mut m = AlertManager::new();
        m.add_rule(accuracy_rule(0));
        m.add_rule(AlertRule {
            id: "acc-warn".into(),
            metric: "accuracy".into(),
            comparator: Comparator::Gte,
            threshold: 0.95,
            severity: Severity::Warn,
            cooldown_ms: 0,
        });
        let fired = m.observe("accuracy", 0.92, 1);
        assert_eq!(fired.len(), 1, "only the warn rule fires at 0.92");
        assert_eq!(fired[0].severity, Severity::Warn);
        let fired = m.observe("accuracy", 0.5, 2);
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn warn_tier_is_recorded_but_never_pages() {
        let mut m = AlertManager::new();
        m.add_rule(AlertRule {
            id: "latency-creep".into(),
            metric: "p99_ms".into(),
            comparator: Comparator::Lte,
            threshold: 250.0,
            severity: Severity::Warn,
            cooldown_ms: 0,
        });
        let fired = m.observe("p99_ms", 400.0, 1);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].severity, Severity::Warn);
        let stats = m.stats();
        assert_eq!(stats.warns, 1, "warn firings have their own counter");
        assert_eq!(stats.pages, 0, "a warn never pages");
        assert_eq!(m.log().len(), 1, "but it is recorded");
    }

    #[test]
    fn outcomes_expose_suppressed_decisions() {
        let mut m = AlertManager::new();
        m.add_rule(accuracy_rule(1000));
        let first = m.observe_outcomes("accuracy", 0.5, 0);
        assert_eq!(first.len(), 1);
        assert!(!first[0].suppressed);
        let second = m.observe_outcomes("accuracy", 0.4, 100);
        assert_eq!(second.len(), 1, "cooldown decision still reported");
        assert!(second[0].suppressed);
        assert_eq!(second[0].alert.value, 0.4, "carries the withheld alert");
        assert_eq!(m.log().len(), 1, "suppressed firings stay out of the log");
        assert_eq!(m.stats().suppressed, 1);
    }

    #[test]
    fn sla_gated_vs_per_feature_fatigue() {
        // E8 in miniature: 50 features each with a noisy threshold rule vs
        // one SLA page rule. Same stream; count pages.
        let mut per_feature = AlertManager::new();
        for f in 0..50 {
            per_feature.add_rule(AlertRule {
                id: format!("feature-{f}"),
                metric: format!("feature_mean_{f}"),
                comparator: Comparator::Lte,
                threshold: 0.7, // fires whenever mean wanders above 0.7
                severity: Severity::Page,
                cooldown_ms: 0,
            });
        }
        let mut sla_gated = AlertManager::new();
        sla_gated.add_rule(accuracy_rule(0));

        // Simulate 100 ticks: features wander (30% of ticks one feature
        // crosses), accuracy stays healthy except two real incidents.
        let mut state = 7u64;
        let mut rand01 = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        for t in 0..100u64 {
            for f in 0..50 {
                let v = 0.5 + 0.3 * rand01();
                per_feature.observe(&format!("feature_mean_{f}"), v, t);
            }
            let acc = if t == 40 || t == 41 { 0.6 } else { 0.93 };
            sla_gated.observe("accuracy", acc, t);
        }
        let noisy = per_feature.stats().pages;
        let gated = sla_gated.stats().pages;
        assert_eq!(gated, 2, "SLA-gated pages only on real incidents");
        assert!(
            noisy > 20 * gated,
            "per-feature alerting should be far noisier: {noisy} vs {gated}"
        );
    }

    #[test]
    fn observe_sla_pages_on_violation() {
        let mut m = AlertManager::new();
        let sla = Sla::mean_at_least("recall-90", "recall", 0.9, 3);
        assert!(m.observe_sla(&sla, &[0.95, 0.93, 0.92], 1).is_none());
        let alert = m.observe_sla(&sla, &[0.95, 0.5, 0.5], 2).unwrap();
        assert_eq!(alert.rule_id, "recall-90");
        assert_eq!(m.stats().pages, 1);
    }

    #[test]
    fn rule_from_sla() {
        let sla = Sla::mean_at_least("recall-90", "recall", 0.9, 3);
        let rule = AlertRule::from_sla(&sla, 500);
        assert_eq!(rule.metric, "recall");
        assert_eq!(rule.severity, Severity::Page);
        assert_eq!(rule.cooldown_ms, 500);
    }
}
