//! Drift detection: compare a live window of a feature (or prediction)
//! against a reference snapshot taken at training time.
//!
//! §5.2 of the paper frames the design space this module exposes: simple
//! statistics (mean/median) are cheap but "can fail when skew and kurtosis
//! changes", while the KS statistic is sensitive but "can be expensive and
//! produce too many false positive alerts". [`DriftDetector`] runs any
//! subset of methods over the same reference so the trade-off is
//! measurable (experiment E7).

use crate::desc::StreamingMoments;
use crate::divergence::{histogram_kl, histogram_psi};
use crate::histogram::Histogram;
use crate::quantile::exact_median;
use crate::stattests::{ks_two_sample, welch_t_test};
use serde::{Deserialize, Serialize};

/// The drift-detection methods available to monitoring triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriftMethod {
    /// Welch t-test on means; cheap, blind to shape-only drift.
    MeanShift,
    /// Relative shift of the median beyond a fraction threshold.
    MedianShift,
    /// Two-sample Kolmogorov–Smirnov test; sensitive, O(n log n).
    Ks,
    /// Population Stability Index over the reference histogram bins.
    Psi,
    /// Smoothed KL divergence over the reference histogram bins.
    Kl,
}

impl DriftMethod {
    /// All methods, in increasing order of cost.
    pub const ALL: [DriftMethod; 5] = [
        DriftMethod::MeanShift,
        DriftMethod::MedianShift,
        DriftMethod::Psi,
        DriftMethod::Kl,
        DriftMethod::Ks,
    ];

    /// Short name used in metric series (`drift_ks:fare`).
    pub fn name(self) -> &'static str {
        match self {
            DriftMethod::MeanShift => "mean_shift",
            DriftMethod::MedianShift => "median_shift",
            DriftMethod::Ks => "ks",
            DriftMethod::Psi => "psi",
            DriftMethod::Kl => "kl",
        }
    }
}

/// Decision thresholds. Defaults follow common practice: α = 0.01 for
/// tests, PSI 0.25 ("major shift"), KL 0.1, 25% median movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Significance level for KS and mean-shift tests.
    pub alpha: f64,
    /// PSI above this is drift.
    pub psi_threshold: f64,
    /// Smoothed KL above this is drift.
    pub kl_threshold: f64,
    /// |median_now − median_ref| / max(|median_ref|, std_ref) above this
    /// is drift.
    pub median_rel_threshold: f64,
    /// Histogram bins for PSI/KL.
    pub bins: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            alpha: 0.01,
            psi_threshold: 0.25,
            kl_threshold: 0.1,
            median_rel_threshold: 0.25,
            bins: 20,
        }
    }
}

/// Verdict of one method on one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftFinding {
    /// The method that produced this finding.
    pub method: DriftMethod,
    /// Method-specific score (D, PSI, KL, |t|, or relative median shift).
    pub score: f64,
    /// p-value where the method has one.
    pub p_value: Option<f64>,
    /// Whether the configured threshold was crossed.
    pub drifted: bool,
}

/// Reference snapshot of a single numeric feature, captured at training
/// time, against which live windows are compared.
///
/// ```
/// use mltrace_metrics::{DriftConfig, DriftDetector, DriftMethod};
///
/// let reference: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
/// let detector = DriftDetector::fit(&reference, DriftConfig::default());
/// let shifted: Vec<f64> = reference.iter().map(|x| x + 50.0).collect();
/// assert!(detector.check(DriftMethod::Ks, &shifted).drifted);
/// assert!(!detector.check(DriftMethod::Ks, &reference).drifted);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftDetector {
    sample: Vec<f64>,
    moments: StreamingMoments,
    histogram: Histogram,
    median: f64,
    config: DriftConfig,
}

impl DriftDetector {
    /// Snapshot `reference` (e.g. a training feature column).
    pub fn fit(reference: &[f64], config: DriftConfig) -> Self {
        let sample: Vec<f64> = reference
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .collect();
        assert!(!sample.is_empty(), "reference sample must be non-empty");
        let moments = StreamingMoments::from_slice(&sample);
        let histogram = Histogram::from_samples(&sample, config.bins);
        let median = exact_median(&sample);
        DriftDetector {
            sample,
            moments,
            histogram,
            median,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Reference summary statistics.
    pub fn reference_moments(&self) -> &StreamingMoments {
        &self.moments
    }

    /// Evaluate one method over a live window.
    pub fn check(&self, method: DriftMethod, window: &[f64]) -> DriftFinding {
        match method {
            DriftMethod::MeanShift => {
                let r = welch_t_test(&self.sample, window);
                DriftFinding {
                    method,
                    score: r.statistic.abs(),
                    p_value: Some(r.p_value),
                    drifted: !r.p_value.is_nan() && r.p_value < self.config.alpha,
                }
            }
            DriftMethod::MedianShift => {
                let now = exact_median(window);
                // Scale-aware denominator: a purely relative threshold
                // explodes when the reference median is near zero.
                let denom = self.median.abs().max(self.moments.std_dev()).max(1e-9);
                let rel = (now - self.median).abs() / denom;
                DriftFinding {
                    method,
                    score: rel,
                    p_value: None,
                    drifted: rel.is_finite() && rel > self.config.median_rel_threshold,
                }
            }
            DriftMethod::Ks => {
                let r = ks_two_sample(&self.sample, window);
                DriftFinding {
                    method,
                    score: r.statistic,
                    p_value: Some(r.p_value),
                    drifted: !r.p_value.is_nan() && r.p_value < self.config.alpha,
                }
            }
            DriftMethod::Psi => {
                let mut h = Histogram::like(&self.histogram);
                h.extend(window);
                let score = histogram_psi(&self.histogram, &h);
                DriftFinding {
                    method,
                    score,
                    p_value: None,
                    drifted: score > self.config.psi_threshold,
                }
            }
            DriftMethod::Kl => {
                let mut h = Histogram::like(&self.histogram);
                h.extend(window);
                let score = histogram_kl(&self.histogram, &h, 0.5);
                DriftFinding {
                    method,
                    score,
                    p_value: None,
                    drifted: score > self.config.kl_threshold,
                }
            }
        }
    }

    /// Evaluate every method in [`DriftMethod::ALL`].
    pub fn check_all(&self, window: &[f64]) -> Vec<DriftFinding> {
        DriftMethod::ALL
            .iter()
            .map(|&m| self.check(m, window))
            .collect()
    }

    /// True if any of the given methods reports drift.
    pub fn any_drift(&self, methods: &[DriftMethod], window: &[f64]) -> bool {
        methods.iter().any(|&m| self.check(m, window).drifted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn no_drift_on_same_distribution() {
        let det = DriftDetector::fit(&uniform(5000, 1), DriftConfig::default());
        let window = uniform(5000, 999);
        for f in det.check_all(&window) {
            assert!(!f.drifted, "{:?} false positive: {:?}", f.method, f);
        }
    }

    #[test]
    fn all_methods_catch_location_shift() {
        let det = DriftDetector::fit(&uniform(5000, 1), DriftConfig::default());
        let window: Vec<f64> = uniform(5000, 999).iter().map(|x| x + 0.5).collect();
        for f in det.check_all(&window) {
            assert!(f.drifted, "{:?} missed a 0.5 location shift", f.method);
        }
    }

    #[test]
    fn variance_change_caught_by_ks_missed_by_mean() {
        // The paper's §5.2 point: shape-only drift defeats simple stats.
        let det = DriftDetector::fit(&uniform(5000, 1), DriftConfig::default());
        let window: Vec<f64> = uniform(5000, 999)
            .iter()
            .map(|x| 0.5 + (x - 0.5) * 0.25)
            .collect();
        let mean = det.check(DriftMethod::MeanShift, &window);
        let median = det.check(DriftMethod::MedianShift, &window);
        let ks = det.check(DriftMethod::Ks, &window);
        let psi = det.check(DriftMethod::Psi, &window);
        assert!(!mean.drifted, "mean test should be blind to variance drift");
        assert!(
            !median.drifted,
            "median should be blind to symmetric squeeze"
        );
        assert!(ks.drifted, "KS should catch variance drift");
        assert!(psi.drifted, "PSI should catch variance drift");
    }

    #[test]
    fn scores_scale_with_shift_size() {
        let det = DriftDetector::fit(&uniform(3000, 1), DriftConfig::default());
        let small: Vec<f64> = uniform(3000, 42).iter().map(|x| x + 0.05).collect();
        let large: Vec<f64> = uniform(3000, 42).iter().map(|x| x + 0.4).collect();
        for m in [DriftMethod::Ks, DriftMethod::Psi, DriftMethod::Kl] {
            let s = det.check(m, &small).score;
            let l = det.check(m, &large).score;
            assert!(l > s, "{m:?}: score should grow with shift ({s} vs {l})");
        }
    }

    #[test]
    fn any_drift_composition() {
        let det = DriftDetector::fit(&uniform(2000, 1), DriftConfig::default());
        let shifted: Vec<f64> = uniform(2000, 5).iter().map(|x| x + 1.0).collect();
        assert!(det.any_drift(&[DriftMethod::Ks], &shifted));
        assert!(!det.any_drift(&[DriftMethod::Ks], &uniform(2000, 77)));
    }

    #[test]
    fn method_names_unique() {
        let mut names: Vec<&str> = DriftMethod::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DriftMethod::ALL.len());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_reference_rejected() {
        DriftDetector::fit(&[], DriftConfig::default());
    }
}
