//! The always-on monitoring plane: streaming per-(component, metric)
//! window summaries with drift scoring.
//!
//! §3–4 of the paper envision *continuous* observability — distributional
//! summaries and label-free drift signals maintained on every logged
//! metric point, not recomputed by post-hoc queries. [`MonitorPlane`] is
//! that substrate: a registry keyed by `(component, metric)` where each
//! key accumulates lifetime streaming statistics ([`StreamingMoments`],
//! three [`P2Quantile`] markers, a null counter) and a bounded *current
//! window* of raw values. Windows roll over by count and/or by time
//! horizon; the first adequately-sized window is frozen as the drift
//! reference ([`DriftDetector::fit`]), and every subsequent roll-over is
//! scored against it with [`DriftDetector::check_all`].
//!
//! The plane is deliberately a pure state machine: `observe` consumes
//! `(component, metric, value, ts_ms)` tuples and *returns* the window
//! roll-overs it caused — it never journals, alerts, or looks at a wall
//! clock. Roll-over is driven entirely by the data (point counts and
//! record timestamps), which is what makes the state a deterministic
//! function of the per-key observation sequence: replaying the same
//! metric records through a fresh plane reproduces the same summaries,
//! bit for bit. The store layer feeds the plane on every ingest batch and
//! routes the returned [`WindowRoll`]s into the journal / alerting /
//! incident machinery; WAL replay feeds the same records and discards the
//! rolls (their side effects were journaled when they happened online).

use crate::desc::StreamingMoments;
use crate::drift::{DriftConfig, DriftDetector, DriftFinding};
use crate::quantile::P2Quantile;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Window lifecycle and drift-scoring knobs for a [`MonitorPlane`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Whether the plane accumulates at all. A disabled plane makes
    /// `observe` a no-op (the E15 ablation baseline).
    pub enabled: bool,
    /// Roll the current window once it holds this many observations
    /// (finite or not). 0 disables count-based roll-over.
    pub window_count: usize,
    /// Roll the current window when a point arrives at or past
    /// `window_start_ms + time_horizon_ms`. 0 disables time-based
    /// roll-over. Timestamps come from the records themselves, never from
    /// a wall clock, so replay rolls identically.
    pub time_horizon_ms: u64,
    /// Minimum finite values a window needs to be frozen as the drift
    /// reference or scored against it. Guards [`DriftDetector::fit`]
    /// (which rejects empty references) and keeps tiny windows from
    /// producing noise scores.
    pub min_samples: usize,
    /// Thresholds for the drift detector fitted on the reference window.
    pub drift: DriftConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            enabled: true,
            window_count: 256,
            time_horizon_ms: 0,
            min_samples: 32,
            drift: DriftConfig::default(),
        }
    }
}

/// Drift verdict attached to a [`WindowRoll`] once a reference exists.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScore {
    /// Largest score among methods that crossed their threshold; 0.0 when
    /// no method drifted, so `score > 0.0 ⇔ drifted`.
    pub score: f64,
    /// Name of the scoring method (`mean_shift`, `psi`, …): the
    /// max-scoring drifted method, or the max-scoring method overall when
    /// nothing drifted.
    pub method: String,
    /// Whether any method crossed its threshold.
    pub drifted: bool,
    /// Every method's finding, for journal payloads and debugging.
    pub findings: Vec<DriftFinding>,
    /// Finite values in the frozen reference window.
    pub reference_points: u64,
}

/// One completed window, returned from [`MonitorPlane::observe`] so the
/// caller can journal / alert on it.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRoll {
    /// Component the metric belongs to.
    pub component: String,
    /// Metric series name.
    pub metric: String,
    /// 1-based index of the window that just completed.
    pub window: u64,
    /// Timestamp of the observation that triggered the roll.
    pub ts_ms: u64,
    /// Finite values the completed window held.
    pub points: usize,
    /// Drift verdict; `None` when the roll froze the reference (first
    /// adequate window) or the window was too small to score.
    pub score: Option<DriftScore>,
}

/// Point-in-time summary of one `(component, metric)` key, the row shape
/// behind the `summaries` SQL table and `mltrace monitor`.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSummary {
    /// Component the metric belongs to.
    pub component: String,
    /// Metric series name.
    pub metric: String,
    /// Completed windows so far.
    pub windows: u64,
    /// Lifetime finite observations.
    pub count: u64,
    /// Lifetime mean.
    pub mean: f64,
    /// Lifetime population variance.
    pub variance: f64,
    /// Lifetime minimum.
    pub min: f64,
    /// Lifetime maximum.
    pub max: f64,
    /// Streaming (P²) quantile estimates.
    pub p50: f64,
    /// 95th percentile estimate.
    pub p95: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// Non-finite observations / all observations, lifetime.
    pub null_rate: f64,
    /// Finite values in the in-progress window.
    pub window_points: usize,
    /// Finite values in the frozen reference window; 0 until frozen.
    pub reference_points: u64,
    /// Score of the most recent drift evaluation (0.0 when it found no
    /// drift, or nothing has been scored yet).
    pub drift_score: f64,
    /// Method behind `drift_score`; empty until something is scored.
    pub drift_method: String,
    /// Timestamp of the newest observation.
    pub last_ts_ms: u64,
}

/// Per-key streaming state. Everything here is a deterministic function
/// of the key's observation sequence.
#[derive(Debug, Clone)]
struct KeyState {
    moments: StreamingMoments,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    observations: u64,
    nulls: u64,
    window: Vec<f64>,
    window_observations: usize,
    window_start_ms: u64,
    windows_rolled: u64,
    reference: Option<DriftDetector>,
    reference_points: u64,
    last_score: f64,
    last_method: String,
    last_ts_ms: u64,
}

impl KeyState {
    fn new() -> Self {
        KeyState {
            moments: StreamingMoments::new(),
            p50: P2Quantile::median(),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            observations: 0,
            nulls: 0,
            window: Vec::new(),
            window_observations: 0,
            window_start_ms: 0,
            windows_rolled: 0,
            reference: None,
            reference_points: 0,
            last_score: 0.0,
            last_method: String::new(),
            last_ts_ms: 0,
        }
    }

    /// Complete the current window: score it against the reference when
    /// one exists, freeze it as the reference otherwise (first adequate
    /// window), then reset for the next window.
    fn roll(
        &mut self,
        config: &MonitorConfig,
        ts_ms: u64,
    ) -> Option<(u64, usize, Option<DriftScore>)> {
        if self.window_observations == 0 {
            return None;
        }
        let points = self.window.len();
        let score = match &self.reference {
            Some(det) if points >= config.min_samples => {
                let findings = det.check_all(&self.window);
                let best_drifted = findings
                    .iter()
                    .filter(|f| f.drifted)
                    .max_by(|a, b| a.score.total_cmp(&b.score));
                let best_any = findings.iter().max_by(|a, b| a.score.total_cmp(&b.score));
                let (score, method, drifted) = match (best_drifted, best_any) {
                    (Some(f), _) => (f.score, f.method.name().to_string(), true),
                    (None, Some(f)) => (0.0, f.method.name().to_string(), false),
                    (None, None) => (0.0, String::new(), false),
                };
                Some(DriftScore {
                    score,
                    method,
                    drifted,
                    findings,
                    reference_points: self.reference_points,
                })
            }
            Some(_) => None, // window too small to score
            None => {
                // Reference-freeze semantics: the first window with
                // enough finite values becomes the reference, forever.
                if points >= config.min_samples {
                    self.reference = Some(DriftDetector::fit(&self.window, config.drift));
                    self.reference_points = points as u64;
                }
                None
            }
        };
        if let Some(s) = &score {
            self.last_score = if s.drifted { s.score } else { 0.0 };
            self.last_method = s.method.clone();
        }
        self.windows_rolled += 1;
        self.window.clear();
        self.window_observations = 0;
        self.window_start_ms = ts_ms;
        Some((self.windows_rolled, points, score))
    }

    fn summary(&self, component: &str, metric: &str) -> MonitorSummary {
        MonitorSummary {
            component: component.to_string(),
            metric: metric.to_string(),
            windows: self.windows_rolled,
            count: self.moments.count(),
            mean: self.moments.mean(),
            variance: self.moments.variance(),
            min: self.moments.min(),
            max: self.moments.max(),
            p50: self.p50.value(),
            p95: self.p95.value(),
            p99: self.p99.value(),
            null_rate: if self.observations == 0 {
                0.0
            } else {
                self.nulls as f64 / self.observations as f64
            },
            window_points: self.window.len(),
            reference_points: self.reference_points,
            drift_score: self.last_score,
            drift_method: self.last_method.clone(),
            last_ts_ms: self.last_ts_ms,
        }
    }
}

/// Registry of per-(component, metric) streaming summaries. Shareable
/// across threads; one lock per `observe_batch` call.
#[derive(Debug)]
pub struct MonitorPlane {
    config: MonitorConfig,
    keys: Mutex<BTreeMap<(String, String), KeyState>>,
}

impl Default for MonitorPlane {
    fn default() -> Self {
        Self::new(MonitorConfig::default())
    }
}

impl MonitorPlane {
    /// Plane with the given window/drift configuration.
    pub fn new(config: MonitorConfig) -> Self {
        MonitorPlane {
            config,
            keys: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether the plane accumulates observations.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The plane's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Feed one observation; returns the window roll it triggered, if any.
    pub fn observe(
        &self,
        component: &str,
        metric: &str,
        value: f64,
        ts_ms: u64,
    ) -> Option<WindowRoll> {
        let mut rolls = self.observe_batch([(component, metric, value, ts_ms)]);
        rolls.pop()
    }

    /// Feed a batch of observations under one lock; returns every window
    /// roll the batch triggered, in feed order.
    pub fn observe_batch<'a, I>(&self, batch: I) -> Vec<WindowRoll>
    where
        I: IntoIterator<Item = (&'a str, &'a str, f64, u64)>,
    {
        if !self.config.enabled {
            return Vec::new();
        }
        let mut rolls = Vec::new();
        let mut keys = self.keys.lock().unwrap_or_else(|p| p.into_inner());
        for (component, metric, value, ts_ms) in batch {
            let state = keys
                .entry((component.to_string(), metric.to_string()))
                .or_insert_with(KeyState::new);
            if state.window_observations == 0 {
                state.window_start_ms = ts_ms;
            }
            // Time-based roll happens *before* the new point joins, so a
            // point past the horizon closes the old window and opens the
            // next one.
            if self.config.time_horizon_ms > 0
                && ts_ms
                    >= state
                        .window_start_ms
                        .saturating_add(self.config.time_horizon_ms)
            {
                if let Some((window, points, score)) = state.roll(&self.config, ts_ms) {
                    rolls.push(WindowRoll {
                        component: component.to_string(),
                        metric: metric.to_string(),
                        window,
                        ts_ms,
                        points,
                        score,
                    });
                }
            }
            state.observations += 1;
            state.last_ts_ms = state.last_ts_ms.max(ts_ms);
            state.window_observations += 1;
            if value.is_finite() {
                state.moments.push(value);
                state.p50.push(value);
                state.p95.push(value);
                state.p99.push(value);
                state.window.push(value);
            } else {
                state.nulls += 1;
            }
            if self.config.window_count > 0 && state.window_observations >= self.config.window_count
            {
                if let Some((window, points, score)) = state.roll(&self.config, ts_ms) {
                    rolls.push(WindowRoll {
                        component: component.to_string(),
                        metric: metric.to_string(),
                        window,
                        ts_ms,
                        points,
                        score,
                    });
                }
            }
        }
        rolls
    }

    /// Summaries for every key, ordered by (component, metric).
    pub fn summaries(&self) -> Vec<MonitorSummary> {
        let keys = self.keys.lock().unwrap_or_else(|p| p.into_inner());
        keys.iter().map(|((c, m), s)| s.summary(c, m)).collect()
    }

    /// Summary for one key, if it has been observed.
    pub fn summary(&self, component: &str, metric: &str) -> Option<MonitorSummary> {
        let keys = self.keys.lock().unwrap_or_else(|p| p.into_inner());
        keys.get(&(component.to_string(), metric.to_string()))
            .map(|s| s.summary(component, metric))
    }

    /// Number of tracked (component, metric) keys.
    pub fn key_count(&self) -> usize {
        self.keys.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MonitorConfig {
        MonitorConfig {
            window_count: 8,
            min_samples: 4,
            ..MonitorConfig::default()
        }
    }

    fn feed(plane: &MonitorPlane, values: &[f64]) -> Vec<WindowRoll> {
        let mut rolls = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            rolls.extend(plane.observe("infer", "score", v, i as u64));
        }
        rolls
    }

    #[test]
    fn lifetime_stats_accumulate() {
        let plane = MonitorPlane::new(tiny_config());
        feed(&plane, &[1.0, 2.0, 3.0, 4.0, f64::NAN]);
        let s = plane.summary("infer", "score").unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.null_rate - 0.2).abs() < 1e-12);
        assert_eq!(s.windows, 0);
        assert_eq!(s.window_points, 4);
    }

    #[test]
    fn first_adequate_window_freezes_reference() {
        let plane = MonitorPlane::new(tiny_config());
        let rolls = feed(&plane, &[1.0, 2.0, 1.5, 2.5, 1.0, 2.0, 1.5, 2.5]);
        assert_eq!(rolls.len(), 1);
        assert_eq!(rolls[0].window, 1);
        assert_eq!(rolls[0].points, 8);
        assert!(rolls[0].score.is_none(), "reference freeze is not scored");
        let s = plane.summary("infer", "score").unwrap();
        assert_eq!(s.reference_points, 8);
    }

    #[test]
    fn shifted_window_scores_drift() {
        let plane = MonitorPlane::new(MonitorConfig {
            window_count: 32,
            min_samples: 16,
            ..MonitorConfig::default()
        });
        let base: Vec<f64> = (0..32).map(|i| (i % 8) as f64 * 0.1).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v + 50.0).collect();
        assert_eq!(feed(&plane, &base).len(), 1, "reference window");
        let rolls = feed(&plane, &shifted);
        assert_eq!(rolls.len(), 1);
        let score = rolls[0].score.as_ref().expect("scored against reference");
        assert!(score.drifted, "{score:?}");
        assert!(score.score > 0.0);
        assert!(!score.method.is_empty());
        let s = plane.summary("infer", "score").unwrap();
        assert!(s.drift_score > 0.0);
        assert_eq!(s.drift_method, score.method);
    }

    #[test]
    fn stable_window_scores_zero() {
        let plane = MonitorPlane::new(MonitorConfig {
            window_count: 32,
            min_samples: 16,
            ..MonitorConfig::default()
        });
        let base: Vec<f64> = (0..64).map(|i| (i % 8) as f64 * 0.1).collect();
        let rolls = feed(&plane, &base);
        assert_eq!(rolls.len(), 2);
        let score = rolls[1].score.as_ref().expect("second window is scored");
        assert!(!score.drifted);
        assert_eq!(score.score, 0.0, "undrifted windows report score 0");
        assert_eq!(plane.summary("infer", "score").unwrap().drift_score, 0.0);
    }

    #[test]
    fn time_horizon_rolls_windows() {
        let plane = MonitorPlane::new(MonitorConfig {
            window_count: 0,
            time_horizon_ms: 100,
            min_samples: 2,
            ..MonitorConfig::default()
        });
        let mut rolls = Vec::new();
        for (ts, v) in [(0u64, 1.0), (50, 2.0), (99, 3.0), (100, 4.0), (150, 5.0)] {
            rolls.extend(plane.observe("c", "m", v, ts));
        }
        assert_eq!(rolls.len(), 1, "point at ts=100 closes the [0,100) window");
        assert_eq!(rolls[0].points, 3);
        let s = plane.summary("c", "m").unwrap();
        assert_eq!(s.window_points, 2, "ts 100 and 150 are in the new window");
    }

    #[test]
    fn disabled_plane_is_inert() {
        let plane = MonitorPlane::new(MonitorConfig {
            enabled: false,
            ..tiny_config()
        });
        assert!(feed(&plane, &[1.0; 64]).is_empty());
        assert_eq!(plane.key_count(), 0);
        assert!(plane.summary("infer", "score").is_none());
    }

    #[test]
    fn replay_reproduces_state_exactly() {
        // The determinism contract the WAL replay relies on: feeding the
        // same per-key sequence to a fresh plane reproduces the summary
        // bit for bit, regardless of batch boundaries.
        let values: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 1000) as f64 / 250.0 + if i > 700 { 5.0 } else { 0.0 })
            .collect();
        let online = MonitorPlane::new(tiny_config());
        for (i, &v) in values.iter().enumerate() {
            online.observe("c", "m", v, i as u64);
        }
        let replayed = MonitorPlane::new(tiny_config());
        replayed.observe_batch(
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| ("c", "m", v, i as u64)),
        );
        assert_eq!(online.summaries(), replayed.summaries());
    }
}
