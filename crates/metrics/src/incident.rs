//! Incident lifecycle on top of the alert stream.
//!
//! Raw page alerts are moments; an *incident* is the condition they point
//! at. [`IncidentManager`] folds `Page`-tier firings into deduplicated
//! incidents keyed by rule id, so a flapping SLA produces one incident
//! with a `fire_count` instead of a page storm. Incidents move through
//! open → acknowledged → resolved; a re-fire after resolution reopens the
//! same key. Resolution is either explicit or automatic after a quiet
//! period with no fires ([`IncidentManager::resolve_quiet`]).

use crate::alert::{Alert, AlertOutcome, Severity};
use std::collections::BTreeMap;

/// Lifecycle phase of an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentPhase {
    /// Firing (or fired and not yet dealt with).
    Open,
    /// A human has seen it; still unresolved.
    Acknowledged,
    /// Condition cleared.
    Resolved,
}

/// One deduplicated incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Dedup key: the id of the rule whose firings fold in here.
    pub key: String,
    /// Lifecycle phase.
    pub phase: IncidentPhase,
    /// Severity of the underlying alerts.
    pub severity: Severity,
    /// Metric the incident is about.
    pub subject: String,
    /// When this incident (cycle) opened, epoch ms.
    pub opened_ms: u64,
    /// Most recent fire folded in.
    pub last_fire_ms: u64,
    /// When it resolved, if it has.
    pub resolved_ms: Option<u64>,
    /// Fires folded in, including the opening one.
    pub fire_count: u64,
    /// Cooldown-suppressed firings observed while open.
    pub suppressed_count: u64,
    /// Human-readable line from the opening alert.
    pub detail: String,
}

impl Incident {
    /// SLA burn: how long the incident has been (or was) unresolved.
    pub fn burn_ms(&self, now_ms: u64) -> u64 {
        self.resolved_ms
            .unwrap_or(now_ms)
            .saturating_sub(self.opened_ms)
    }
}

/// What folding one observation did to the incident set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentChange {
    /// A new incident opened (first fire, or re-fire after resolution).
    Opened,
    /// An existing open incident absorbed another fire.
    Refired,
    /// A suppressed firing was tallied onto an open incident.
    Suppressed,
    /// The incident moved to acknowledged.
    Acknowledged,
    /// The incident resolved.
    Resolved,
    /// Nothing tracked changed (non-page alert, unknown key, bad phase).
    Ignored,
}

/// Folds page alerts into deduplicated incidents.
#[derive(Debug, Default)]
pub struct IncidentManager {
    incidents: BTreeMap<String, Incident>,
    /// Auto-resolve an open incident after this long with no fires;
    /// 0 disables quiet resolution.
    quiet_resolve_ms: u64,
}

impl IncidentManager {
    /// Manager with quiet-period auto-resolution (0 disables it).
    pub fn new(quiet_resolve_ms: u64) -> Self {
        IncidentManager {
            incidents: BTreeMap::new(),
            quiet_resolve_ms,
        }
    }

    /// Fold one alert decision in: fires open or re-fire incidents,
    /// suppressions tally onto whatever is already open.
    pub fn fold(&mut self, outcome: &AlertOutcome) -> IncidentChange {
        if outcome.suppressed {
            self.record_suppressed(&outcome.alert)
        } else {
            self.record_fire(&outcome.alert)
        }
    }

    /// Fold a fired alert. Only `Page`-tier alerts become incidents —
    /// warn/log tiers are fatigue by definition (§4.1) and stay in the
    /// alert log.
    pub fn record_fire(&mut self, alert: &Alert) -> IncidentChange {
        if alert.severity != Severity::Page {
            return IncidentChange::Ignored;
        }
        match self.incidents.get_mut(&alert.rule_id) {
            Some(inc) if inc.phase != IncidentPhase::Resolved => {
                inc.fire_count += 1;
                inc.last_fire_ms = inc.last_fire_ms.max(alert.ts_ms);
                IncidentChange::Refired
            }
            prior => {
                // First fire for this key, or a re-fire after resolution:
                // a fresh incident cycle under the same key.
                let reopened = prior.is_some();
                self.incidents.insert(
                    alert.rule_id.clone(),
                    Incident {
                        key: alert.rule_id.clone(),
                        phase: IncidentPhase::Open,
                        severity: alert.severity,
                        subject: alert.metric.clone(),
                        opened_ms: alert.ts_ms,
                        last_fire_ms: alert.ts_ms,
                        resolved_ms: None,
                        fire_count: 1,
                        suppressed_count: 0,
                        detail: format!(
                            "{} = {} violated rule {}{}",
                            alert.metric,
                            alert.value,
                            alert.rule_id,
                            if reopened { " (reopened)" } else { "" },
                        ),
                    },
                );
                IncidentChange::Opened
            }
        }
    }

    /// Tally a cooldown-suppressed firing onto its open incident.
    pub fn record_suppressed(&mut self, alert: &Alert) -> IncidentChange {
        match self.incidents.get_mut(&alert.rule_id) {
            Some(inc) if inc.phase != IncidentPhase::Resolved => {
                inc.suppressed_count += 1;
                inc.last_fire_ms = inc.last_fire_ms.max(alert.ts_ms);
                IncidentChange::Suppressed
            }
            _ => IncidentChange::Ignored,
        }
    }

    /// Adopt an incident rebuilt from durable state (e.g. after a store
    /// restart), so subsequent fires under its key dedup into it instead
    /// of opening a duplicate cycle.
    pub fn adopt(&mut self, incident: Incident) {
        self.incidents.insert(incident.key.clone(), incident);
    }

    /// Mark an open incident as seen by a human.
    pub fn acknowledge(&mut self, key: &str) -> IncidentChange {
        match self.incidents.get_mut(key) {
            Some(inc) if inc.phase == IncidentPhase::Open => {
                inc.phase = IncidentPhase::Acknowledged;
                IncidentChange::Acknowledged
            }
            _ => IncidentChange::Ignored,
        }
    }

    /// Explicitly resolve an incident at `ts_ms`.
    pub fn resolve(&mut self, key: &str, ts_ms: u64) -> IncidentChange {
        match self.incidents.get_mut(key) {
            Some(inc) if inc.phase != IncidentPhase::Resolved => {
                inc.phase = IncidentPhase::Resolved;
                inc.resolved_ms = Some(ts_ms.max(inc.opened_ms));
                IncidentChange::Resolved
            }
            _ => IncidentChange::Ignored,
        }
    }

    /// Auto-resolve every unresolved incident whose last fire is at least
    /// the quiet period old; returns the resolved incidents. No-op when
    /// the quiet period is 0.
    pub fn resolve_quiet(&mut self, now_ms: u64) -> Vec<Incident> {
        if self.quiet_resolve_ms == 0 {
            return Vec::new();
        }
        let mut resolved = Vec::new();
        for inc in self.incidents.values_mut() {
            if inc.phase != IncidentPhase::Resolved
                && now_ms.saturating_sub(inc.last_fire_ms) >= self.quiet_resolve_ms
            {
                inc.phase = IncidentPhase::Resolved;
                inc.resolved_ms = Some(now_ms);
                resolved.push(inc.clone());
            }
        }
        resolved
    }

    /// Look up one incident.
    pub fn get(&self, key: &str) -> Option<&Incident> {
        self.incidents.get(key)
    }

    /// All incidents, keyed order.
    pub fn incidents(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.values()
    }

    /// Unresolved incidents, keyed order.
    pub fn open(&self) -> impl Iterator<Item = &Incident> {
        self.incidents
            .values()
            .filter(|i| i.phase != IncidentPhase::Resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(rule: &str, value: f64, ts_ms: u64) -> Alert {
        Alert {
            rule_id: rule.into(),
            metric: "accuracy".into(),
            value,
            ts_ms,
            severity: Severity::Page,
        }
    }

    #[test]
    fn fires_dedup_into_one_incident() {
        let mut m = IncidentManager::new(0);
        assert_eq!(m.record_fire(&page("acc", 0.5, 10)), IncidentChange::Opened);
        assert_eq!(
            m.record_fire(&page("acc", 0.4, 20)),
            IncidentChange::Refired
        );
        assert_eq!(
            m.record_suppressed(&page("acc", 0.4, 25)),
            IncidentChange::Suppressed
        );
        let inc = m.get("acc").unwrap();
        assert_eq!(inc.fire_count, 2);
        assert_eq!(inc.suppressed_count, 1);
        assert_eq!(inc.last_fire_ms, 25);
        assert_eq!(inc.burn_ms(110), 100, "burn counts from open while open");
        assert_eq!(m.open().count(), 1);
    }

    #[test]
    fn non_page_alerts_never_open_incidents() {
        let mut m = IncidentManager::new(0);
        let mut warn = page("latency", 400.0, 5);
        warn.severity = Severity::Warn;
        assert_eq!(m.record_fire(&warn), IncidentChange::Ignored);
        assert_eq!(m.incidents().count(), 0);
    }

    #[test]
    fn lifecycle_open_ack_resolve_reopen() {
        let mut m = IncidentManager::new(0);
        m.record_fire(&page("acc", 0.5, 10));
        assert_eq!(m.acknowledge("acc"), IncidentChange::Acknowledged);
        assert_eq!(
            m.acknowledge("acc"),
            IncidentChange::Ignored,
            "ack is idempotent-ish: second ack is a no-op"
        );
        // A fire on an acknowledged incident is still a re-fire.
        assert_eq!(
            m.record_fire(&page("acc", 0.3, 30)),
            IncidentChange::Refired
        );
        assert_eq!(m.resolve("acc", 100), IncidentChange::Resolved);
        let inc = m.get("acc").unwrap();
        assert_eq!(inc.resolved_ms, Some(100));
        assert_eq!(inc.burn_ms(9999), 90, "burn freezes at resolution");
        // Suppressions after resolution are ignored.
        assert_eq!(
            m.record_suppressed(&page("acc", 0.3, 110)),
            IncidentChange::Ignored
        );
        // A new fire reopens a fresh cycle under the same key.
        assert_eq!(
            m.record_fire(&page("acc", 0.2, 200)),
            IncidentChange::Opened
        );
        let inc = m.get("acc").unwrap();
        assert_eq!(inc.phase, IncidentPhase::Open);
        assert_eq!(inc.fire_count, 1, "counts reset on reopen");
        assert!(inc.detail.contains("reopened"));
    }

    #[test]
    fn quiet_period_auto_resolves() {
        let mut m = IncidentManager::new(1000);
        m.record_fire(&page("acc", 0.5, 0));
        m.record_fire(&page("lat", 0.5, 500));
        assert!(m.resolve_quiet(900).is_empty(), "neither quiet yet");
        let resolved = m.resolve_quiet(1200);
        assert_eq!(resolved.len(), 1, "only the 0-ts incident is quiet");
        assert_eq!(resolved[0].key, "acc");
        assert_eq!(m.get("acc").unwrap().resolved_ms, Some(1200));
        assert_eq!(m.open().count(), 1);
        // Disabled quiet period never resolves anything.
        let mut m = IncidentManager::new(0);
        m.record_fire(&page("acc", 0.5, 0));
        assert!(m.resolve_quiet(u64::MAX).is_empty());
    }

    #[test]
    fn fold_routes_by_suppression() {
        let mut m = IncidentManager::new(0);
        let fired = AlertOutcome {
            alert: page("acc", 0.5, 1),
            suppressed: false,
        };
        let held = AlertOutcome {
            alert: page("acc", 0.5, 2),
            suppressed: true,
        };
        assert_eq!(m.fold(&fired), IncidentChange::Opened);
        assert_eq!(m.fold(&held), IncidentChange::Suppressed);
        let inc = m.get("acc").unwrap();
        assert_eq!((inc.fire_count, inc.suppressed_count), (1, 1));
    }
}
