//! # mltrace-metrics
//!
//! The monitoring substrate of the mltrace reproduction: every quantity
//! the paper's `beforeRun`/`afterRun` triggers compute, implemented from
//! scratch —
//!
//! * streaming descriptive statistics including skewness/kurtosis
//!   ([`desc`]), streaming quantiles ([`quantile`]), histograms
//!   ([`histogram`]), reservoir samples ([`reservoir`]);
//! * distribution divergences — KL, JS, PSI, total variation
//!   ([`divergence`]);
//! * hypothesis tests — two-sample Kolmogorov–Smirnov, Welch t,
//!   chi-square — with p-values from in-crate special functions
//!   ([`stattests`], [`special`]);
//! * drift detectors combining all of the above ([`drift`]);
//! * ML performance metrics: confusion-matrix family, ROC-AUC, log loss,
//!   regression errors ([`mlmetrics`]);
//! * SLA definitions and fatigue-suppressing alerting ([`sla`], [`alert`]),
//!   folded into deduplicated incident lifecycles ([`incident`]).

#![warn(missing_docs)]

pub mod alert;
pub mod calibration;
pub mod changepoint;
pub mod desc;
pub mod divergence;
pub mod drift;
pub mod histogram;
pub mod incident;
pub mod mlmetrics;
pub mod plane;
pub mod quantile;
pub mod reservoir;
pub mod sla;
pub mod special;
pub mod stattests;
pub mod window;

pub use alert::{Alert, AlertManager, AlertOutcome, AlertRule, AlertStats, Severity};
pub use calibration::{expected_calibration_error, ReliabilityBin, ReliabilityCurve};
pub use changepoint::{Cusum, EwmaChart, Shift};
pub use desc::StreamingMoments;
pub use divergence::{
    histogram_kl, histogram_psi, js_divergence, kl_divergence, psi, total_variation,
};
pub use drift::{DriftConfig, DriftDetector, DriftFinding, DriftMethod};
pub use histogram::Histogram;
pub use incident::{Incident, IncidentChange, IncidentManager, IncidentPhase};
pub use mlmetrics::{brier_score, log_loss, mae, mse, r2, rmse, roc_auc, ConfusionMatrix};
pub use plane::{DriftScore, MonitorConfig, MonitorPlane, MonitorSummary, WindowRoll};
pub use quantile::{exact_median, exact_quantile, P2Quantile};
pub use reservoir::Reservoir;
pub use sla::{Aggregation, Comparator, Sla, SlaStatus};
pub use stattests::{chi_square_gof, ks_two_sample, welch_t_test, TestResult};
pub use window::{CountWindow, TimeWindow};
