//! Property-based tests on the core data structures and invariants.

use mltrace::metrics::{
    exact_quantile, js_divergence, kl_divergence, ks_two_sample, total_variation, Histogram,
    P2Quantile, StreamingMoments,
};
use mltrace::pipeline::{parse_csv, to_csv, Column, DataFrame};
use mltrace::provenance::{topo_order, trace_output, LineageGraph, TraceOptions};
use mltrace::store::artifact::{chunk_boundaries, ArtifactStore, ChunkerConfig};
use mltrace::store::{ComponentRunRecord, MemoryStore, Store, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Value ordering
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Str),
    ]
}

proptest! {
    /// total_cmp is a total order: antisymmetric and transitive on samples.
    #[test]
    fn value_ordering_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Transitivity: a<=b<=c implies a<=c.
        if ab != Greater && b.total_cmp(&c) != Greater {
            prop_assert_ne!(a.total_cmp(&c), Greater);
        }
        prop_assert_eq!(a.total_cmp(&a), Equal);
    }

    /// Serde round-trips preserve exact equality (incl. float bits via
    /// the float_roundtrip feature), except NaN (which serializes as null).
    #[test]
    fn value_serde_round_trip(v in arb_value()) {
        let is_nan = matches!(&v, Value::Float(f) if f.is_nan());
        prop_assume!(!is_nan);
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        prop_assert!(v.loose_eq(&back), "{v:?} vs {back:?}");
    }
}

// ---------------------------------------------------------------------
// Streaming statistics
// ---------------------------------------------------------------------

proptest! {
    /// Merging split accumulators equals accumulating the whole stream.
    #[test]
    fn moments_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let whole = StreamingMoments::from_slice(&xs);
        let mut left = StreamingMoments::from_slice(&xs[..split]);
        let right = StreamingMoments::from_slice(&xs[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs()
            < 1e-5 * (1.0 + whole.variance().abs()));
    }

    /// The P² estimate lies within the sample range and tracks the exact
    /// quantile's order-of-magnitude on moderately sized samples.
    #[test]
    fn p2_stays_within_range(xs in prop::collection::vec(-1e3f64..1e3, 5..500)) {
        let mut p = P2Quantile::median();
        for &x in &xs {
            p.push(x);
        }
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let v = p.value();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "median {v} outside [{lo}, {hi}]");
    }

    /// Exact quantiles are monotone in q.
    #[test]
    fn exact_quantiles_monotone(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(exact_quantile(&xs, lo_q) <= exact_quantile(&xs, hi_q) + 1e-12);
    }
}

// ---------------------------------------------------------------------
// Histograms and divergences
// ---------------------------------------------------------------------

proptest! {
    /// Histogram total equals finite input count; probabilities sum to 1.
    #[test]
    fn histogram_conservation(xs in prop::collection::vec(-1e4f64..1e4, 1..300)) {
        let h = Histogram::from_samples(&xs, 16);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let p = h.probabilities(0.5);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x > 0.0));
    }

    /// Divergences: non-negative; zero iff identical; JS symmetric and
    /// bounded by ln 2; TV within [0,1].
    #[test]
    fn divergence_axioms(raw in prop::collection::vec(0.01f64..1.0, 2..20)) {
        let total: f64 = raw.iter().sum();
        let p: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let mut shifted = raw.clone();
        shifted.rotate_left(1);
        let total2: f64 = shifted.iter().sum();
        let q: Vec<f64> = shifted.iter().map(|x| x / total2).collect();

        prop_assert!(kl_divergence(&p, &p) < 1e-12);
        prop_assert!(kl_divergence(&p, &q) >= 0.0);
        let js_pq = js_divergence(&p, &q);
        let js_qp = js_divergence(&q, &p);
        prop_assert!((js_pq - js_qp).abs() < 1e-12);
        prop_assert!((0.0..=std::f64::consts::LN_2 + 1e-12).contains(&js_pq));
        let tv = total_variation(&p, &q);
        prop_assert!((0.0..=1.0).contains(&tv));
    }

    /// KS statistic is symmetric and within [0, 1].
    #[test]
    fn ks_symmetry(
        a in prop::collection::vec(-100f64..100.0, 2..100),
        b in prop::collection::vec(-100f64..100.0, 2..100),
    ) {
        let r1 = ks_two_sample(&a, &b);
        let r2 = ks_two_sample(&b, &a);
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&r1.statistic));
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
    }
}

// ---------------------------------------------------------------------
// Artifact chunking
// ---------------------------------------------------------------------

proptest! {
    /// Chunks exactly partition any payload, and put/get round-trips.
    #[test]
    fn chunker_partitions(data in prop::collection::vec(any::<u8>(), 0..50_000)) {
        let cfg = ChunkerConfig::default();
        let bounds = chunk_boundaries(&data, &cfg);
        let mut pos = 0;
        for &(s, e) in &bounds {
            prop_assert_eq!(s, pos);
            pos = e;
        }
        prop_assert_eq!(pos, data.len());

        let store = ArtifactStore::default();
        let id = store.put(&data);
        prop_assert_eq!(store.get(&id).unwrap(), data);
    }

    /// Identical payloads get identical addresses; different payloads
    /// (virtually always) different ones.
    #[test]
    fn content_addressing(data in prop::collection::vec(any::<u8>(), 1..10_000)) {
        let store = ArtifactStore::default();
        let a = store.put(&data);
        let b = store.put(&data);
        prop_assert_eq!(&a, &b);
        let mut mutated = data.clone();
        mutated[0] = mutated[0].wrapping_add(1);
        let c = store.put(&mutated);
        prop_assert_ne!(&a, &c);
    }
}

// ---------------------------------------------------------------------
// Store + provenance invariants
// ---------------------------------------------------------------------

/// A random layered pipeline shape: each run consumes outputs of earlier
/// runs only, so the dependency graph is a DAG by construction.
fn arb_pipeline() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    // (component id, inputs as indexes of earlier runs)
    prop::collection::vec((0usize..5, prop::collection::vec(0usize..20, 0..3)), 1..25)
}

proptest! {
    /// Invariants: producer/consumer indexes agree with records; the
    /// reconstructed graph is a DAG; traces terminate and stay within
    /// depth bounds.
    #[test]
    fn store_graph_invariants(shape in arb_pipeline()) {
        let store = MemoryStore::new();
        let mut logged: Vec<(mltrace::store::RunId, String)> = Vec::new();
        for (i, (component, input_refs)) in shape.iter().enumerate() {
            let inputs: Vec<String> = input_refs
                .iter()
                .filter_map(|&r| logged.get(r % logged.len().max(1)).map(|(_, o)| o.clone()))
                .collect();
            let deps: Vec<mltrace::store::RunId> = input_refs
                .iter()
                .filter_map(|&r| logged.get(r % logged.len().max(1)).map(|(id, _)| *id))
                .collect();
            let output = format!("io-{i}");
            let id = store
                .log_run(ComponentRunRecord {
                    component: format!("comp-{component}"),
                    start_ms: i as u64 * 10,
                    end_ms: i as u64 * 10 + 5,
                    inputs: inputs.clone(),
                    outputs: vec![output.clone()],
                    dependencies: deps,
                    ..Default::default()
                })
                .unwrap();
            logged.push((id, output));
        }
        // Index agreement.
        for (id, output) in &logged {
            let producers = store.producers_of(output).unwrap();
            prop_assert!(producers.contains(id));
        }
        // DAG + trace termination.
        let graph = mltrace::core::build_graph(&store).unwrap();
        prop_assert!(topo_order(&graph).is_some());
        let (_, last_output) = logged.last().unwrap();
        if let Some(trace) = trace_output(&graph, last_output, TraceOptions::default()) {
            prop_assert!(trace.depth() <= 64);
            prop_assert!(trace.size() < 10_000);
        }
    }
}

// ---------------------------------------------------------------------
// CSV round trip
// ---------------------------------------------------------------------

proptest! {
    /// Arbitrary string frames survive CSV serialization (quoting,
    /// commas, embedded quotes).
    #[test]
    fn csv_string_round_trip(
        cells in prop::collection::vec("[ -~]{0,12}", 1..40),
    ) {
        // One string column. Empty cells are nulls by convention, and a
        // single-column all-null row serializes as a blank line (which the
        // parser skips), so this property uses non-empty cells only.
        prop_assume!(cells.iter().all(|s| !s.is_empty()));
        let values: Vec<Option<String>> = cells
            .iter()
            .map(|s| Some(s.replace(['\n', '\r'], " ")))
            .collect();
        let df = DataFrame::from_columns(vec![("note", Column::Str(values))]).unwrap();
        let text = to_csv(&df);
        let back = parse_csv(&text).unwrap();
        prop_assert_eq!(back.num_rows(), df.num_rows());
        // String-typed column comparison, unless inference promoted it
        // (possible when all cells parse as numbers/bools).
        if let (Ok(Column::Str(a)), Ok(Column::Str(b))) = (df.column("note"), back.column("note")) {
            prop_assert_eq!(a, b);
        }
    }
}

// ---------------------------------------------------------------------
// Secondary indexes: replay rebuild equals online maintenance
// ---------------------------------------------------------------------

/// Unique WAL path per proptest case, so shrinking reruns never collide.
fn wal_case_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CASE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mltrace-proptest-index-{}-{}.jsonl",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Remove the WAL family (active log, snapshot, segments) by prefix.
fn purge_wal_family(base: &std::path::Path) {
    let (Some(dir), Some(name)) = (base.parent(), base.file_name().and_then(|n| n.to_str())) else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().starts_with(name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

proptest! {
    // WAL cases do real file I/O; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The secondary indexes a cold open rebuilds during replay (from any
    /// snapshot/segment/tail mix, with deletions) are identical to the
    /// ones maintained online: same stats, same footprints, same routed
    /// scan results.
    #[test]
    fn replayed_indexes_match_online_maintenance(
        runs in prop::collection::vec((0usize..4, 0u64..1000, 0usize..3), 1..40),
        checkpoint_at in 0usize..40,
        delete_every in 0usize..7,
    ) {
        use mltrace::store::wal::WalStore;
        use mltrace::store::{IndexRoute, RunFilter, RunStatus};

        let statuses = [RunStatus::Success, RunStatus::Failed, RunStatus::TriggerFailed];
        let path = wal_case_path();
        let online = WalStore::open(&path).unwrap();
        let mut ids = Vec::new();
        for (i, &(component, start, status)) in runs.iter().enumerate() {
            if i == checkpoint_at {
                online.checkpoint().unwrap();
            }
            let id = online
                .log_run(ComponentRunRecord {
                    component: format!("comp-{component}"),
                    start_ms: start,
                    end_ms: start + 5,
                    status: statuses[status],
                    ..Default::default()
                })
                .unwrap();
            ids.push(id);
        }
        if delete_every > 0 {
            let victims: Vec<_> = ids.iter().copied().step_by(delete_every).collect();
            online.delete_runs(&victims).unwrap();
        }
        online.sync().unwrap();

        let filters = [
            RunFilter::all().with_component("comp-1"),
            RunFilter::all().with_status(RunStatus::Failed),
            RunFilter::all().started_at_or_after(250).started_at_or_before(750),
            RunFilter::all().with_id_at_or_after(2).with_id_at_or_before(30),
        ];
        let routes = [
            IndexRoute::Component,
            IndexRoute::Status,
            IndexRoute::StartTime,
            IndexRoute::IdRange,
        ];
        let online_stats = online.index_stats().unwrap().unwrap();
        let online_footprint = online.index_footprint().unwrap();
        let mut online_scans = Vec::new();
        for filter in &filters {
            for route in routes {
                online_scans.push(online.scan_runs_indexed(None, filter, None, route).unwrap());
            }
        }
        drop(online);

        let replayed = WalStore::open(&path).unwrap();
        prop_assert_eq!(replayed.index_stats().unwrap().unwrap(), online_stats);
        prop_assert_eq!(replayed.index_footprint().unwrap(), online_footprint);
        let mut at = 0;
        for filter in &filters {
            let reference = replayed.scan_runs(None, filter, None).unwrap();
            for route in routes {
                let routed = replayed.scan_runs_indexed(None, filter, None, route).unwrap();
                // Same routing decision and same rows as before the restart...
                prop_assert_eq!(&routed, &online_scans[at], "route {:?} on {:?}", route, filter);
                // ...and every applicable route agrees with the full scan.
                if let Some(rows) = routed {
                    prop_assert_eq!(&rows, &reference, "route {:?} on {:?}", route, filter);
                }
                at += 1;
            }
        }
        drop(replayed);
        purge_wal_family(&path);
    }
}

// ---------------------------------------------------------------------
// Monitoring plane: replay rebuild equals online maintenance
// ---------------------------------------------------------------------

proptest! {
    // WAL cases do real file I/O; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The monitoring plane a cold open rebuilds during WAL replay (from
    /// any snapshot/segment/tail mix) is bit-identical to the plane
    /// maintained online, for any batch split and any value mix —
    /// including non-finite points and an injected late shift large
    /// enough to make long cases score (and journal) real drift.
    #[test]
    fn replayed_monitor_plane_matches_online(
        raw in prop::collection::vec(
            prop_oneof![
                8 => -1e3f64..1e3,
                1 => Just(f64::NAN),
                1 => Just(f64::INFINITY),
            ],
            1..700,
        ),
        splits in prop::collection::vec(1usize..64, 1..20),
        checkpoint_at in 0usize..30,
    ) {
        use mltrace::store::wal::WalStore;
        use mltrace::store::MetricRecord;

        // Shift the tail hard so cases long enough to roll a second
        // window exercise the scored / incident-routing path too.
        let values: Vec<f64> = raw
            .iter()
            .enumerate()
            .map(|(i, &v)| if i >= 300 { v + 5_000.0 } else { v })
            .collect();

        let path = wal_case_path();
        let online = WalStore::open(&path).unwrap();
        let mut at = 0usize;
        let mut batch_no = 0usize;
        let mut split = splits.iter().cycle();
        while at < values.len() {
            if batch_no == checkpoint_at {
                online.checkpoint().unwrap();
            }
            let take = (*split.next().unwrap()).min(values.len() - at);
            let batch: Vec<MetricRecord> = values[at..at + take]
                .iter()
                .enumerate()
                .map(|(j, &v)| MetricRecord {
                    component: "comp".to_string(),
                    run_id: None,
                    name: "m".to_string(),
                    value: v,
                    ts_ms: (at + j) as u64,
                })
                .collect();
            online.log_metrics(batch).unwrap();
            at += take;
            batch_no += 1;
        }
        online.sync().unwrap();
        let expected = online.monitor_summaries().unwrap();
        let incidents = online.incidents().unwrap().len();
        drop(online);

        let replayed = WalStore::open(&path).unwrap();
        prop_assert_eq!(replayed.monitor_summaries().unwrap(), expected);
        prop_assert_eq!(replayed.incidents().unwrap().len(), incidents);
        drop(replayed);
        purge_wal_family(&path);
    }
}

// ---------------------------------------------------------------------
// Diagnosis determinism: rankings are a pure function of store state
// ---------------------------------------------------------------------

proptest! {
    // WAL cases do real file I/O; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Diagnosis rankings are a deterministic function of store state:
    /// the persisted rows survive a WAL reopen and a checkpointed replay
    /// bit-identical, and re-running the engine on the replayed state
    /// reproduces exactly the rows the online store ranked — the same
    /// discipline `replayed_monitor_plane_matches_online` holds the
    /// monitoring plane to.
    #[test]
    fn diagnosis_ranking_is_replay_deterministic(
        runs in prop::collection::vec(
            (0usize..5, 0u64..1_000, 0usize..3),
            3..40,
        ),
        checkpoint_at in 0usize..40,
    ) {
        use mltrace::core::diagnose_key;
        use mltrace::store::wal::WalStore;
        use mltrace::store::{EventSeverity, IncidentRecord, IncidentState, RunStatus};

        let statuses = [RunStatus::Success, RunStatus::Failed, RunStatus::TriggerFailed];
        let path = wal_case_path();
        let online = WalStore::open(&path).unwrap();
        // Chain-ish topology: component k's runs consume component k-1's
        // artifact, so upstream cones are non-trivial and vary by case.
        for (i, &(component, start, status)) in runs.iter().enumerate() {
            if i == checkpoint_at {
                online.checkpoint().unwrap();
            }
            online
                .log_run(ComponentRunRecord {
                    component: format!("comp-{component}"),
                    start_ms: start,
                    end_ms: start + 5,
                    inputs: if component == 0 {
                        Vec::new()
                    } else {
                        vec![format!("art-{}", component - 1)]
                    },
                    outputs: vec![format!("art-{component}")],
                    status: statuses[status],
                    ..Default::default()
                })
                .unwrap();
        }
        // A drift incident on a component that certainly has runs.
        let symptom = format!("comp-{}", runs.last().unwrap().0);
        let key = format!("drift:{symptom}/m");
        online.upsert_incident(IncidentRecord {
            key: key.clone(),
            state: IncidentState::Open,
            severity: EventSeverity::Page,
            subject: key.clone(),
            opened_ms: 500,
            last_fire_ms: 500,
            resolved_ms: None,
            fire_count: 1,
            suppressed_count: 0,
            burn_ms: 0,
            detail: "drift page".into(),
        }).unwrap();

        let first = diagnose_key(&online, &key).unwrap().rows;
        online.sync().unwrap();
        drop(online);

        // Reopen: replayed rows are bit-identical, and re-running the
        // engine on the replayed state reproduces them.
        let reopened = WalStore::open(&path).unwrap();
        prop_assert_eq!(reopened.diagnoses().unwrap(), first.clone());
        prop_assert_eq!(diagnose_key(&reopened, &key).unwrap().rows, first.clone());
        reopened.checkpoint().unwrap();
        reopened.sync().unwrap();
        drop(reopened);

        // Cold open from the snapshot + segments path: same again.
        let checkpointed = WalStore::open(&path).unwrap();
        prop_assert_eq!(checkpointed.diagnoses().unwrap(), first.clone());
        prop_assert_eq!(diagnose_key(&checkpointed, &key).unwrap().rows, first);
        drop(checkpointed);
        purge_wal_family(&path);
    }
}

// ---------------------------------------------------------------------
// Trace cycle-resistance under adversarial io reuse
// ---------------------------------------------------------------------

proptest! {
    /// Even with runs that consume their own outputs and shared pointer
    /// names, traces terminate.
    #[test]
    fn traces_terminate_with_io_reuse(edges in prop::collection::vec((0usize..6, 0usize..6), 1..30)) {
        let mut g = LineageGraph::new();
        for (i, (a, b)) in edges.iter().enumerate() {
            g.add_run(
                i as u64 + 1,
                &format!("c{}", i % 3),
                i as u64 * 7,
                false,
                &[format!("io-{a}")],
                &[format!("io-{b}")],
                &[],
            );
        }
        for target in 0..6 {
            if let Some(t) = trace_output(&g, &format!("io-{target}"), TraceOptions::default()) {
                prop_assert!(t.size() < 100_000);
            }
        }
    }
}
