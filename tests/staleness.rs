//! E6: the paper's three-part staleness definition (§3.1), verified
//! through the live pipeline: 30-day-old dependencies, not-freshest
//! dependencies, and failing user-defined tests.

use mltrace::core::{Commands, StalenessPolicy, StalenessReason};
use mltrace::store::MS_PER_DAY;
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn trained() -> TaxiPipeline {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(1000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    p
}

#[test]
fn old_dependency_staleness_after_thirty_days() {
    let mut p = trained();
    p.ingest_and_serve(200, Incident::None, ServeOptions::default())
        .unwrap();
    let cmds = Commands::new(p.ml());
    // Fresh: nothing stale.
    let entries = cmds.stale(Some("inference")).unwrap();
    assert!(entries[0].reasons.is_empty());
    // 31 days later the same run's dependencies are over the limit.
    p.clock().advance(31 * MS_PER_DAY);
    let entries = cmds.stale(Some("inference")).unwrap();
    assert!(entries[0]
        .reasons
        .iter()
        .any(|r| matches!(r, StalenessReason::OldDependency { age_days, .. } if *age_days > 30.0)));
}

#[test]
fn not_freshest_staleness_when_new_model_appears() {
    let mut p = trained();
    p.ingest_and_serve(200, Incident::None, ServeOptions::default())
        .unwrap();
    // A new featurizer + model are trained *after* the serving run.
    let df = p.ingest(1000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    // The serving-time featurizer run consumed featurizer.json, which now
    // has a fresher producer.
    let store = p.ml().store();
    let online = store
        .runs_for_component("featurize_online")
        .unwrap()
        .first()
        .copied()
        .unwrap();
    let run = store.run(online).unwrap().unwrap();
    let reasons = mltrace::core::staleness::evaluate_run(
        store.as_ref(),
        &run,
        &StalenessPolicy::default(),
        p.ml().now_ms(),
    )
    .unwrap();
    assert!(
        reasons
            .iter()
            .any(|r| matches!(r, StalenessReason::NotFreshest { .. })),
        "serving run used superseded artifacts: {reasons:?}"
    );
}

#[test]
fn failing_tests_staleness() {
    let mut p = trained();
    // A NULL-spiked batch fails the clean component's data test.
    p.ingest(300, Incident::NullSpike { fraction: 0.5 })
        .unwrap();
    let cmds = Commands::new(p.ml());
    let entries = cmds.stale(Some("clean")).unwrap();
    assert!(entries[0].reasons.iter().any(
        |r| matches!(r, StalenessReason::FailingTests { trigger } if trigger == "no_missing")
    ));
}

#[test]
fn policy_is_tunable_per_component() {
    let mut p = trained();
    p.ingest_and_serve(200, Incident::None, ServeOptions::default())
        .unwrap();
    p.clock().advance(10 * MS_PER_DAY);
    let store = p.ml().store();
    let run = store.latest_run("inference").unwrap().unwrap();
    // Default 30-day policy: fine at 10 days.
    let default_reasons = mltrace::core::staleness::evaluate_run(
        store.as_ref(),
        &run,
        &StalenessPolicy::default(),
        p.ml().now_ms(),
    )
    .unwrap();
    assert!(default_reasons
        .iter()
        .all(|r| !matches!(r, StalenessReason::OldDependency { .. })));
    // A 7-day policy flags the same run.
    let strict = StalenessPolicy {
        max_dependency_age_ms: 7 * MS_PER_DAY,
        ..Default::default()
    };
    let strict_reasons =
        mltrace::core::staleness::evaluate_run(store.as_ref(), &run, &strict, p.ml().now_ms())
            .unwrap();
    assert!(strict_reasons
        .iter()
        .any(|r| matches!(r, StalenessReason::OldDependency { .. })));
}
