//! End-to-end acceptance for the serve front-end: concurrent writers and
//! prepared-query readers against one server must (a) leave the store
//! row-for-row identical to the same workload applied embedded, (b)
//! actually coalesce — the `wal.group_commit_events` batch-size
//! histogram's mean exceeds 1 under concurrent writers, and (c) honor
//! the admission contract: a saturated reader connection collects `Busy`
//! while an independent writer connection keeps its throughput. A
//! multi-process leg drives real `mltrace serve` / `mltrace bench-load`
//! processes and checks graceful SIGINT shutdown.

use mltrace::client::load::{synthetic_metric, synthetic_run};
use mltrace::client::{Client, ClientError};
use mltrace::protocol::{Request, Response};
use mltrace::server::{ServeConfig, Server};
use mltrace::store::wal::DurabilityPolicy;
use mltrace::store::{ComponentRecord, ComponentRunRecord, Store, Value, WalStore};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WRITERS: usize = 4;
const READERS: usize = 2;
const RUNS_PER_WRITER: usize = 120;
const BATCH: usize = 6;

/// Bind a server on an OS-assigned port over a fresh OnSync WAL (the
/// serve-mode default) and run it on a background thread.
fn start_server(
    path: &std::path::Path,
    cfg: ServeConfig,
) -> (
    Arc<WalStore>,
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let store = Arc::new(WalStore::open_with(path, DurabilityPolicy::OnSync).unwrap());
    let server = Server::bind(store.clone(), cfg).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    (store, addr, handle)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    }
}

/// The canonical comparison key for a run row: everything the client
/// sent (ids are store-assigned and order-dependent, so excluded).
fn run_key(r: &ComponentRunRecord) -> (String, u64, u64, String, String, String) {
    (
        r.component.clone(),
        r.start_ms,
        r.end_ms,
        r.code_hash.clone(),
        r.notes.clone(),
        r.status.name().to_string(),
    )
}

fn all_run_keys(store: &dyn Store) -> Vec<(String, u64, u64, String, String, String)> {
    let mut keys: Vec<_> = store
        .run_ids()
        .unwrap()
        .into_iter()
        .filter_map(|id| store.run(id).unwrap())
        .map(|r| run_key(&r))
        .collect();
    keys.sort();
    keys
}

#[test]
fn concurrent_clients_match_embedded_workload_and_coalesce() {
    let dir = tempfile::tempdir().unwrap();
    let served_path = dir.path().join("served.wal");
    let (store, addr, server) = start_server(&served_path, serve_cfg());

    // One setup connection registers all components.
    let components: Vec<String> = (0..WRITERS).map(|i| format!("loadgen-{i}")).collect();
    {
        let mut setup = Client::connect(addr).unwrap();
        let n = setup
            .register_components(
                components
                    .iter()
                    .map(|c| ComponentRecord::named(c))
                    .collect(),
            )
            .unwrap();
        assert_eq!(n as usize, WRITERS);
    }

    // N writers × M prepared-query readers, each on its own connection.
    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut handles = Vec::new();
    for component in components.clone() {
        let done = done.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut seq = 0;
            while seq < RUNS_PER_WRITER {
                let n = BATCH.min(RUNS_PER_WRITER - seq);
                let runs: Vec<_> = (seq..seq + n)
                    .map(|s| synthetic_run(&component, s))
                    .collect();
                let ids = client.log_runs(runs).unwrap();
                assert_eq!(ids.len(), n);
                let metrics: Vec<_> = (0..2)
                    .map(|k| synthetic_metric(&component, seq, k))
                    .collect();
                assert_eq!(client.log_metrics(metrics).unwrap(), 2);
                seq += n;
            }
            done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
    }
    for r in 0..READERS {
        let components = components.clone();
        let done = done.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let stmt = client
                .prepare("SELECT count(*) AS n FROM component_runs WHERE component = ?")
                .unwrap();
            assert_eq!(stmt.params, 1);
            let mut turn = r;
            while done.load(std::sync::atomic::Ordering::Relaxed) < WRITERS {
                let component = &components[turn % components.len()];
                turn += 1;
                let rows = client
                    .exec(stmt, vec![Value::Str(component.clone())])
                    .unwrap();
                assert_eq!(rows.columns, vec!["n".to_string()]);
                assert_eq!(rows.rows.len(), 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Stop via the protocol; run() drains and fsyncs before returning.
    let mut control = Client::connect(addr).unwrap();
    control.shutdown_server().unwrap();
    server.join().unwrap().unwrap();

    // (b) Coalescing actually happened: the WAL's group-commit batch
    // sizes averaged above one event per fsync.
    let snap = store.telemetry().unwrap().snapshot();
    let gc = &snap.histograms["wal.group_commit_events"];
    let mean = gc.mean().unwrap();
    assert!(
        mean > 1.0,
        "group commit mean {mean:.2} — concurrent ingest did not coalesce"
    );
    assert!(snap.counters["server.requests_total"] > 0);
    assert!(
        snap.histograms["server.coalesce_batch_size"].count > 0,
        "ingest must flow through the coalescer"
    );
    drop(store);

    // (a) Row-for-row identity with the embedded equivalent, after a
    // cold reopen of the served store.
    let embedded_path = dir.path().join("embedded.wal");
    let embedded = WalStore::open_with(&embedded_path, DurabilityPolicy::OnSync).unwrap();
    for c in &components {
        embedded
            .register_component(ComponentRecord::named(c))
            .unwrap();
    }
    for component in &components {
        let mut seq = 0;
        while seq < RUNS_PER_WRITER {
            let n = BATCH.min(RUNS_PER_WRITER - seq);
            embedded
                .log_runs(
                    (seq..seq + n)
                        .map(|s| synthetic_run(component, s))
                        .collect(),
                )
                .unwrap();
            embedded
                .log_metrics(
                    (0..2)
                        .map(|k| synthetic_metric(component, seq, k))
                        .collect(),
                )
                .unwrap();
            seq += n;
        }
    }
    embedded.sync().unwrap();

    let reopened = WalStore::open(&served_path).unwrap();
    assert_eq!(all_run_keys(&reopened), all_run_keys(&embedded));
    let served_stats = reopened.stats().unwrap();
    let embedded_stats = embedded.stats().unwrap();
    assert_eq!(served_stats.runs, WRITERS * RUNS_PER_WRITER);
    assert_eq!(served_stats.runs, embedded_stats.runs);
    assert_eq!(served_stats.metric_points, embedded_stats.metric_points);
    assert_eq!(served_stats.components, embedded_stats.components);
}

/// Time how long one writer connection takes to push `batches` run
/// batches (each acknowledged, so this measures full round trips).
fn writer_elapsed(addr: SocketAddr, component: &str, batches: usize) -> Duration {
    let mut client = Client::connect(addr).unwrap();
    client
        .register_components(vec![ComponentRecord::named(component)])
        .unwrap();
    let started = Instant::now();
    for b in 0..batches {
        let runs: Vec<_> = (b * BATCH..(b + 1) * BATCH)
            .map(|s| synthetic_run(component, s))
            .collect();
        client.log_runs(runs).unwrap();
    }
    started.elapsed()
}

#[test]
fn saturated_reader_gets_busy_while_writers_keep_moving() {
    let dir = tempfile::tempdir().unwrap();
    let (store, addr, server) = start_server(
        &dir.path().join("busy.wal"),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            max_inflight: 1,
            ..ServeConfig::default()
        },
    );

    // Seed enough rows that a full-scan aggregate is slow relative to
    // the reader's pipelined send rate.
    {
        let mut seeder = Client::connect(addr).unwrap();
        seeder
            .register_components(vec![ComponentRecord::named("seed")])
            .unwrap();
        for b in 0..40 {
            let runs: Vec<_> = (b * 100..(b + 1) * 100)
                .map(|s| synthetic_run("seed", s))
                .collect();
            seeder.log_runs(runs).unwrap();
        }
    }

    // Uncontended baseline for the writer.
    let baseline = writer_elapsed(addr, "uncontended", 20);

    // Saturate a dedicated reader connection: pipeline a burst of heavy
    // queries without receiving. With --max-inflight 1, at most one can
    // hold the admission slot; the rest are answered Busy unexecuted.
    let mut reader = Client::connect(addr).unwrap();
    const BURST: usize = 24;
    let mut sent = Vec::new();
    for _ in 0..BURST {
        sent.push(
            reader
                .send(&Request::Query {
                    sql: "SELECT component, count(*), avg(duration_ms) FROM component_runs \
                          GROUP BY component"
                        .into(),
                })
                .unwrap(),
        );
    }

    // While the reader is saturated, the writer keeps writing on its own
    // connection — its admission gate is per-connection, and ingest
    // doesn't share the query pool.
    let contended = writer_elapsed(addr, "contended", 20);

    let mut busy = 0;
    let mut rows = 0;
    for _ in 0..BURST {
        let (id, resp) = reader.recv().unwrap();
        assert!(sent.contains(&id));
        match resp {
            Response::Busy { limit } => {
                assert_eq!(limit, 1);
                busy += 1;
            }
            Response::Rows { .. } => rows += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(
        busy > 0,
        "a saturated connection must see Busy ({rows} rows)"
    );
    assert!(busy + rows == BURST);
    assert!(store.telemetry().unwrap().snapshot().counters["server.busy_total"] >= busy as u64,);

    // Writer throughput within 2× of uncontended (plus absolute slack so
    // scheduler noise on tiny workloads can't flake the build).
    assert!(
        contended <= baseline * 2 + Duration::from_millis(500),
        "writer slowed beyond 2x under reader saturation: {contended:?} vs {baseline:?}"
    );

    let mut control = Client::connect(addr).unwrap();
    control.shutdown_server().unwrap();
    server.join().unwrap().unwrap();
}

/// Unknown prepared handles, bad arity, and malformed SQL all surface as
/// protocol errors without poisoning the connection.
#[test]
fn protocol_errors_leave_the_connection_usable() {
    let dir = tempfile::tempdir().unwrap();
    let (_store, addr, server) = start_server(&dir.path().join("errors.wal"), serve_cfg());
    let mut client = Client::connect(addr).unwrap();

    match client.exec(
        mltrace::client::StatementHandle {
            stmt: 999,
            params: 0,
        },
        vec![],
    ) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown statement")),
        other => panic!("expected server error, got {other:?}"),
    }
    match client.prepare("SELEKT nonsense") {
        Err(ClientError::Server(_)) => {}
        other => panic!("expected parse error, got {other:?}"),
    }
    let stmt = client
        .prepare("SELECT count(*) FROM runs WHERE component = ?")
        .unwrap();
    match client.exec(stmt, vec![]) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("takes 1 parameter"), "got: {msg}")
        }
        other => panic!("expected arity error, got {other:?}"),
    }
    // The connection still works after every failure.
    let rows = client.exec(stmt, vec![Value::Str("ghost".into())]).unwrap();
    assert_eq!(rows.rows.len(), 1);
    client.ping().unwrap();

    client.shutdown_server().unwrap();
    server.join().unwrap().unwrap();
}

/// Multi-process leg: a real `mltrace serve` process, several
/// `mltrace bench-load` client processes, then SIGINT — the server must
/// exit zero (graceful drain) and the WAL must hold every acknowledged
/// row.
#[cfg(unix)]
#[test]
fn serve_process_survives_bench_load_processes_and_sigint() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let dir = tempfile::tempdir().unwrap();
    let db = dir.path().join("proc.wal");
    let exe = env!("CARGO_BIN_EXE_mltrace");

    let mut serve = Command::new(exe)
        .args([
            "--db",
            db.to_str().unwrap(),
            "serve",
            "--addr",
            "127.0.0.1:0",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The serve banner (first stderr line) carries the bound address.
    let mut banner = String::new();
    let mut stderr = std::io::BufReader::new(serve.stderr.take().unwrap());
    stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split(" on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in serve banner: {banner:?}"))
        .to_string();
    // Keep draining stderr so the child never blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in stderr.lines() {});

    // Two client processes × 2 writers × 50 runs each, distinct prefixes.
    const PROCS: usize = 2;
    const PROC_WRITERS: usize = 2;
    const PROC_RUNS: usize = 50;
    let loads: Vec<_> = (0..PROCS)
        .map(|p| {
            Command::new(exe)
                .args([
                    "bench-load",
                    "--addr",
                    &addr,
                    "--writers",
                    &PROC_WRITERS.to_string(),
                    "--readers",
                    "1",
                    "--runs",
                    &PROC_RUNS.to_string(),
                    "--batch",
                    "5",
                    "--prefix",
                    &format!("proc{p}"),
                    "--retry-busy",
                ])
                .stdout(Stdio::piped())
                .spawn()
                .unwrap()
        })
        .collect();
    for child in loads {
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "bench-load failed: {out:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        let logged: usize = text
            .lines()
            .find(|l| l.starts_with("runs logged"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("no 'runs logged' line in report:\n{text}"));
        assert_eq!(logged, PROC_WRITERS * PROC_RUNS, "report:\n{text}");
    }

    // Graceful Ctrl-C: the server drains, fsyncs, and exits zero.
    let kill = Command::new("kill")
        .args(["-INT", &serve.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let status = serve.wait().unwrap();
    drain.join().unwrap();
    assert!(status.success(), "serve did not exit cleanly on SIGINT");

    // Every acknowledged row survived the shutdown fsync.
    let store = WalStore::open(&db).unwrap();
    let stats = store.stats().unwrap();
    assert_eq!(stats.runs, PROCS * PROC_WRITERS * PROC_RUNS);
    assert_eq!(stats.components, PROCS * PROC_WRITERS);
    // And the telemetry sidecar got the server's counters on exit (the
    // CI smoke asserts the same through `mltrace telemetry`).
    let sidecar = format!("{}.telemetry", db.display());
    let text = std::fs::read_to_string(&sidecar).unwrap();
    assert!(
        text.contains("server.requests_total"),
        "sidecar missing server counters:\n{text}"
    );
}
