//! E11: ad-hoc SQL over the observability log of a real pipeline run
//! (§4.2: "users can query the logs and metadata via SQL").

use mltrace::query::execute;
use mltrace::store::Value;
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn demo() -> TaxiPipeline {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(1000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    for i in 0..3 {
        let incident = if i == 1 {
            Incident::NullSpike { fraction: 0.5 }
        } else {
            Incident::None
        };
        p.ingest_and_serve(200, incident, ServeOptions::default())
            .unwrap();
    }
    p
}

#[test]
fn runs_per_component() {
    let p = demo();
    let store = p.ml().store();
    let r = execute(
        store.as_ref(),
        "SELECT component, count(*) AS runs FROM component_runs \
         GROUP BY component ORDER BY runs DESC, component",
    )
    .unwrap();
    assert_eq!(r.columns, vec!["component", "runs"]);
    // ingest/clean ran 4× (1 train batch + 3 serve batches).
    let ingest = r
        .rows
        .iter()
        .find(|row| row[0] == Value::from("ingest"))
        .unwrap();
    assert_eq!(ingest[1], Value::Int(4));
}

#[test]
fn find_failed_runs_by_status() {
    let p = demo();
    let r = execute(
        p.ml().store().as_ref(),
        "SELECT component, id, trigger_failures FROM component_runs \
         WHERE status = 'trigger_failed' ORDER BY id",
    )
    .unwrap();
    assert!(
        !r.rows.is_empty(),
        "the NULL-spike batch failed its trigger"
    );
    assert_eq!(r.rows[0][0], Value::from("clean"));
    assert_eq!(r.rows[0][2], Value::from(vec!["no_missing"]));
}

#[test]
fn metric_aggregation_and_windows() {
    let p = demo();
    let r = execute(
        p.ml().store().as_ref(),
        "SELECT name, count(*) AS points, min(value) AS lo, max(value) AS hi \
         FROM metrics WHERE component = 'inference' GROUP BY name ORDER BY name",
    )
    .unwrap();
    let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(names.contains(&"accuracy".to_string()));
    let acc = r
        .rows
        .iter()
        .find(|row| row[0] == Value::from("accuracy"))
        .unwrap();
    assert_eq!(acc[1], Value::Int(3));
    let lo = acc[2].as_f64().unwrap();
    let hi = acc[3].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&lo) && lo <= hi);
}

#[test]
fn lineage_ish_queries_on_io_pointers() {
    let p = demo();
    let r = execute(
        p.ml().store().as_ref(),
        "SELECT name, ptype FROM io_pointers WHERE name LIKE 'tip_model%'",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 1);
    // `.json` infers as a data payload (extension-based inference).
    assert_eq!(r.rows[0][1], Value::from("data"));
    // Artifact-backed pointers are queryable by address presence.
    let r = execute(
        p.ml().store().as_ref(),
        "SELECT count(*) FROM io_pointers WHERE artifact IS NOT NULL",
    )
    .unwrap();
    assert!(r.rows[0][0].as_i64().unwrap() >= 2, "featurizer + model");
}

#[test]
fn slow_run_hunt_with_arithmetic() {
    let p = demo();
    let r = execute(
        p.ml().store().as_ref(),
        "SELECT component, duration_ms FROM component_runs \
         WHERE end_ms - start_ms >= 0 ORDER BY duration_ms DESC, component LIMIT 5",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 5);
    // Render produces the Figure-4-style table.
    let text = r.render();
    assert!(text.lines().count() >= 7);
    assert!(text.contains("duration_ms"));
}
