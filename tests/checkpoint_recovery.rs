//! Integration coverage for checkpointed startup: automatic snapshot
//! triggers on the ingest path, the acceptance criterion that a cold open
//! after a checkpoint replays only post-checkpoint events (asserted via
//! telemetry), torn-tail recovery on top of a snapshot, and journal
//! following across a checkpoint's segment rollover.

use mltrace::store::wal::JournalFollower;
use mltrace::store::{
    CheckpointPolicy, ComponentRunRecord, DurabilityPolicy, EventKind, EventSeverity,
    ObservabilityEvent, Store, WalOptions, WalStore,
};

fn run(component: &str, i: u64) -> ComponentRunRecord {
    ComponentRunRecord {
        component: component.into(),
        start_ms: i,
        end_ms: i + 1,
        inputs: vec!["features.csv".into()],
        outputs: vec![format!("preds-{i}.csv")],
        ..Default::default()
    }
}

fn note(detail: &str) -> ObservabilityEvent {
    ObservabilityEvent::new(EventKind::RunStarted, EventSeverity::Info, 1_000)
        .component("ingest")
        .detail(detail)
}

/// The event-count threshold fires checkpoints automatically on the
/// group-commit path, and a cold reopen replays only the events logged
/// after the last one — the PR's headline acceptance criterion.
#[test]
fn auto_checkpoint_bounds_cold_open_replay() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("auto.wal");
    let options = WalOptions {
        durability: DurabilityPolicy::OnSync,
        checkpoint: CheckpointPolicy {
            every_events: 50,
            every_bytes: 0,
        },
        ..Default::default()
    };
    {
        let store = WalStore::open_with_options(&path, options).unwrap();
        for i in 0..120 {
            store.log_run(run("ingest", i)).unwrap();
        }
        store.sync().unwrap();
        // Runs 1..=50 trip the first checkpoint; its journal line plus runs
        // 51..=99 trip the second; 21 runs and one journal line remain.
        let snap = store.telemetry().unwrap().snapshot();
        assert_eq!(
            snap.counters["wal.checkpoints_total"], 2,
            "event threshold of 50 over 120 runs"
        );
        let fp = store.footprint().unwrap();
        assert!(fp.snapshot_bytes > 0, "snapshot on disk");
        assert_eq!(fp.segment_count, 2, "one sealed segment per checkpoint");
        assert_eq!(fp.events_since_checkpoint, 22);
    }
    let store = WalStore::open_with_options(&path, options).unwrap();
    assert_eq!(store.stats().unwrap().runs, 120, "no state lost");
    let snap = store.telemetry().unwrap().snapshot();
    assert_eq!(snap.counters["wal.snapshot_loads_total"], 1);
    assert_eq!(
        snap.counters["wal.replay_events_total"], 22,
        "cold open must replay only the post-checkpoint tail"
    );
    assert_eq!(snap.histograms["wal.recovery"].count, 1);
    // The journal records both checkpoints.
    let written = store
        .scan_events(
            None,
            &mltrace::store::EventFilter::all().with_kind(EventKind::CheckpointWritten),
            None,
        )
        .unwrap();
    assert_eq!(written.len(), 2);
}

/// A torn tail on top of a snapshot: recovery truncates the partial record
/// in the active log while the checkpointed prefix loads from the snapshot
/// untouched.
#[test]
fn torn_tail_after_checkpoint_recovers_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("torn.wal");
    let options = WalOptions {
        durability: DurabilityPolicy::EveryEvent,
        checkpoint: CheckpointPolicy::disabled(),
        ..Default::default()
    };
    {
        let store = WalStore::open_with_options(&path, options).unwrap();
        for i in 0..30 {
            store.log_run(run("train", i)).unwrap();
        }
        store.checkpoint().unwrap();
        for i in 30..33 {
            store.log_run(run("train", i)).unwrap();
        }
        store.sync().unwrap();
    }
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"event\":\"Run\",\"rec\":{\"comp").unwrap();
    }
    let store = WalStore::open_with_options(&path, options).unwrap();
    assert!(store.recovered(), "torn tail must be truncated");
    assert!(!store.snapshot_fallback(), "snapshot itself is intact");
    assert_eq!(store.stats().unwrap().runs, 33);
    // The store stays writable after recovery.
    store.log_run(run("train", 33)).unwrap();
    store.sync().unwrap();
    assert_eq!(store.stats().unwrap().runs, 34);
}

/// `tail --follow` stays correct across a checkpoint: events written to
/// the log that gets sealed mid-follow, the checkpoint's own journal line,
/// and events in the fresh active log all arrive, in order, and compaction
/// between polls does not wedge the follower.
#[test]
fn journal_follower_crosses_segment_rollover() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("follow.wal");
    let options = WalOptions {
        durability: DurabilityPolicy::EveryEvent,
        checkpoint: CheckpointPolicy::disabled(),
        ..Default::default()
    };
    let store = WalStore::open_with_options(&path, options).unwrap();
    store.log_events(vec![note("before-follow")]).unwrap();

    let mut follower = JournalFollower::from_end(&path).unwrap();
    assert!(follower.poll().unwrap().is_empty(), "starts at end");

    store.log_events(vec![note("plain")]).unwrap();
    let got = follower.poll().unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].detail, "plain");

    // An event lands in the active log, which a checkpoint then seals;
    // the next poll must drain the rest of that (now renamed) segment,
    // then continue into the fresh active log.
    store.log_events(vec![note("sealed-mid-follow")]).unwrap();
    store.checkpoint().unwrap();
    store.log_events(vec![note("after-rollover")]).unwrap();
    let got = follower.poll().unwrap();
    let details: Vec<&str> = got.iter().map(|e| e.detail.as_str()).collect();
    assert_eq!(got[0].detail, "sealed-mid-follow", "order: {details:?}");
    assert_eq!(
        got[1].kind,
        EventKind::CheckpointWritten,
        "order: {details:?}"
    );
    assert_eq!(got[2].detail, "after-rollover", "order: {details:?}");
    assert_eq!(got.len(), 3, "order: {details:?}");

    // Compacting the drained segment away must not disturb the follower;
    // compaction itself leaves a journal line the follower picks up.
    let gone = store.compact_segments().unwrap();
    assert_eq!(gone.segments_deleted, 1);
    store.log_events(vec![note("after-compaction")]).unwrap();
    let got = follower.poll().unwrap();
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].kind, EventKind::WalCompacted);
    assert_eq!(got[1].detail, "after-compaction");
}

/// `rewrite()` = checkpoint + compaction: after deletions the on-disk
/// footprint shrinks to a snapshot of the surviving state plus a nearly
/// empty active log, and the reported before/after totals reflect it.
#[test]
fn rewrite_reports_reclaimed_footprint() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("rewrite.wal");
    let store = WalStore::open(&path).unwrap();
    let mut ids = Vec::new();
    for i in 0..200 {
        ids.push(store.log_run(run("etl", i)).unwrap());
    }
    store.delete_runs(&ids[..190]).unwrap();
    store.sync().unwrap();
    let (before, after) = store.rewrite().unwrap();
    assert!(
        after < before,
        "rewrite must shrink the footprint: {before} -> {after}"
    );
    let fp = store.footprint().unwrap();
    assert_eq!(fp.segment_count, 0, "superseded segments deleted");
    assert!(fp.snapshot_bytes > 0);
    assert_eq!(fp.total_bytes(), after);
    assert_eq!(store.stats().unwrap().runs, 10);
}
