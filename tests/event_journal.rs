//! End-to-end spine for the observability journal: a faulty component run
//! emits structured events, a Page-tier alert folds into an incident, the
//! journal and incidents are queryable through the pushdown SQL path
//! (row-for-row identical to the naive executor), the component-run tree
//! exports as a loadable Chrome / OTLP trace, and all of it survives a WAL
//! reopen across the process boundary.

use mltrace::core::{export_trace, Mltrace, PipelineMonitor, RunSpec, TraceFormat};
use mltrace::metrics::{AlertRule, Comparator, Severity};
use mltrace::query::{execute, execute_query, execute_query_unoptimized, parse};
use mltrace::store::{
    EventFilter, EventKind, IncidentState, ManualClock, MemoryStore, RunId, Store, WalStore,
};
use std::sync::Arc;

fn accuracy_floor() -> AlertRule {
    AlertRule {
        id: "accuracy-floor".into(),
        metric: "accuracy".into(),
        comparator: Comparator::Gte,
        threshold: 0.9,
        severity: Severity::Page,
        cooldown_ms: 0,
    }
}

/// Drive a three-component pipeline to a failure, page on the accuracy
/// drop, and return the id of the failed run. Every step below leaves its
/// mark in the journal.
fn drive_faulty_pipeline(store: Arc<dyn Store>) -> RunId {
    let clock = ManualClock::starting_at(1_000);
    let ml = Mltrace::with_store(store.clone(), clock.clone());
    ml.run("etl", RunSpec::new().output("clean.csv"), |_| Ok(()))
        .unwrap();
    clock.advance(50);
    ml.run(
        "train",
        RunSpec::new().input("clean.csv").output("model.bin"),
        |_| Ok(()),
    )
    .unwrap();
    clock.advance(50);
    let failed = ml.run(
        "infer",
        RunSpec::new().input("model.bin").output("preds.csv"),
        |_| Err::<(), _>("feature column went all-NaN".into()),
    );
    assert!(failed.is_err(), "body failure surfaces as an error");

    let mut mon = PipelineMonitor::new(0);
    mon.add_rule(accuracy_floor());
    let fired = mon
        .observe(store.as_ref(), "infer", "accuracy", 0.42, 1_200)
        .unwrap();
    assert_eq!(fired.len(), 1, "accuracy below floor must page");

    let failed_ev = store
        .scan_events(
            None,
            &EventFilter::all().with_kind(EventKind::RunFailed),
            None,
        )
        .unwrap()
        .pop()
        .expect("the failed run was journaled");
    failed_ev.run_id.expect("failure event is stamped")
}

/// Assert the full journal contract against a store that has been driven
/// through `drive_faulty_pipeline`.
fn assert_journal_contract(store: &dyn Store, failed_run: RunId) {
    // ---- emission: the run lifecycle and the alert fold are all there ----
    let events = store.scan_events(None, &EventFilter::all(), None).unwrap();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    for required in [
        "run_started",
        "run_finished",
        "run_failed",
        "alert_fired",
        "incident_opened",
    ] {
        assert!(kinds.contains(&required), "missing {required} in {kinds:?}");
    }
    assert!(
        events.windows(2).all(|w| w[0].id < w[1].id),
        "event ids stay strictly monotonic in emission order"
    );
    let failed_ev = events
        .iter()
        .find(|e| e.kind == EventKind::RunFailed)
        .unwrap();
    assert_eq!(failed_ev.detail, "feature column went all-NaN");
    assert_eq!(failed_ev.run_id, Some(failed_run));

    // ---- incident fold: one open Page incident under the rule's key ----
    let incidents = store.incidents().unwrap();
    assert_eq!(incidents.len(), 1);
    assert_eq!(incidents[0].key, "accuracy-floor");
    assert_eq!(incidents[0].state, IncidentState::Open);
    assert_eq!(incidents[0].fire_count, 1);

    // ---- SQL: events/incidents through the planner, pushdown == naive ----
    for sql in [
        "SELECT id, kind, severity, component FROM events WHERE kind = 'run_failed'",
        "SELECT * FROM events WHERE severity = 'page' ORDER BY ts_ms",
        "SELECT * FROM events WHERE component = 'infer' AND id >= 2 LIMIT 3",
        "SELECT kind, count(*) FROM events GROUP BY kind",
        "SELECT key, state, fire_count FROM incidents WHERE state = 'open'",
    ] {
        let q = parse(sql).unwrap();
        let fast = execute_query(store, &q).unwrap();
        let slow = execute_query_unoptimized(store, &q).unwrap();
        assert_eq!(fast, slow, "pushdown diverged from reference for: {sql}");
    }
    let r = execute(
        store,
        "SELECT component FROM events WHERE kind = 'run_failed'",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 1, "exactly one failure event");
    let r = execute(store, "SELECT key FROM incidents WHERE resolved_ms IS NULL").unwrap();
    assert_eq!(r.rows.len(), 1, "the incident is still burning");

    // ---- trace export: the failed run's dependency tree, both formats ----
    let chrome = export_trace(store, failed_run, TraceFormat::Chrome).unwrap();
    assert!(chrome.contains("\"traceEvents\""));
    for component in ["infer", "train", "etl"] {
        assert!(
            chrome.contains(component),
            "chrome trace must contain the {component} lane"
        );
    }
    let otlp = export_trace(store, failed_run, TraceFormat::OtlpJson).unwrap();
    assert!(otlp.contains("resourceSpans"));
    assert!(
        otlp.contains("parentSpanId"),
        "dependency edges become span parents"
    );
}

#[test]
fn faulty_run_flows_from_journal_to_incident_to_sql_to_trace() {
    let store = Arc::new(MemoryStore::new());
    let failed_run = drive_faulty_pipeline(store.clone());
    assert_journal_contract(store.as_ref(), failed_run);
}

#[test]
fn journal_and_incidents_survive_wal_reopen() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("journal.wal");
    let failed_run = {
        let store = Arc::new(WalStore::open(&path).unwrap());
        let id = drive_faulty_pipeline(store.clone());
        store.sync().unwrap();
        id
    };
    // A fresh process sees the identical journal, incident, SQL rows, and
    // trace — the whole contract, replayed from disk.
    let store = WalStore::open(&path).unwrap();
    assert!(!store.recovered(), "clean shutdown leaves no torn tail");
    assert_journal_contract(&store, failed_run);
}
