//! The paper's four observability query patterns (§2.2, §4.2), each
//! reproduced end to end on the taxi demo pipeline:
//!
//! * Example 4.1 — component run-level query: a sudden accuracy drop is
//!   traced to an abnormal NULL fraction in a raw column.
//! * Example 4.2 — component history query: drift metrics over the
//!   inference history reveal when to retrain.
//! * Example 4.3 — cross-component query: offline tests propagated to the
//!   online featurizer expose train/serve skew.
//! * Example 4.4 — cross-component history query: slicing bad outputs and
//!   ranking their traces surfaces a stale preprocessor.

use mltrace::core::{Commands, Mltrace, RunSpec};
use mltrace::store::{RunStatus, Value, MS_PER_DAY};
use mltrace::taxi::{DriftProfile, Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn trained(config: TaxiConfig) -> TaxiPipeline {
    let mut p = TaxiPipeline::new(config);
    let df = p.ingest(2000, Incident::None).unwrap();
    let report = p.train(&df, true).unwrap();
    assert!(report.test_accuracy > 0.6, "sane model");
    p
}

/// Example 4.1: "Why is there a large, sudden drop in accuracy?"
///
/// The user traces outputs of the most recent inference run, inspects the
/// trigger results of each run in the trace, and finds the NULL spike in
/// the raw data.
#[test]
fn example_4_1_null_spike_found_via_run_level_query() {
    let mut p = trained(TaxiConfig::default());

    // Healthy batch, then the incident batch.
    let healthy = p
        .ingest_and_serve(400, Incident::None, ServeOptions::default())
        .unwrap();
    let incident = p
        .ingest_and_serve(
            400,
            Incident::NullSpike { fraction: 0.45 },
            ServeOptions::default(),
        )
        .unwrap();

    // Debugging session: trace the most recent prediction output.
    let mut cmds = Commands::new(p.ml());
    let trace = cmds.trace(&incident.outputs[0]).unwrap();

    // Walk the trace, inspecting each run's trigger outcomes — the clean
    // run in the lineage shows the failed missing-value check.
    let mut found_null_failure = None;
    trace.visit(&mut |node| {
        if let Ok(run) = cmds.inspect(node.run_id) {
            for t in &run.triggers {
                if !t.passed && t.trigger == "no_missing" {
                    found_null_failure = Some((run.component.clone(), t.values.clone()));
                }
            }
        }
    });
    let (component, values) = found_null_failure.expect("trace must expose the NULL spike");
    assert_eq!(component, "clean");
    let fraction = values.get("null_fraction").and_then(Value::as_f64).unwrap();
    assert!(fraction > 0.35, "abnormally high nulls, got {fraction}");

    // The healthy batch's trace shows no such failure.
    let trace = cmds.trace(&healthy.outputs[0]).unwrap();
    let mut clean_failures = 0;
    trace.visit(&mut |node| {
        if let Ok(run) = cmds.inspect(node.run_id) {
            clean_failures += run.triggers.iter().filter(|t| !t.passed).count();
        }
    });
    assert_eq!(clean_failures, 0, "healthy trace is clean");
}

/// Example 4.2: "When should I retrain my model?"
///
/// The user performs a component-history query on the inference component,
/// watching drift scores and accuracy decline as covariate shift
/// accumulates, and picks the retraining point where the SLA would break.
#[test]
fn example_4_2_history_query_reveals_degradation() {
    // Progressive covariate shift (longer trips) plus concept drift
    // (tipping behaviour itself changes).
    let mut p = trained(TaxiConfig {
        drift: DriftProfile {
            distance_shift_per_trip: 8e-5,
            tip_shift_per_trip: 1e-4,
            ..Default::default()
        },
        ..Default::default()
    });

    // A month of weekly serving batches over drifting data.
    let mut accuracies = Vec::new();
    for _week in 0..8 {
        let report = p
            .ingest_and_serve(800, Incident::None, ServeOptions::default())
            .unwrap();
        accuracies.push(report.accuracy);
        p.clock().advance(7 * MS_PER_DAY);
    }

    // History query: the accuracy metric series for the inference
    // component, plus the drift score series logged by its trigger.
    let store = p.ml().store();
    let acc_series: Vec<f64> = store
        .metrics("inference", "accuracy")
        .unwrap()
        .into_iter()
        .map(|m| m.value)
        .collect();
    let drift_series: Vec<f64> = store
        .metrics("inference", "drift_ks:predictions")
        .unwrap()
        .into_iter()
        .map(|m| m.value)
        .collect();
    assert_eq!(acc_series.len(), 8);
    assert_eq!(drift_series.len(), 8);

    // Degradation: late accuracy below early accuracy; drift grows.
    let early_acc = acc_series[..2].iter().sum::<f64>() / 2.0;
    let late_acc = acc_series[6..].iter().sum::<f64>() / 2.0;
    assert!(
        late_acc < early_acc - 0.03,
        "accuracy should degrade: early {early_acc:.3}, late {late_acc:.3}"
    );
    let early_drift = drift_series[..2].iter().sum::<f64>() / 2.0;
    let late_drift = drift_series[6..].iter().sum::<f64>() / 2.0;
    assert!(
        late_drift > early_drift,
        "drift score should grow: {early_drift:.3} → {late_drift:.3}"
    );

    // The user's remedy: retrain on fresh data restores accuracy.
    let fresh = p.ingest(2000, Incident::None).unwrap();
    let retrained = p.train(&fresh, true).unwrap();
    let after = p
        .ingest_and_serve(800, Incident::None, ServeOptions::default())
        .unwrap();
    assert!(
        after.accuracy > late_acc,
        "retraining should recover: {:.3} → {:.3} (train acc {:.3})",
        late_acc,
        after.accuracy,
        retrained.test_accuracy
    );
}

/// Example 4.3: "Why is the accuracy much lower than expected right after
/// deployment?"
///
/// Cross-component query: the offline featurizer's logged profile is
/// compared against the online component's; the skewed online path fails
/// the propagated consistency test.
#[test]
fn example_4_3_cross_component_query_exposes_serve_skew() {
    let mut p = trained(TaxiConfig::default());

    // Deployment: online feature code disagrees (unit mismatch).
    let df = p.ingest(600, Incident::None).unwrap();
    let skewed = p
        .serve(
            &df,
            ServeOptions {
                incident: Incident::ServeSkew { scale: 500.0 },
                per_trip_outputs: false,
            },
        )
        .unwrap();

    // The cross-component consistency trigger failed on the online side.
    let store = p.ml().store();
    let online = store.latest_run("featurize_online").unwrap().unwrap();
    assert_eq!(online.status, RunStatus::TriggerFailed);
    let failure = online
        .triggers
        .iter()
        .find(|t| t.trigger == "offline_online_consistency" && !t.passed)
        .expect("consistency check must fail");
    let gap = failure.values.get("gap").and_then(Value::as_f64).unwrap();
    assert!(gap > 0.5, "large online/offline gap, got {gap}");

    // The offline component, by contrast, is healthy.
    let offline = store.latest_run("featurize_offline").unwrap().unwrap();
    assert!(offline.triggers.iter().all(|t| t.passed));

    // And the deployment's accuracy really did crater relative to offline
    // expectations (the symptom that started the investigation).
    let offline_test_acc = store
        .metrics("train", "test_accuracy")
        .unwrap()
        .last()
        .unwrap()
        .value;
    assert!(
        skewed.accuracy < offline_test_acc - 0.03,
        "deployed {:.3} vs offline {:.3}",
        skewed.accuracy,
        offline_test_acc
    );
}

/// Example 4.4: "Why are these clients complaining about the predictions
/// we gave them over the last several months?"
///
/// Cross-component history query: slice the complained-about outputs,
/// aggregate their traces, and rank ComponentRuns by frequency — the top
/// hit is a preprocessing component that hasn't been refit in six weeks.
#[test]
fn example_4_4_slice_query_finds_stale_preprocessor() {
    let mut p = trained(TaxiConfig {
        drift: DriftProfile {
            distance_shift_per_trip: 6e-5,
            ..Default::default()
        },
        ..Default::default()
    });

    // Six weeks pass; the model is retrained weekly but the featurizer is
    // never refit (the stale preprocessor).
    for _week in 0..6 {
        p.clock().advance(7 * MS_PER_DAY);
        let df = p.ingest(1200, Incident::None).unwrap();
        p.train(&df, false).unwrap();
    }

    // Clients receive predictions (per-trip outputs so they can complain
    // about specific ones).
    let served = p
        .ingest_and_serve(
            30,
            Incident::None,
            ServeOptions {
                incident: Incident::None,
                per_trip_outputs: true,
            },
        )
        .unwrap();

    // The complaints: clients flag their predictions for review.
    let mut cmds = Commands::new(p.ml());
    for output in &served.outputs[..10] {
        cmds.flag(output).unwrap();
    }

    // The review: aggregate traces of the flagged slice, rank runs.
    let review = cmds.review_flagged().unwrap();
    assert_eq!(review.flagged.len(), 10);
    assert!(!review.ranked.is_empty());
    // Shared upstream runs have frequency 10; among them must be the
    // featurize_offline run whose fitted artifact everything depends on.
    let top_frequency = review.ranked[0].frequency;
    assert_eq!(
        top_frequency, 10,
        "shared upstream runs appear in every trace"
    );
    let shared: Vec<&str> = review
        .ranked
        .iter()
        .take_while(|r| r.frequency == top_frequency)
        .map(|r| r.component.as_str())
        .collect();
    assert!(
        shared.contains(&"featurize_offline"),
        "stale preprocessor among top-ranked: {shared:?}"
    );

    // Staleness check confirms: the inference component's dependencies
    // are weeks old.
    let stale = cmds.stale(Some("featurize_offline")).unwrap();
    let featurize_stale = &stale[0];
    assert!(
        !featurize_stale.reasons.is_empty(),
        "featurizer runs on a six-week-old artifact"
    );
}

/// The four categories also hold for ad-hoc instrumentation, not just the
/// taxi demo: a run-level query on a hand-wrapped component.
#[test]
fn run_level_query_on_custom_component() {
    let ml = Mltrace::in_memory();
    let report = ml
        .run(
            "adhoc",
            RunSpec::new()
                .input("upstream.csv")
                .output("downstream.csv")
                .capture("row_count", 512i64)
                .notes("manual experiment"),
            |ctx| {
                ctx.log_metric("rows", 512.0);
                Ok("done")
            },
        )
        .unwrap();
    let cmds = Commands::new(&ml);
    let run = cmds.inspect(report.run_id.0).unwrap();
    assert_eq!(run.notes, "manual experiment");
    assert_eq!(run.inputs, vec!["upstream.csv"]);
    let history = cmds.history("adhoc", 5).unwrap();
    assert_eq!(history.entries.len(), 1);
    assert_eq!(
        history.entries[0].metrics,
        vec![("rows".to_string(), 512.0)]
    );
}
