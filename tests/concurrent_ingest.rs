//! Concurrent-ingest coverage for the sharded store: N writer threads
//! logging runs and metrics through one shared store must yield unique,
//! dense run ids, internally-consistent indexes, and (for the WAL store)
//! an identical state after `sync()` + crash-free reopen — under every
//! durability policy.

use mltrace::store::{
    ComponentRunRecord, DurabilityPolicy, MemoryStore, MetricRecord, RunId, Store, WalStore,
};

const THREADS: u64 = 4;
const RUNS_PER_THREAD: u64 = 250;

fn record(thread: u64, i: u64) -> ComponentRunRecord {
    ComponentRunRecord {
        component: format!("writer-{thread}"),
        start_ms: thread * 1_000_000 + i,
        end_ms: thread * 1_000_000 + i + 1,
        inputs: vec!["shared-features.csv".to_string()],
        outputs: vec![format!("pred-{thread}-{i}")],
        ..Default::default()
    }
}

/// Log `RUNS_PER_THREAD` runs (collecting the assigned ids) plus a metric
/// point every tenth run.
fn writer_workload(store: &dyn Store, thread: u64) -> Vec<RunId> {
    let mut ids = Vec::with_capacity(RUNS_PER_THREAD as usize);
    for i in 0..RUNS_PER_THREAD {
        let id = store.log_run(record(thread, i)).unwrap();
        ids.push(id);
        if i % 10 == 0 {
            store
                .log_metric(MetricRecord {
                    component: format!("writer-{thread}"),
                    run_id: Some(id),
                    name: "latency_ms".into(),
                    value: i as f64,
                    ts_ms: thread * 1_000_000 + i,
                })
                .unwrap();
        }
    }
    ids
}

/// Batched variant: chunks of 50 through `log_runs`.
fn batched_writer_workload(store: &dyn Store, thread: u64) -> Vec<RunId> {
    let mut ids = Vec::with_capacity(RUNS_PER_THREAD as usize);
    for chunk_start in (0..RUNS_PER_THREAD).step_by(50) {
        let batch: Vec<ComponentRunRecord> = (chunk_start..chunk_start + 50)
            .map(|i| record(thread, i))
            .collect();
        ids.extend(store.log_runs(batch).unwrap());
    }
    ids
}

fn run_writers(store: &dyn Store, workload: fn(&dyn Store, u64) -> Vec<RunId>) -> Vec<Vec<RunId>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| s.spawn(move || workload(store, t)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn check_store(store: &dyn Store, per_thread_ids: &[Vec<RunId>]) {
    let total = THREADS * RUNS_PER_THREAD;
    // Per-thread ids are strictly increasing (each thread's calls are
    // sequenced, so the atomic counter hands it increasing ids).
    for ids in per_thread_ids {
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "per-thread monotonic");
    }
    // Globally: all ids unique and dense in 1..=total.
    let mut all: Vec<RunId> = per_thread_ids.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, total, "no id issued twice");
    assert_eq!(all.first(), Some(&RunId(1)));
    assert_eq!(all.last(), Some(&RunId(total)));
    assert_eq!(store.run_ids().unwrap(), all);
    assert_eq!(store.stats().unwrap().runs as u64, total);
    // The shared-input consumer index saw every run, in id order.
    let consumers = store.consumers_of("shared-features.csv").unwrap();
    assert_eq!(consumers.len() as u64, total);
    assert!(consumers.windows(2).all(|w| w[0] < w[1]), "index ascending");
    // Index agreement: each run's own I/O lists match the indexes.
    for &id in per_thread_ids.iter().flatten() {
        let run = store.run(id).unwrap().expect("logged run present");
        assert_eq!(
            store.producers_of(&run.outputs[0]).unwrap(),
            vec![id],
            "unique output indexed to its producer"
        );
        assert!(store
            .runs_for_component(&run.component)
            .unwrap()
            .contains(&id));
    }
    // Per-component lists are ascending and sized per thread.
    for t in 0..THREADS {
        let ids = store.runs_for_component(&format!("writer-{t}")).unwrap();
        assert_eq!(ids.len() as u64, RUNS_PER_THREAD);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn memory_store_concurrent_scalar_ingest() {
    let store = MemoryStore::new();
    let ids = run_writers(&store, writer_workload);
    check_store(&store, &ids);
    // Metric series survived the concurrent interleaving too.
    for t in 0..THREADS {
        let pts = store.metrics(&format!("writer-{t}"), "latency_ms").unwrap();
        assert_eq!(pts.len() as u64, RUNS_PER_THREAD / 10);
        assert!(pts.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }
}

#[test]
fn memory_store_concurrent_batched_ingest() {
    let store = MemoryStore::new();
    let ids = run_writers(&store, batched_writer_workload);
    check_store(&store, &ids);
}

#[test]
fn wal_store_concurrent_ingest_replays_identically() {
    for policy in [
        DurabilityPolicy::EveryEvent,
        DurabilityPolicy::Batch(64),
        DurabilityPolicy::Interval(5),
        DurabilityPolicy::OnSync,
    ] {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("concurrent.wal");
        let ids;
        {
            let store = WalStore::open_with(&path, policy).unwrap();
            ids = run_writers(&store, writer_workload);
            check_store(&store, &ids);
            store.sync().unwrap();
        }
        // Crash-free reopen: replay must rebuild the exact same state.
        let reopened = WalStore::open(&path).unwrap();
        assert!(!reopened.recovered(), "clean log under {policy:?}");
        check_store(&reopened, &ids);
    }
}

#[test]
fn wal_store_concurrent_batched_ingest_replays_identically() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("concurrent-batched.wal");
    let ids;
    {
        let store = WalStore::open_with(&path, DurabilityPolicy::Batch(128)).unwrap();
        ids = run_writers(&store, batched_writer_workload);
        check_store(&store, &ids);
        store.sync().unwrap();
    }
    let reopened = WalStore::open(&path).unwrap();
    check_store(&reopened, &ids);
}
