//! E1 (test-scale slice): §3.4's scenario — a 10-component pipeline whose
//! inference endpoint is pinged constantly, adding CR and IOPointer nodes
//! continuously. The full Ω(1M)-node measurement lives in the bench suite
//! (`ingest_scale`); this test checks correctness properties at 100k+
//! nodes in debug-friendly time.

use mltrace::core::{build_graph, Commands};
use mltrace::provenance::{slice_lineage, trace_output, TraceOptions};
use mltrace::store::{ComponentRunRecord, MemoryStore, RunId, Store};

/// Build the §3.4 topology directly against the store: 9 upstream
/// components refreshed periodically, plus an inference component pinged
/// per prediction.
fn populate(store: &MemoryStore, predictions: usize) -> Vec<String> {
    let mut t = 0u64;
    let mut upstream_outputs: Vec<String> = Vec::new();
    let mut last_refresh: Vec<RunId> = Vec::new();
    for stage in 0..9u64 {
        let out = format!("stage-{stage}.out");
        let deps: Vec<RunId> = last_refresh.last().copied().into_iter().collect();
        let inputs = upstream_outputs.last().cloned().into_iter().collect();
        let id = store
            .log_run(ComponentRunRecord {
                component: format!("stage-{stage}"),
                start_ms: t,
                end_ms: t + 1,
                inputs,
                outputs: vec![out.clone()],
                dependencies: deps,
                ..Default::default()
            })
            .unwrap();
        last_refresh.push(id);
        upstream_outputs.push(out);
        t += 10;
    }
    let model_run = *last_refresh.last().unwrap();
    let mut outputs = Vec::with_capacity(predictions);
    for i in 0..predictions {
        let out = format!("pred-{i}");
        store
            .log_run(ComponentRunRecord {
                component: "inference".into(),
                start_ms: t + i as u64,
                end_ms: t + i as u64 + 1,
                inputs: vec![upstream_outputs.last().unwrap().clone()],
                outputs: vec![out.clone()],
                dependencies: vec![model_run],
                ..Default::default()
            })
            .unwrap();
        outputs.push(out);
    }
    outputs
}

#[test]
fn hundred_thousand_node_graph_stays_queryable() {
    let store = MemoryStore::new();
    // 50k predictions → 50k CRs + 50k pointers + upstream ≈ 100k nodes.
    let outputs = populate(&store, 50_000);
    let stats = store.stats().unwrap();
    assert_eq!(stats.runs, 50_009);
    assert!(
        stats.io_pointers == 0,
        "pointers upserted separately in this direct-log path"
    );

    let graph = build_graph(&store).unwrap();
    assert_eq!(graph.run_count(), 50_009);
    assert_eq!(graph.io_count(), 50_009);

    // Tracing a single prediction touches only its lineage, not the
    // 50k-sibling fan-out.
    let t = trace_output(&graph, &outputs[25_000], TraceOptions::default()).unwrap();
    assert_eq!(t.component, "inference");
    assert_eq!(t.depth(), 10, "one inference hop + 9 upstream stages");
    assert!(t.size() <= 10);

    // Slicing 1000 predictions ranks the shared upstream first.
    let slice: Vec<String> = outputs[..1000].to_vec();
    let report = slice_lineage(&graph, &slice, TraceOptions::default());
    assert_eq!(report.traced_outputs, 1000);
    assert_eq!(report.ranked[0].frequency, 1000);
    assert!(report.ranked[0].component.starts_with("stage-"));
}

#[test]
fn history_stays_fast_with_many_runs_of_one_component() {
    let store = MemoryStore::new();
    populate(&store, 20_000);
    let ids = store.runs_for_component("inference").unwrap();
    assert_eq!(ids.len(), 20_000);
    // Tail access is index-backed, not a scan.
    let latest = store.latest_run("inference").unwrap().unwrap();
    assert_eq!(latest.outputs, vec!["pred-19999"]);
}

#[test]
fn incremental_graph_refresh_tracks_live_ingest() {
    let store = std::sync::Arc::new(MemoryStore::new());
    populate(&store, 1000);
    let clock = mltrace::store::ManualClock::starting_at(1);
    let ml = mltrace::core::Mltrace::with_store(store.clone(), clock);
    let mut cmds = Commands::new(&ml);
    assert!(cmds.trace("pred-999").is_ok());
    // More predictions arrive; the cached graph picks them up.
    populate_more(&store, 1000, 2000);
    assert!(cmds.trace("pred-extra-2999").is_ok());
}

fn populate_more(store: &MemoryStore, n: usize, offset: usize) {
    for i in 0..n {
        store
            .log_run(ComponentRunRecord {
                component: "inference".into(),
                start_ms: 10_000_000 + i as u64,
                end_ms: 10_000_001 + i as u64,
                inputs: vec!["stage-8.out".into()],
                outputs: vec![format!("pred-extra-{}", offset + i)],
                ..Default::default()
            })
            .unwrap();
    }
}
