//! End-to-end check of the self-telemetry subsystem: a WAL-backed
//! pipeline run must leave a complete, externally consumable account of
//! what the engine itself did — per-run overhead metadata, populated
//! latency histograms at every layer, valid Prometheus exposition, and a
//! sidecar snapshot that survives "process" boundaries via merge.

use mltrace::core::{Mltrace, RunSpec};
use mltrace::store::{Store, Value, WalStore};
use mltrace::telemetry::TelemetrySnapshot;
use std::sync::Arc;

/// Drive a few runs through a WAL-backed engine and return it.
fn run_workload(ml: &Mltrace) {
    for i in 0..4 {
        ml.run(
            "featurize",
            RunSpec::new()
                .input("raw.csv")
                .output(format!("features-{i}.csv")),
            |ctx| {
                ctx.log_metric("rows", 100.0 + i as f64);
                Ok(())
            },
        )
        .unwrap();
    }
    // One failing run so failure counters move too.
    let _ = ml.run("featurize", RunSpec::new().input("raw.csv"), |_| {
        Err::<(), _>("injected".into())
    });
}

#[test]
fn every_layer_reports_into_one_registry() {
    let dir = tempfile::tempdir().unwrap();
    let store = Arc::new(WalStore::open(dir.path().join("obs.wal")).unwrap());
    let ml = Mltrace::with_store(store.clone(), Arc::new(mltrace::store::SystemClock));
    run_workload(&ml);
    store.sync().unwrap();

    // Every run — success or failure — carries the engine's own cost.
    for id in store.run_ids().unwrap() {
        let run = store.run(id).unwrap().unwrap();
        assert!(
            matches!(
                run.metadata.get("mltrace.overhead_ms"),
                Some(Value::Float(v)) if *v >= 0.0
            ),
            "run {id} missing mltrace.overhead_ms metadata"
        );
    }

    let snap = ml.telemetry().snapshot();

    // Execution layer: spans and counters.
    assert_eq!(snap.histograms["component_run"].count, 5);
    assert_eq!(snap.counters["core.runs_total"], 5);
    assert_eq!(snap.counters["core.run_failures_total"], 1);
    let run_hist = &snap.histograms["component_run"];
    for q in [0.5, 0.95, 0.99] {
        assert!(
            run_hist.quantile(q).unwrap() > 0,
            "p{} of component_run",
            q * 100.0
        );
    }

    // Storage layer: the bundle write path.
    assert_eq!(snap.histograms["store.log_run_bundle"].count, 5);
    assert_eq!(snap.counters["store.runs_logged_total"], 5);

    // WAL layer: appends happened and the sync was an fsync.
    assert!(snap.histograms["wal.append_all"].count >= 5);
    assert!(snap.counters["wal.appends_total"] >= 5);
    assert!(snap.counters["wal.flushes_total"] >= 1);
    assert!(snap.counters["wal.fsyncs_total"] >= 1);
    assert!(snap.counters["wal.bytes_written_total"] > 0);
    assert_eq!(snap.counters["wal.recoveries_total"], 0);
}

#[test]
fn prometheus_exposition_covers_the_required_series() {
    let dir = tempfile::tempdir().unwrap();
    let store = Arc::new(WalStore::open(dir.path().join("obs.wal")).unwrap());
    let ml = Mltrace::with_store(store.clone(), Arc::new(mltrace::store::SystemClock));
    run_workload(&ml);
    store.sync().unwrap();

    let text = ml.telemetry().snapshot().render_prometheus();
    // The same series CI greps for after the demo (ci.yml telemetry-smoke).
    for series in [
        "# TYPE mltrace_component_run_seconds histogram",
        "# TYPE mltrace_store_log_run_bundle_seconds histogram",
        "# TYPE mltrace_wal_append_all_seconds histogram",
        "# TYPE mltrace_wal_fsyncs_total counter",
    ] {
        assert!(text.contains(series), "missing {series:?} in exposition");
    }
    assert!(text.contains("mltrace_component_run_seconds_count 5"));
    assert!(text.contains("mltrace_component_run_seconds_bucket{le=\"+Inf\"} 5"));
}

#[test]
fn sidecar_snapshot_round_trips_and_merges_across_processes() {
    let dir = tempfile::tempdir().unwrap();
    let wal = dir.path().join("obs.wal");
    let sidecar = dir.path().join("obs.wal.telemetry");

    // "Process" 1: run, snapshot, persist.
    {
        let ml = Mltrace::open(&wal).unwrap();
        run_workload(&ml);
        ml.telemetry().snapshot().save_file(&sidecar).unwrap();
    }

    // "Process" 2: reopen (WAL replay re-logs the 5 runs into the new
    // registry), then fold into the sidecar the way the CLI does.
    let mut accumulated = TelemetrySnapshot::load_file(&sidecar).expect("sidecar parses");
    assert_eq!(accumulated.counters["core.runs_total"], 5);
    {
        let ml = Mltrace::open(&wal).unwrap();
        assert_eq!(
            ml.store().stats().unwrap().runs,
            5,
            "workload survived restart"
        );
        accumulated.merge(&ml.telemetry().snapshot());
        accumulated.save_file(&sidecar).unwrap();
    }

    // Counters added; histograms merged bucket-wise; text format stable.
    let reloaded = TelemetrySnapshot::load_file(&sidecar).unwrap();
    // Process 1 logged the runs; process 2's replay *restored* them — the
    // merged sidecar keeps the two paths distinguishable.
    assert_eq!(reloaded.counters["store.runs_logged_total"], 5);
    assert_eq!(reloaded.counters["store.runs_restored_total"], 5);
    assert_eq!(
        reloaded.histograms["component_run"].count,
        accumulated.histograms["component_run"].count
    );
    // The run spans only exist in process 1 (replay is not a run).
    assert_eq!(reloaded.counters["core.runs_total"], 5);
    assert!(!reloaded.is_empty());
    assert!(reloaded.render_human().contains("component_run"));
}
