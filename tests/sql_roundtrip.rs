//! Parser round-trip fuzzing: generate random query ASTs, render them to
//! SQL text, re-parse, and require the same AST back. Exercises
//! precedence, keyword handling, literals and every expression form.

use mltrace::query::{parse, AggFunc, BinOp, Expr, Query, ScalarFunc, SelectItem};
use mltrace::store::Value;
use proptest::prelude::*;

/// Render an expression back to SQL, fully parenthesized so the printed
/// form is precedence-unambiguous.
fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.clone(),
        Expr::Literal(Value::Null) => "NULL".into(),
        Expr::Literal(Value::Bool(b)) => if *b { "TRUE" } else { "FALSE" }.into(),
        Expr::Literal(Value::Int(i)) => {
            if *i < 0 {
                format!("(0 - {})", i.unsigned_abs())
            } else {
                i.to_string()
            }
        }
        Expr::Literal(Value::Float(f)) => format!("{f:?}"),
        Expr::Literal(Value::Str(s)) => format!("'{}'", s.replace('\'', "''")),
        Expr::Literal(_) => unreachable!("only scalar literals generated"),
        Expr::Binary { op, left, right } => {
            let op = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
            };
            format!("({} {} {})", render_expr(left), op, render_expr(right))
        }
        Expr::Not(x) => format!("(NOT {})", render_expr(x)),
        Expr::Neg(x) => format!("(- {})", render_expr(x)),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({} {}LIKE '{}')",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            pattern.replace('\'', "''")
        ),
        Expr::In {
            expr,
            list,
            negated,
        } => format!(
            "({} {}IN ({}))",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            list.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            render_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Agg { func, arg } => match arg {
            Some(a) => format!("{}({})", func.name(), render_expr(a)),
            None => format!("{}(*)", func.name()),
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => format!(
            "({} {}BETWEEN {} AND {})",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(lo),
            render_expr(hi)
        ),
        Expr::Scalar { func, args } => format!(
            "{}({})",
            func.name(),
            args.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
    }
}

fn render_query(q: &Query) -> String {
    let mut out = String::from("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = q
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", render_expr(expr)),
                None => render_expr(expr),
            },
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push_str(&format!(" FROM {}", q.from));
    if let Some(w) = &q.where_clause {
        out.push_str(&format!(" WHERE {}", render_expr(w)));
    }
    if !q.group_by.is_empty() {
        out.push_str(&format!(" GROUP BY {}", q.group_by.join(", ")));
    }
    if let Some(h) = &q.having {
        out.push_str(&format!(" HAVING {}", render_expr(h)));
    }
    if !q.order_by.is_empty() {
        let keys: Vec<String> = q
            .order_by
            .iter()
            .map(|(e, desc)| format!("{}{}", render_expr(e), if *desc { " DESC" } else { " ASC" }))
            .collect();
        out.push_str(&format!(" ORDER BY {}", keys.join(", ")));
    }
    if let Some(l) = q.limit {
        out.push_str(&format!(" LIMIT {l}"));
    }
    out
}

/// Column names that cannot collide with SQL keywords.
fn arb_column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("component".to_string()),
        Just("start_ms".to_string()),
        Just("duration_ms".to_string()),
        Just("value_col".to_string()),
    ]
}

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Literal(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
        (0i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        // Non-negative: a leading '-' parses as Neg(lit), a distinct AST.
        (0.0f64..100.0)
            .prop_filter("finite non-integer floats parse cleanly", |f| f.fract()
                != 0.0)
            .prop_map(|f| Expr::Literal(Value::Float(f))),
        "[a-z ]{0,6}".prop_map(|s| Expr::Literal(Value::Str(s))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_column().prop_map(Expr::Column), arb_literal()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), "[a-z%_]{0,5}", any::<bool>()).prop_map(|(e, pattern, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern,
                    negated,
                }
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::In {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated
                }
            ),
            (
                prop_oneof![
                    Just(ScalarFunc::Abs),
                    Just(ScalarFunc::Length),
                    Just(ScalarFunc::Coalesce),
                    Just(ScalarFunc::Lower),
                    Just(ScalarFunc::Upper),
                    Just(ScalarFunc::Round),
                ],
                prop::collection::vec(inner, 1..3)
            )
                .prop_map(|(func, args)| Expr::Scalar { func, args }),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        prop::collection::vec((arb_expr(), prop::option::of("[a-z]{1,6}")), 1..4),
        prop::option::of(arb_expr()),
        prop::option::of((0usize..50).prop_map(Some)),
    )
        .prop_map(|(distinct, items, where_clause, limit)| Query {
            distinct,
            select: items
                .into_iter()
                .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                .collect(),
            from: "component_runs".into(),
            where_clause,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: limit.flatten(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render(parse(render(ast))) is the identity on the AST, modulo
    /// aggregate usage (not generated here) — every expression form,
    /// precedence level, and literal survives the text round trip.
    #[test]
    fn ast_survives_render_parse_round_trip(q in arb_query()) {
        let sql = render_query(&q);
        let parsed = parse(&sql).unwrap_or_else(|e| panic!("{sql}\n{e}"));
        prop_assert_eq!(parsed, q, "sql was: {}", sql);
    }

    /// COUNT/SUM/AVG/MIN/MAX render-parse round trip.
    #[test]
    fn aggregate_round_trip(
        func in prop_oneof![
            Just(AggFunc::Count), Just(AggFunc::Sum), Just(AggFunc::Avg),
            Just(AggFunc::Min), Just(AggFunc::Max),
        ],
        column in arb_column(),
        star in any::<bool>(),
    ) {
        let arg = if star && func == AggFunc::Count {
            None
        } else {
            Some(Box::new(Expr::Column(column)))
        };
        let q = Query {
            distinct: false,
            select: vec![SelectItem::Expr {
                expr: Expr::Agg { func, arg },
                alias: Some("x".into()),
            }],
            from: "metrics".into(),
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        let sql = render_query(&q);
        prop_assert_eq!(parse(&sql).unwrap(), q, "sql was: {}", sql);
    }
}
