//! Continuous monitoring composition: the O(1)-state detectors
//! (CUSUM/EWMA), sliding windows, and calibration diagnostics applied to
//! the live accuracy stream of the demo pipeline — the §4.1 monitoring
//! loop running purely off logged metrics.

use mltrace::metrics::{CountWindow, Cusum, EwmaChart, ReliabilityCurve, Shift};
use mltrace::taxi::{labels, DriftProfile, Incident, ServeOptions, TaxiConfig, TaxiPipeline};

#[test]
fn cusum_on_logged_accuracy_catches_slow_degradation() {
    // Slow concept drift: each batch's accuracy dips slightly — no single
    // batch breaches a threshold, but CUSUM accumulates the evidence.
    let mut p = TaxiPipeline::new(TaxiConfig {
        drift: DriftProfile {
            distance_shift_per_trip: 8e-5,
            tip_shift_per_trip: 1e-4,
            ..Default::default()
        },
        ..Default::default()
    });
    let df = p.ingest(2000, Incident::None).unwrap();
    p.train(&df, true).unwrap();

    // Calibrate on the first healthy batches.
    let mut reference = Vec::new();
    for _ in 0..5 {
        let r = p
            .ingest_and_serve(400, Incident::None, ServeOptions::default())
            .unwrap();
        reference.push(r.accuracy);
    }
    let mean = reference.iter().sum::<f64>() / reference.len() as f64;
    let mut cusum = Cusum::new(mean, 0.03, 0.25, 4.0);
    let mut ewma = EwmaChart::new(mean, 0.03, 0.3, 3.0);
    for &a in &reference {
        cusum.push(a);
        ewma.push(a);
    }

    let mut cusum_fired = None;
    let mut ewma_fired = None;
    for batch in 0..25 {
        let r = p
            .ingest_and_serve(400, Incident::None, ServeOptions::default())
            .unwrap();
        if cusum_fired.is_none() {
            if let Some(shift) = cusum.push(r.accuracy) {
                assert_eq!(shift, Shift::Down, "degradation is a downward shift");
                cusum_fired = Some(batch);
            }
        }
        if ewma_fired.is_none() && ewma.push(r.accuracy) == Some(Shift::Down) {
            ewma_fired = Some(batch);
        }
    }
    assert!(
        cusum_fired.is_some(),
        "CUSUM must accumulate the slow degradation"
    );
    assert!(ewma_fired.is_some(), "EWMA must catch it too");
}

#[test]
fn sliding_window_summarizes_accuracy_stream() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(1500, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    let mut window = CountWindow::new(5);
    for i in 0..8 {
        let incident = if i == 6 {
            Incident::ServeSkew { scale: -50.0 }
        } else {
            Incident::None
        };
        let r = p
            .ingest_and_serve(300, incident, ServeOptions::default())
            .unwrap();
        window.push(r.accuracy);
    }
    assert!(window.is_full());
    let m = window.moments();
    assert_eq!(m.count(), 5);
    // The incident batch drags the window minimum well below the mean.
    assert!(
        m.min() < m.mean() - 0.05,
        "min {} mean {}",
        m.min(),
        m.mean()
    );
}

#[test]
fn model_probabilities_are_roughly_calibrated() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(3000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    let serve_df = p.ingest(2000, Incident::None).unwrap();
    let report = p.serve(&serve_df, ServeOptions::default()).unwrap();
    let truth = labels(&serve_df).unwrap();
    let curve = ReliabilityCurve::fit(&report.probabilities, &truth, 10);
    let ece = curve.ece();
    assert!(
        ece < 0.12,
        "logistic regression on its own distribution stays roughly calibrated, ECE {ece}"
    );
    // Feature skew decalibrates without necessarily zeroing accuracy —
    // the silent failure calibration monitoring exists for.
    let skew_df = p.ingest(2000, Incident::None).unwrap();
    let skewed = p
        .serve(
            &skew_df,
            ServeOptions {
                incident: Incident::ServeSkew { scale: -50.0 },
                per_trip_outputs: false,
            },
        )
        .unwrap();
    let skew_truth = labels(&skew_df).unwrap();
    let skewed_ece = ReliabilityCurve::fit(&skewed.probabilities, &skew_truth, 10).ece();
    assert!(
        skewed_ece > ece + 0.05,
        "skew decalibrates: {ece:.3} → {skewed_ece:.3}"
    );
}
