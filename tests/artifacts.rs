//! E9: §5.1's artifact challenge — "store copies of data and artifacts
//! ... and deduplicate them on successive runs" — exercised with real
//! model artifacts produced by the retraining pipeline.

use mltrace::store::{ArtifactStore, ChunkerConfig};
use mltrace::taxi::{Incident, TaxiConfig, TaxiPipeline};

#[test]
fn retrained_model_artifacts_dedup() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    // Five retraining cycles on overlapping data → similar model JSON.
    for _ in 0..5 {
        let df = p.ingest(1500, Incident::None).unwrap();
        p.train(&df, true).unwrap();
    }
    let stats = p.ml().artifacts().stats();
    assert!(stats.artifacts >= 5, "model + featurizer per cycle");
    assert!(stats.logical_bytes > 0);
    // Small JSON artifacts may or may not chunk-share; the invariant that
    // matters: storage never exceeds logical bytes.
    assert!(stats.stored_bytes <= stats.logical_bytes);
}

#[test]
fn large_artifact_versions_share_chunks() {
    // A "DNN-sized" artifact: 2 MB of weights, retrained with a small
    // contiguous delta each cycle — the §5.1 worst case for naive storage.
    let store = ArtifactStore::new(ChunkerConfig::default());
    let mut weights: Vec<u8> = {
        let mut state = 0x3141_5926u64;
        (0..2_000_000)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 24) as u8
            })
            .collect()
    };
    let mut ids = Vec::new();
    for version in 0..10 {
        // Each retrain touches one contiguous 2% "layer".
        let start = (version * 37_000) % (weights.len() - 40_000);
        for b in &mut weights[start..start + 40_000] {
            *b = b.wrapping_add(version as u8 + 1);
        }
        ids.push(store.put(&weights));
    }
    let stats = store.stats();
    assert_eq!(stats.artifacts, 10);
    assert_eq!(stats.logical_bytes, 20_000_000);
    assert!(
        stats.dedup_ratio() > 4.0,
        "10 near-identical versions should dedup heavily, got {:.2}×",
        stats.dedup_ratio()
    );
    // Every version reassembles bit-exactly (spot-check the latest).
    assert_eq!(store.get(ids.last().unwrap()).unwrap(), weights);
}

#[test]
fn deleting_old_versions_is_safe_and_reclaims() {
    let store = ArtifactStore::new(ChunkerConfig::default());
    let base: Vec<u8> = (0..500_000u32).flat_map(|i| i.to_le_bytes()).collect();
    let v1 = store.put(&base);
    let mut v2_payload = base.clone();
    v2_payload.extend_from_slice(&base[..100_000]);
    let v2 = store.put(&v2_payload);

    let before = store.stats().stored_bytes;
    store.delete(&v1).unwrap();
    let after = store.stats();
    // Shared chunks survive; some v1-only space may free.
    assert!(after.stored_bytes <= before);
    assert_eq!(
        store.get(&v2).unwrap(),
        v2_payload,
        "v2 intact after v1 delete"
    );
    assert!(store.get(&v1).is_err());
}

#[test]
fn pipeline_pointers_carry_artifact_addresses() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(800, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    let store = p.ml().store();
    let pointer = store.io_pointer("tip_model-0.json").unwrap().unwrap();
    let address = pointer
        .artifact
        .expect("model pointer carries its content address");
    let payload = p.ml().artifacts().get(&address).unwrap();
    // The stored artifact is the actual fitted model.
    let model: mltrace::pipeline::LogisticRegression = serde_json::from_slice(&payload).unwrap();
    assert!(!model.weights.is_empty());
}
