//! Property suite for the wire protocol's framing layer (satellite of
//! the serve front-end): any sequence of frames survives
//! encode → arbitrary re-chunking → decode byte-for-byte; a torn
//! trailing frame surfaces as a clean `UnexpectedEof` (never a panic or
//! a misparse of the preceding complete frames); and arbitrary garbage
//! bytes produce errors, not panics. These are the invariants the
//! server's incremental reader and the client's blocking reader both
//! lean on.

use mltrace::protocol::{
    decode_frame, encode_frame, read_frame, Frame, FrameError, LEN_PREFIX, MAX_FRAME_LEN,
};
use proptest::prelude::*;
use std::io::{Cursor, ErrorKind};

/// A strategy for one frame: any request id, bodies up to 4 KiB (the
/// size cap itself is covered by unit tests in the crate).
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..4096),
    )
        .prop_map(|(id, body)| Frame::new(id, body))
}

/// Incrementally decode `stream` in chunks of the given sizes (cycled),
/// the way the server's reader consumes a socket.
fn decode_chunked(stream: &[u8], chunks: &[usize]) -> Result<Vec<Frame>, FrameError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut frames = Vec::new();
    let mut offset = 0;
    let mut i = 0;
    while offset < stream.len() {
        let n = chunks[i % chunks.len()].max(1).min(stream.len() - offset);
        i += 1;
        buf.extend_from_slice(&stream[offset..offset + n]);
        offset += n;
        while let Some((frame, used)) = decode_frame(&buf)? {
            buf.drain(..used);
            frames.push(frame);
        }
    }
    if !buf.is_empty() {
        return Err(FrameError::Torn {
            have: buf.len(),
            want: buf.len() + 1, // placeholder: tail incomplete
        });
    }
    Ok(frames)
}

proptest! {
    /// Encode → re-chunk → decode is the identity on frame sequences,
    /// whatever the chunk boundaries.
    #[test]
    fn frame_sequences_roundtrip_under_any_chunking(
        frames in proptest::collection::vec(frame_strategy(), 0..8),
        chunks in proptest::collection::vec(1usize..97, 1..8),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let decoded = decode_chunked(&stream, &chunks).expect("well-formed stream");
        prop_assert_eq!(decoded, frames);
    }

    /// Truncating the stream mid-frame never corrupts the complete
    /// prefix: every whole frame still decodes, the tail reports torn.
    #[test]
    fn torn_tail_preserves_complete_prefix(
        frames in proptest::collection::vec(frame_strategy(), 1..6),
        cut_back in 1usize..64,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
            boundaries.push(stream.len());
        }
        // Cut strictly inside the last frame: at least one byte of it
        // removed, at least one byte of it left.
        let prev_end = if frames.len() >= 2 { boundaries[frames.len() - 2] } else { 0 };
        let cut = (stream.len() - cut_back.min(stream.len() - prev_end - 1)).max(prev_end + 1);
        stream.truncate(cut);

        // Streaming reader: whole frames come out, then UnexpectedEof.
        let mut cursor = Cursor::new(stream.clone());
        for expected in &frames[..frames.len() - 1] {
            let got = read_frame(&mut cursor).expect("complete frame").expect("not EOF");
            prop_assert_eq!(&got, expected);
        }
        match read_frame(&mut cursor) {
            Err(e) => prop_assert_eq!(e.kind(), ErrorKind::UnexpectedEof),
            Ok(other) => prop_assert!(false, "torn tail parsed as {:?}", other),
        }

        // Incremental decoder: same prefix, and the tail never yields a
        // frame (decode_frame reports NeedMore, not a misparse).
        let mut buf = stream;
        let mut decoded = Vec::new();
        loop {
            match decode_frame(&buf) {
                Ok(Some((frame, used))) => {
                    buf.drain(..used);
                    decoded.push(frame);
                }
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(false, "well-formed prefix rejected: {e}");
                    break;
                }
            }
        }
        prop_assert_eq!(decoded, frames[..frames.len() - 1].to_vec());
        prop_assert!(!buf.is_empty(), "the torn tail must remain buffered");
    }

    /// Arbitrary bytes never panic the decoder: every outcome is a
    /// frame, a need-more, or a typed error.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match decode_frame(&bytes) {
            Ok(Some((frame, used))) => {
                prop_assert!(used <= bytes.len());
                prop_assert!(frame.body.len() <= MAX_FRAME_LEN);
            }
            Ok(None) => {}
            Err(_) => {}
        }
        let mut cursor = Cursor::new(bytes);
        loop {
            match read_frame(&mut cursor) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A declared length beyond the cap is rejected before any
    /// allocation of that size — the anti-DoS guard.
    #[test]
    fn oversized_declarations_rejected(extra in 1u32..1024, id in any::<u64>()) {
        let declared = (MAX_FRAME_LEN as u32).saturating_add(extra);
        let mut bytes = Vec::with_capacity(LEN_PREFIX + 8);
        bytes.extend_from_slice(&declared.to_be_bytes());
        bytes.extend_from_slice(&id.to_be_bytes());
        match decode_frame(&bytes) {
            Err(FrameError::Oversized { .. }) => {}
            other => prop_assert!(false, "oversized len accepted: {:?}", other),
        }
    }
}
