//! Property-style equivalence suite for the read-path overhaul: the
//! pushdown executor ([`execute_query`]) must return exactly the same
//! rows as the naive full-scan reference ([`execute_query_unoptimized`])
//! across WHERE / LIMIT / ORDER BY / DISTINCT combinations — and, since
//! the analytical-SQL work, across GROUP BY / HAVING (store-side
//! parallel partial aggregates) and inner/left JOINs (hash execution) —
//! on both the in-memory store and a live WAL-backed store. A third axis
//! pins the index-backed executor ([`execute_query_with_route`] with
//! `ForceIndex`) against both, so the secondary-index lookup path can
//! never drift from the scan semantics however the planner routes.
//!
//! [`execute_query`]: mltrace::query::execute_query
//! [`execute_query_unoptimized`]: mltrace::query::execute_query_unoptimized
//! [`execute_query_with_route`]: mltrace::query::execute_query_with_route

use mltrace::query::{
    execute, execute_prepared, execute_query, execute_query_unoptimized, execute_query_with_route,
    parse, prepare, RoutePreference,
};
use mltrace::store::{
    ComponentRecord, ComponentRunRecord, DiagnosisRecord, EventKind, EventSeverity, IncidentRecord,
    IncidentState, MemoryStore, MetricRecord, ObservabilityEvent, RunId, RunStatus, Store, Value,
    WalStore,
};

const COMPONENTS: [&str; 4] = ["etl", "train", "infer", "report"];

/// Deterministic fixture: 200 runs round-robined over four components with
/// varied statuses, durations, and dependencies, plus two metric series.
fn seed(store: &dyn Store) {
    for name in COMPONENTS {
        store
            .register_component(ComponentRecord::named(name))
            .unwrap();
    }
    let mut prev: Option<RunId> = None;
    for i in 0u64..200 {
        let status = if i % 7 == 3 {
            RunStatus::Failed
        } else if i % 11 == 5 {
            RunStatus::TriggerFailed
        } else {
            RunStatus::Success
        };
        let id = store
            .log_run(ComponentRunRecord {
                component: COMPONENTS[(i % 4) as usize].into(),
                start_ms: 1_000 + i * 10,
                end_ms: 1_000 + i * 10 + (i % 13) * 7,
                inputs: if i % 4 == 0 {
                    vec![]
                } else {
                    vec![format!("out-{}", i - 1)]
                },
                outputs: vec![format!("out-{i}")],
                dependencies: prev.into_iter().collect(),
                status,
                ..Default::default()
            })
            .unwrap();
        prev = Some(id);
        if i % 4 == 2 {
            store
                .log_metric(MetricRecord {
                    component: "infer".into(),
                    run_id: Some(id),
                    name: "accuracy".into(),
                    value: 0.5 + (i % 10) as f64 / 20.0,
                    ts_ms: 1_000 + i * 10,
                })
                .unwrap();
            store
                .log_metric(MetricRecord {
                    component: "infer".into(),
                    run_id: None,
                    name: "latency_ms".into(),
                    value: (i % 37) as f64,
                    ts_ms: 1_000 + i * 10,
                })
                .unwrap();
        }
    }
    // Journal events: every kind × severity combination shows up somewhere,
    // some events carry run ids / details and some don't, so NULL-column
    // comparisons and residual predicates both get exercised.
    let kinds = [
        EventKind::RunStarted,
        EventKind::RunFinished,
        EventKind::RunFailed,
        EventKind::AlertFired,
        EventKind::AlertSuppressed,
        EventKind::StalenessFlagged,
    ];
    let severities = [
        EventSeverity::Info,
        EventSeverity::Warn,
        EventSeverity::Page,
    ];
    let mut events = Vec::new();
    for i in 0u64..60 {
        let mut e = ObservabilityEvent::new(
            kinds[(i % 6) as usize],
            severities[(i % 3) as usize],
            2_000 + i * 5,
        )
        .component(COMPONENTS[(i % 4) as usize]);
        if i % 2 == 0 {
            e = e.run(RunId(i / 2 + 1));
        }
        if i % 5 == 0 {
            e = e.detail(format!("condition {i} observed"));
        }
        events.push(e);
    }
    store.log_events(events).unwrap();
    let incidents = [
        ("infer/accuracy", IncidentState::Open, None, 3),
        ("train/loss", IncidentState::Acknowledged, None, 2),
        ("etl/nulls", IncidentState::Resolved, Some(2_400), 1),
    ];
    for (key, state, resolved_ms, fire_count) in incidents {
        store
            .upsert_incident(IncidentRecord {
                key: key.into(),
                state,
                severity: EventSeverity::Page,
                subject: key.split('/').next().unwrap_or_default().into(),
                opened_ms: 2_100,
                last_fire_ms: 2_300,
                resolved_ms,
                fire_count,
                suppressed_count: fire_count / 2,
                burn_ms: resolved_ms.map(|r| r - 2_100).unwrap_or(0),
                detail: format!("{key} out of bounds"),
            })
            .unwrap();
    }
    // Diagnosis rankings for two of the incidents, so the diagnoses
    // table has multi-row and single-row keys to push against.
    let row = |key: &str, rank, suspect: &str, kind: &str, score, onset| DiagnosisRecord {
        incident_key: key.into(),
        rank,
        suspect: suspect.into(),
        evidence_kind: kind.into(),
        score,
        onset_ms: onset,
        distance: rank as u32,
        detail: format!("{kind} on {suspect}"),
    };
    store
        .put_diagnosis(
            "infer/accuracy",
            vec![
                row("infer/accuracy", 1, "train", "run_failed", 2.7, 2_050),
                row("infer/accuracy", 2, "etl", "drift_onset", 1.9, 2_000),
            ],
        )
        .unwrap();
    store
        .put_diagnosis(
            "train/loss",
            vec![row("train/loss", 1, "etl", "failure_rate", 0.9, 2_080)],
        )
        .unwrap();
}

/// Assert optimized == reference for every query, labeling failures. The
/// three paths — naive full scan, scan-pushdown, index-backed — must agree
/// row for row.
fn assert_equivalent(store: &dyn Store, queries: &[String]) {
    for sql in queries {
        let q = parse(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
        let fast =
            execute_query(store, &q).unwrap_or_else(|e| panic!("pushdown failed for {sql}: {e}"));
        let slow = execute_query_unoptimized(store, &q)
            .unwrap_or_else(|e| panic!("reference failed for {sql}: {e}"));
        assert_eq!(fast, slow, "pushdown diverged from reference for: {sql}");
        let indexed = execute_query_with_route(store, &q, RoutePreference::ForceIndex)
            .unwrap_or_else(|e| panic!("index path failed for {sql}: {e}"));
        assert_eq!(
            indexed, slow,
            "index path diverged from reference for: {sql}"
        );
        let scanned = execute_query_with_route(store, &q, RoutePreference::ForceScan)
            .unwrap_or_else(|e| panic!("forced scan failed for {sql}: {e}"));
        assert_eq!(
            scanned, slow,
            "forced scan diverged from reference for: {sql}"
        );
    }
}

/// The WHERE × ORDER BY × LIMIT × DISTINCT grid over both tables.
fn query_grid() -> Vec<String> {
    let run_wheres = [
        "",
        "WHERE component = 'etl'",
        "WHERE 'etl' = component",
        "WHERE status = 'success'",
        // Wrong-case status literal: unpushable, must stay string-compared.
        "WHERE status = 'Success'",
        "WHERE status = 'failed' AND component = 'train'",
        "WHERE start_ms >= 1500",
        "WHERE start_ms BETWEEN 1200 AND 1800",
        "WHERE start_ms NOT BETWEEN 1200 AND 1800",
        "WHERE component = 'infer' AND start_ms >= 1500 AND start_ms <= 2500",
        // Mixed pushable + residual conjuncts.
        "WHERE component = 'etl' AND duration_ms > 20",
        "WHERE component = 'etl' AND outputs LIKE '%7%'",
        // OR is never pushed.
        "WHERE component = 'etl' OR status = 'failed'",
        "WHERE id <= 150 AND id >= 10",
        "WHERE id < 1",
        // Conflicting equalities: empty result on both paths.
        "WHERE component = 'etl' AND component = 'train'",
    ];
    let orders = ["", "ORDER BY start_ms DESC", "ORDER BY component, id DESC"];
    let limits = ["", "LIMIT 5", "LIMIT 0", "LIMIT 500"];
    let mut queries = Vec::new();
    for w in run_wheres {
        for o in orders {
            for l in limits {
                queries.push(format!("SELECT * FROM component_runs {w} {o} {l}"));
            }
        }
        // DISTINCT over a narrow projection.
        for o in ["", "ORDER BY component"] {
            for l in ["", "LIMIT 2"] {
                queries.push(format!("SELECT DISTINCT component FROM runs {w} {o} {l}"));
            }
        }
        // Aggregation must never see a pushed limit.
        queries.push(format!("SELECT count(*) FROM runs {w} LIMIT 1"));
    }
    queries.push(
        "SELECT DISTINCT component, status FROM runs WHERE start_ms >= 1500 \
         ORDER BY component LIMIT 3"
            .into(),
    );
    let metric_wheres = [
        "",
        "WHERE component = 'infer'",
        // Never-registered component: pushdown must not widen or error.
        "WHERE component = 'ghost'",
        "WHERE component = 'infer' AND value > 0.6",
        "WHERE name = 'accuracy'",
        "WHERE run_id IS NULL",
    ];
    for w in metric_wheres {
        for l in ["", "LIMIT 7"] {
            queries.push(format!("SELECT * FROM metrics {w} {l}"));
        }
    }
    let event_wheres = [
        "",
        "WHERE kind = 'alert_fired'",
        // Wrong-case kind literal: unpushable, must stay string-compared.
        "WHERE kind = 'AlertFired'",
        "WHERE severity = 'page'",
        "WHERE severity = 'page' AND component = 'infer'",
        "WHERE run_id = 3",
        // run_id on an unstamped event compares against NULL on both paths.
        "WHERE run_id = 9999",
        "WHERE ts_ms BETWEEN 2050 AND 2200",
        "WHERE ts_ms NOT BETWEEN 2050 AND 2200",
        "WHERE id >= 10 AND id < 40",
        // Mixed pushable + residual conjuncts.
        "WHERE kind = 'run_failed' AND detail LIKE '%observed%'",
        // OR is never pushed.
        "WHERE kind = 'alert_fired' OR severity = 'warn'",
        // Conflicting equalities: empty result on both paths.
        "WHERE kind = 'run_started' AND kind = 'run_failed'",
    ];
    for w in event_wheres {
        for o in ["", "ORDER BY ts_ms DESC", "ORDER BY severity, id DESC"] {
            for l in ["", "LIMIT 9", "LIMIT 0"] {
                queries.push(format!("SELECT * FROM events {w} {o} {l}"));
            }
        }
        // The `journal` alias resolves to the same table.
        queries.push(format!(
            "SELECT id, kind, severity FROM journal {w} LIMIT 11"
        ));
        // Aggregation must never see a pushed limit.
        queries.push(format!(
            "SELECT kind, count(*) FROM events {w} GROUP BY kind LIMIT 2"
        ));
    }
    let incident_wheres = [
        "",
        "WHERE state = 'open'",
        "WHERE severity = 'page' AND fire_count >= 2",
        "WHERE resolved_ms IS NULL",
    ];
    for w in incident_wheres {
        for o in ["", "ORDER BY opened_ms DESC, key"] {
            queries.push(format!("SELECT * FROM incidents {w} {o} LIMIT 10"));
        }
    }
    let diagnosis_wheres = [
        "",
        "WHERE incident_key = 'infer/accuracy'",
        "WHERE suspect = 'etl'",
        "WHERE incident_key = 'infer/accuracy' AND suspect = 'train'",
        // Never-diagnosed key: pushdown must not widen or error.
        "WHERE incident_key = 'ghost'",
        // Mixed pushable + residual conjuncts.
        "WHERE incident_key = 'infer/accuracy' AND score > 2.0",
        "WHERE rank = 1",
        // Conflicting equalities: empty result on both paths.
        "WHERE incident_key = 'infer/accuracy' AND incident_key = 'train/loss'",
    ];
    for w in diagnosis_wheres {
        for o in ["", "ORDER BY incident_key, rank"] {
            queries.push(format!("SELECT * FROM diagnoses {w} {o} LIMIT 10"));
        }
    }
    queries.extend(aggregate_grid());
    queries.extend(join_grid());
    queries
}

/// The GROUP BY × HAVING × WHERE × ORDER/LIMIT aggregate axis. Fully
/// pushable WHEREs take the store-side partial-aggregate route; residual
/// and expression-argument cases fall back to the row path — every cell
/// must agree with the naive reference group for group.
fn aggregate_grid() -> Vec<String> {
    let mut queries = Vec::new();
    let wheres = [
        "",
        "WHERE component = 'etl'",
        "WHERE status = 'failed'",
        "WHERE start_ms BETWEEN 1200 AND 1800",
        // Empty input: a grouped query yields no groups, a global one
        // yields a single all-empty group.
        "WHERE id < 1",
        // Residual conjunct: knocks the query off the partial-agg route.
        "WHERE component = 'etl' AND duration_ms > 20",
        // OR is never pushed.
        "WHERE component = 'etl' OR status = 'failed'",
    ];
    let havings = ["", "HAVING count(*) > 10", "HAVING avg(duration_ms) >= 25"];
    let tails = ["", "ORDER BY n DESC, component LIMIT 2"];
    for w in wheres {
        for h in havings {
            for t in tails {
                queries.push(format!(
                    "SELECT component, count(*) AS n, avg(duration_ms) AS avg_d \
                     FROM runs {w} GROUP BY component {h} {t}"
                ));
            }
        }
        // Multi-column keys, the full aggregate set, and global (no
        // GROUP BY) aggregates, including over empty inputs.
        queries.push(format!(
            "SELECT component, status, count(*) AS n FROM runs {w} \
             GROUP BY component, status ORDER BY n DESC, component, status"
        ));
        queries.push(format!(
            "SELECT status, sum(duration_ms) AS s, min(start_ms) AS lo, \
             max(end_ms) AS hi FROM runs {w} GROUP BY status"
        ));
        queries.push(format!(
            "SELECT count(*) AS n, sum(duration_ms) AS s, avg(duration_ms) AS a, \
             min(id) AS lo, max(id) AS hi FROM runs {w}"
        ));
        // Expression aggregate arguments stay on the row path.
        queries.push(format!(
            "SELECT component, sum(duration_ms / 2) AS half FROM runs {w} \
             GROUP BY component"
        ));
        // Qualified spellings resolve to the same groups as bare ones.
        queries.push(format!(
            "SELECT r.component, count(*) AS n FROM runs r {w} GROUP BY r.component"
        ));
    }
    // Aggregates over the other tables exercise the row-path fold.
    queries.push("SELECT name, count(*) AS n, avg(value) AS v FROM metrics GROUP BY name".into());
    queries.push(
        "SELECT kind, severity, count(*) AS n FROM events GROUP BY kind, severity \
         ORDER BY n DESC, kind, severity LIMIT 5"
            .into(),
    );
    queries
}

/// The JOIN axis: inner/left × equi/non-equi × pushed filters ×
/// grouping, against the naive nested-loop reference.
fn join_grid() -> Vec<String> {
    [
        // Hash equi-join, both directions of the build-side choice.
        "SELECT r.id, r.component, e.kind FROM runs r JOIN events e ON e.run_id = r.id \
         ORDER BY r.id, e.kind",
        "SELECT e.id, r.status FROM events e JOIN runs r ON r.id = e.run_id \
         ORDER BY e.id",
        // Per-source WHERE conjuncts push below the join; the
        // cross-source conjunct stays residual.
        "SELECT r.id, e.id FROM runs r JOIN events e ON e.run_id = r.id \
         WHERE r.component = 'etl' AND e.severity = 'info' AND r.start_ms < e.ts_ms \
         ORDER BY r.id, e.id",
        // LEFT JOIN pads, and IS NULL over the padded side anti-joins.
        "SELECT r.id, e.kind FROM runs r LEFT JOIN events e ON e.run_id = r.id \
         ORDER BY r.id, e.kind LIMIT 50",
        "SELECT r.id FROM runs r LEFT JOIN events e ON e.run_id = r.id \
         WHERE e.id IS NULL ORDER BY r.id",
        // WHERE on the padded source must not push below the join even
        // when it names only that source's columns.
        "SELECT r.id, e.severity FROM runs r LEFT JOIN events e ON e.run_id = r.id \
         WHERE e.severity = 'page' ORDER BY r.id",
        // Multi-conjunct ON: equi key plus a residual ON predicate.
        "SELECT r.id, e.id FROM runs r JOIN events e \
         ON e.run_id = r.id AND e.ts_ms > r.start_ms ORDER BY r.id, e.id",
        // Incidents and metrics join through string keys.
        "SELECT r.id, i.key FROM runs r JOIN incidents i ON i.subject = r.component \
         WHERE i.state = 'open' ORDER BY r.id",
        "SELECT r.id, m.name, m.value FROM runs r JOIN metrics m ON m.run_id = r.id \
         ORDER BY r.id, m.name",
        // Grouped join: aggregate above the join result.
        "SELECT i.key, count(*) AS n FROM runs r JOIN incidents i \
         ON i.subject = r.component GROUP BY i.key ORDER BY n DESC, i.key",
        // Non-equi ON: nested-loop fallback on both paths.
        "SELECT r.id, i.key FROM runs r JOIN incidents i ON r.start_ms < i.opened_ms \
         ORDER BY r.id, i.key LIMIT 20",
        // Three sources, left-deep.
        "SELECT r.id, e.kind, i.key FROM runs r JOIN events e ON e.run_id = r.id \
         JOIN incidents i ON i.subject = r.component ORDER BY r.id, e.kind, i.key",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

#[test]
fn pushdown_equivalence_memory_store() {
    let store = MemoryStore::new();
    seed(&store);
    assert_equivalent(&store, &query_grid());
}

#[test]
fn pushdown_equivalence_wal_store() {
    let dir = tempfile::tempdir().unwrap();
    let store = WalStore::open(dir.path().join("pushdown.wal")).unwrap();
    seed(&store);
    assert_equivalent(&store, &query_grid());
}

#[test]
fn selective_query_routes_through_index_and_scans_10x_fewer() {
    // 64 components × 32 runs each: selective enough that the planner's
    // `est × 4 ≤ runs` threshold picks the component index on its own.
    let store = MemoryStore::new();
    for name in (0..64).map(|i| format!("c{i}")) {
        store
            .register_component(ComponentRecord::named(&name))
            .unwrap();
    }
    for i in 0u64..2_048 {
        store
            .log_run(ComponentRunRecord {
                component: format!("c{}", i % 64),
                start_ms: i,
                end_ms: i + 1,
                ..Default::default()
            })
            .unwrap();
    }
    let q = parse("SELECT * FROM component_runs WHERE component = 'c3'").unwrap();

    // Reference: the forced shard scan examines every live run.
    let scan = execute_query_with_route(&store, &q, RoutePreference::ForceScan).unwrap();
    assert_eq!(scan.rows.len(), 32);
    let scan_rows = store.telemetry().unwrap().snapshot().counters["query.rows_scanned"];
    assert_eq!(scan_rows, 2_048, "forced scan examines the whole table");

    // Auto routes through by_component: only the posting list is examined.
    let auto = execute_query(&store, &q).unwrap();
    assert_eq!(auto, scan, "index route must not change results");
    let snap = store.telemetry().unwrap().snapshot();
    let index_rows = snap.counters["query.rows_scanned"] - scan_rows;
    assert_eq!(index_rows, 32, "index examines only the posting list");
    assert!(
        scan_rows >= 10 * index_rows,
        "index path must scan ≥10× fewer rows (scan {scan_rows}, index {index_rows})"
    );
    assert_eq!(snap.counters["query.index_hits_total"], 1);
    assert_eq!(
        snap.counters
            .get("query.index_misses_total")
            .copied()
            .unwrap_or(0),
        0,
        "the chosen route was applicable, so no store-side fallback"
    );
}

/// Regression for the old O(n²) DISTINCT: 10k all-unique projected rows
/// must deduplicate via the hashed canonical-key set in tier-1 test time
/// (the pairwise loose_eq retain took ~50M row comparisons here).
#[test]
fn distinct_10k_unique_rows_is_linear() {
    let store = MemoryStore::new();
    for name in (0..100).map(|i| format!("c{i}")) {
        store
            .register_component(ComponentRecord::named(&name))
            .unwrap();
    }
    for i in 0u64..10_000 {
        store
            .log_run(ComponentRunRecord {
                component: format!("c{}", i % 100),
                start_ms: i,
                end_ms: i + 2,
                ..Default::default()
            })
            .unwrap();
    }
    let q = parse("SELECT DISTINCT id, component FROM component_runs").unwrap();
    let r = execute_query(&store, &q).unwrap();
    assert_eq!(r.rows.len(), 10_000, "all rows unique, none dropped");
    // And a collapsing projection still deduplicates correctly.
    let q = parse("SELECT DISTINCT component FROM component_runs").unwrap();
    let r = execute_query(&store, &q).unwrap();
    assert_eq!(r.rows.len(), 100);
    let naive = execute_query_unoptimized(&store, &q).unwrap();
    assert_eq!(r, naive);
}

/// Aggregates over non-finite metric values: NaN propagates through
/// SUM/AVG, MIN/MAX order NaN deterministically (total_cmp), and the
/// pushed, forced, and naive paths agree bitwise — on the memory store
/// AND on a WAL store reopened after the writes. The WAL's sentinel
/// codec carries NaN/±Inf through the JSON log, so replayed non-finite
/// points aggregate exactly like live ones.
#[test]
fn aggregate_equivalence_with_nonfinite_metrics() {
    use mltrace::store::aggregate::canonical_row_key;

    fn seed_nonfinite(store: &dyn Store) {
        seed(store);
        for (name, value) in [
            ("spikes", f64::NAN),
            ("spikes", f64::INFINITY),
            ("spikes", f64::NEG_INFINITY),
            ("spikes", 1.5),
            ("spikes", -0.0),
            ("floor", f64::NAN),
        ] {
            store
                .log_metric(MetricRecord {
                    component: "etl".into(),
                    run_id: None,
                    name: name.into(),
                    value,
                    ts_ms: 9_000,
                })
                .unwrap();
        }
    }

    fn check(store: &dyn Store) {
        for sql in [
            "SELECT name, count(*) AS n, sum(value) AS s, avg(value) AS a FROM metrics \
             GROUP BY name ORDER BY name",
            "SELECT name, min(value) AS lo, max(value) AS hi FROM metrics \
             GROUP BY name ORDER BY name",
            "SELECT count(value) AS n, sum(value) AS s FROM metrics WHERE name = 'spikes'",
            "SELECT name, avg(value) AS a FROM metrics GROUP BY name \
             HAVING count(*) > 1 ORDER BY name",
        ] {
            let q = parse(sql).unwrap();
            let fast = execute_query(store, &q).unwrap();
            let slow = execute_query_unoptimized(store, &q).unwrap();
            // `assert_eq!` on rows would reject NaN == NaN; compare through
            // the canonical keys, which encode NaN by its exact bits.
            assert_eq!(fast.columns, slow.columns, "{sql}");
            assert_eq!(fast.rows.len(), slow.rows.len(), "{sql}");
            for (a, b) in fast.rows.iter().zip(&slow.rows) {
                assert_eq!(
                    canonical_row_key(a),
                    canonical_row_key(b),
                    "bitwise row divergence for: {sql}"
                );
            }
        }
    }

    let mem = MemoryStore::new();
    seed_nonfinite(&mem);
    check(&mem);

    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("nonfinite.wal");
    {
        let wal = WalStore::open(&path).unwrap();
        seed_nonfinite(&wal);
        wal.sync().unwrap();
        check(&wal);
    }
    // Reopen: the sentinel-encoded points must replay byte-exactly.
    let replayed = WalStore::open(&path).unwrap();
    check(&replayed);
}

/// The parameterized grid for the prepared-statement axis: each entry is
/// a template with `?` placeholders, the values to bind, and the literal
/// spelling the bound query must be indistinguishable from. Binding
/// happens before planning, so for every cell the PREPAREd execution
/// must match the literal one row for row AND produce the identical
/// EXPLAIN plan — same route, same pushdown, same pruning.
fn prepared_grid() -> Vec<(&'static str, Vec<Value>, &'static str)> {
    vec![
        (
            "SELECT * FROM component_runs WHERE component = ? ORDER BY id",
            vec![Value::Str("etl".into())],
            "SELECT * FROM component_runs WHERE component = 'etl' ORDER BY id",
        ),
        (
            "SELECT * FROM runs WHERE start_ms BETWEEN ? AND ? ORDER BY id LIMIT 25",
            vec![Value::Int(1200), Value::Int(1800)],
            "SELECT * FROM runs WHERE start_ms BETWEEN 1200 AND 1800 ORDER BY id LIMIT 25",
        ),
        (
            "SELECT * FROM runs WHERE status = ? AND component = ? ORDER BY id",
            vec![Value::Str("failed".into()), Value::Str("train".into())],
            "SELECT * FROM runs WHERE status = 'failed' AND component = 'train' ORDER BY id",
        ),
        (
            "SELECT component, count(*) AS n, avg(duration_ms) AS a FROM runs \
             WHERE start_ms >= ? GROUP BY component HAVING count(*) > ? ORDER BY component",
            vec![Value::Int(1500), Value::Int(5)],
            "SELECT component, count(*) AS n, avg(duration_ms) AS a FROM runs \
             WHERE start_ms >= 1500 GROUP BY component HAVING count(*) > 5 ORDER BY component",
        ),
        (
            "SELECT * FROM metrics WHERE component = ? AND value > ? LIMIT 7",
            vec![Value::Str("infer".into()), Value::Float(0.6)],
            "SELECT * FROM metrics WHERE component = 'infer' AND value > 0.6 LIMIT 7",
        ),
        (
            "SELECT * FROM events WHERE severity = ? AND ts_ms BETWEEN ? AND ? \
             ORDER BY ts_ms DESC",
            vec![
                Value::Str("page".into()),
                Value::Int(2050),
                Value::Int(2200),
            ],
            "SELECT * FROM events WHERE severity = 'page' AND ts_ms BETWEEN 2050 AND 2200 \
             ORDER BY ts_ms DESC",
        ),
        (
            "SELECT r.id, e.kind FROM runs r JOIN events e ON e.run_id = r.id \
             WHERE r.component = ? AND e.severity = ? ORDER BY r.id, e.kind",
            vec![Value::Str("etl".into()), Value::Str("info".into())],
            "SELECT r.id, e.kind FROM runs r JOIN events e ON e.run_id = r.id \
             WHERE r.component = 'etl' AND e.severity = 'info' ORDER BY r.id, e.kind",
        ),
        (
            "SELECT * FROM diagnoses WHERE incident_key = ? ORDER BY rank",
            vec![Value::Str("infer/accuracy".into())],
            "SELECT * FROM diagnoses WHERE incident_key = 'infer/accuracy' ORDER BY rank",
        ),
        // A parameter the pushdown can't use (OR) still binds correctly.
        (
            "SELECT * FROM runs WHERE component = ? OR status = ? ORDER BY id",
            vec![Value::Str("etl".into()), Value::Str("failed".into())],
            "SELECT * FROM runs WHERE component = 'etl' OR status = 'failed' ORDER BY id",
        ),
    ]
}

/// PREPARE + bind must be indistinguishable from the literal query:
/// identical result rows and identical EXPLAIN output (same route, same
/// pushdown decisions), because placeholders are substituted before the
/// planner ever sees the query.
fn assert_prepared_equivalent(store: &dyn Store) {
    for (template, params, literal) in prepared_grid() {
        let stmt =
            prepare(template).unwrap_or_else(|e| panic!("prepare failed for {template}: {e}"));
        assert_eq!(stmt.param_count(), params.len(), "{template}");
        let bound = execute_prepared(store, &stmt, &params)
            .unwrap_or_else(|e| panic!("exec failed for {template}: {e}"));
        let lit =
            execute(store, literal).unwrap_or_else(|e| panic!("literal failed for {literal}: {e}"));
        assert_eq!(bound, lit, "prepared diverged from literal for: {template}");

        let explain_stmt = prepare(&format!("EXPLAIN {template}")).unwrap();
        assert!(explain_stmt.is_explain());
        let bound_plan = execute_prepared(store, &explain_stmt, &params)
            .unwrap_or_else(|e| panic!("prepared EXPLAIN failed for {template}: {e}"));
        let lit_plan = execute(store, &format!("EXPLAIN {literal}")).unwrap();
        assert_eq!(
            bound_plan, lit_plan,
            "prepared EXPLAIN route diverged from literal for: {template}"
        );
    }
}

#[test]
fn prepared_statements_match_literals_memory_store() {
    let store = MemoryStore::new();
    seed(&store);
    assert_prepared_equivalent(&store);
}

#[test]
fn prepared_statements_match_literals_wal_store() {
    let dir = tempfile::tempdir().unwrap();
    let store = WalStore::open(dir.path().join("prepared.wal")).unwrap();
    seed(&store);
    assert_prepared_equivalent(&store);
}

/// Binding is strict: wrong arity fails, and the same statement re-binds
/// cleanly with different parameters (the whole point of PREPARE).
#[test]
fn prepared_statements_rebind_and_check_arity() {
    let store = MemoryStore::new();
    seed(&store);
    let stmt = prepare("SELECT count(*) AS n FROM runs WHERE component = ?").unwrap();
    assert!(stmt.bind(&[]).is_err(), "missing parameter must fail");
    assert!(
        stmt.bind(&[Value::Str("etl".into()), Value::Int(1)])
            .is_err(),
        "extra parameter must fail"
    );
    for component in COMPONENTS {
        let bound =
            execute_prepared(store_ref(&store), &stmt, &[Value::Str(component.into())]).unwrap();
        let lit = execute(
            store_ref(&store),
            &format!("SELECT count(*) AS n FROM runs WHERE component = '{component}'"),
        )
        .unwrap();
        assert_eq!(bound, lit, "rebind diverged for {component}");
    }
}

fn store_ref(store: &MemoryStore) -> &dyn Store {
    store
}

/// The parallel per-shard fold must be invariant to worker count: one
/// worker (sequential) and sixteen produce identical groups — including
/// bitwise-identical SUM/AVG floats, which is what the exact
/// superaccumulator buys over naive per-shard f64 addition.
#[test]
fn partial_aggregates_invariant_to_worker_count() {
    let one = MemoryStore::new();
    one.set_scan_workers(1);
    seed(&one);
    let many = MemoryStore::new();
    many.set_scan_workers(16);
    seed(&many);
    for sql in [
        "SELECT component, count(*) AS n, avg(duration_ms) AS a FROM runs \
         GROUP BY component ORDER BY component",
        "SELECT status, sum(duration_ms) AS s FROM runs GROUP BY status ORDER BY status",
        "SELECT count(*) AS n, sum(start_ms) AS s FROM runs",
    ] {
        let q = parse(sql).unwrap();
        let a = execute_query(&one, &q).unwrap();
        let b = execute_query(&many, &q).unwrap();
        assert_eq!(a, b, "worker-count divergence for: {sql}");
        let naive = execute_query_unoptimized(&many, &q).unwrap();
        assert_eq!(b, naive, "parallel fold diverged from reference: {sql}");
    }
}
