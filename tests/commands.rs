//! F4: the eight UI commands (§5, Figure 4) exercised against the taxi
//! demo, including the text renderings a terminal user would see.

use mltrace::core::Commands;
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn demo() -> TaxiPipeline {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(1200, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    p.ingest_and_serve(
        200,
        Incident::None,
        ServeOptions {
            incident: Incident::None,
            per_trip_outputs: false,
        },
    )
    .unwrap();
    p.monitor().unwrap();
    p
}

#[test]
fn command_1_history() {
    let p = demo();
    let cmds = Commands::new(p.ml());
    let h = cmds.history("inference", 10).unwrap();
    assert_eq!(h.entries.len(), 1);
    let rendered = h.render();
    assert!(rendered.contains("history of 'inference'"));
    assert!(rendered.contains("accuracy"));
    assert!(rendered.contains("✓"));
}

#[test]
fn command_2_trace() {
    let p = demo();
    let mut cmds = Commands::new(p.ml());
    let t = cmds.trace("predictions-0.csv").unwrap();
    let rendered = t.render();
    // The Figure 4 trace view: inference at the root, sources at leaves.
    assert!(rendered.starts_with("✓ inference"));
    assert!(rendered.contains("featurize_online"));
    assert!(rendered.contains("← "));
    assert!(t.depth() >= 4);
}

#[test]
fn command_3_inspect() {
    let p = demo();
    let cmds = Commands::new(p.ml());
    let latest = p.ml().store().latest_run("train").unwrap().unwrap();
    let run = cmds.inspect(latest.id.0).unwrap();
    let rendered = cmds.render_inspect(&run);
    assert!(rendered.contains("train"));
    assert!(rendered.contains("status:   success"));
    assert!(rendered.contains("code:"));
    assert!(rendered.contains("tip_model-0.json"));
}

#[test]
fn commands_4_5_6_flag_unflag_review() {
    let p = demo();
    let mut cmds = Commands::new(p.ml());
    // 4: flag
    assert!(!cmds.flag("predictions-0.csv").unwrap());
    // 6: review
    let review = cmds.review_flagged().unwrap();
    assert_eq!(review.flagged, vec!["predictions-0.csv".to_string()]);
    assert!(!review.ranked.is_empty());
    assert!(review.render().contains("⚑ predictions-0.csv"));
    // 5: unflag
    assert!(cmds.unflag("predictions-0.csv").unwrap());
    assert!(cmds.review_flagged().unwrap().flagged.is_empty());
    // Flagging something unknown errors cleanly.
    assert!(cmds.flag("no-such-output").is_err());
}

#[test]
fn command_7_stale() {
    let p = demo();
    // Six weeks later, nothing has been refreshed.
    p.clock().advance(42 * mltrace::store::MS_PER_DAY);
    let cmds = Commands::new(p.ml());
    let entries = cmds.stale(None).unwrap();
    assert_eq!(entries.len(), 8, "all components evaluated");
    let stale_components: Vec<&str> = entries
        .iter()
        .filter(|e| !e.reasons.is_empty())
        .map(|e| e.component.as_str())
        .collect();
    assert!(
        stale_components.contains(&"inference"),
        "inference depends on 6-week-old artifacts: {stale_components:?}"
    );
    let rendered = cmds.render_stale(&entries);
    assert!(rendered.contains("STALE"));
    assert!(rendered.contains("days old"));
}

#[test]
fn command_8_recent() {
    let p = demo();
    let cmds = Commands::new(p.ml());
    let recent = cmds.recent(3).unwrap();
    assert_eq!(recent.len(), 3);
    assert_eq!(recent[0].component, "monitor", "newest first");
    // Larger than history returns everything.
    let all = cmds.recent(1000).unwrap();
    assert!(all.len() >= 8);
}
