//! E10: §5.3's efficiency/utility trade-off — compaction keeps aggregate
//! queries answerable after raw traces are dropped — and GDPR
//! forward-trace deletion through the live pipeline.

use mltrace::core::{Commands, Mltrace, RunSpec};
use mltrace::store::deletion::{delete_derived, forward_closure};
use mltrace::store::retention::compact_older_than_days;
use mltrace::store::{ManualClock, Store, MS_PER_DAY};
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn aged_instance() -> (Mltrace, std::sync::Arc<ManualClock>) {
    let clock = ManualClock::starting_at(1_000_000);
    let ml = Mltrace::with_clock(clock.clone());
    // 60 daily etl runs.
    for day in 0..60u64 {
        ml.run(
            "etl",
            RunSpec::new().output("raw.csv").notes(format!("day {day}")),
            |ctx| {
                ctx.log_metric("rows", 100.0 + day as f64);
                Ok(())
            },
        )
        .unwrap();
        clock.advance(MS_PER_DAY);
    }
    (ml, clock)
}

#[test]
fn compaction_preserves_history_answers() {
    let (ml, _clock) = aged_instance();
    let store = ml.store();
    assert_eq!(store.stats().unwrap().runs, 60);

    // Compact everything older than 30 days.
    let report = compact_older_than_days(store.as_ref(), ml.now_ms(), 30).unwrap();
    assert_eq!(report.runs_compacted, 30);
    assert_eq!(report.windows_written, 30, "daily windows");
    assert_eq!(store.stats().unwrap().runs, 30);

    // The history command still answers over the compacted range.
    let cmds = Commands::new(&ml);
    let h = cmds.history("etl", 100).unwrap();
    assert_eq!(h.entries.len(), 30, "raw runs for the recent window");
    assert_eq!(h.compacted.len(), 30, "aggregates for the old window");
    let total_runs: u64 = h.compacted.iter().map(|s| s.run_count).sum();
    assert_eq!(total_runs, 30);
    // Metric aggregates survived.
    let first = &h.compacted[0];
    let rows = first.metric_aggregates.get("rows").unwrap();
    assert_eq!(rows.count, 1);
    assert_eq!(rows.min, 100.0);
    let rendered = h.render();
    assert!(rendered.contains("[compacted]"));
}

#[test]
fn compaction_is_incremental_over_time() {
    let (ml, clock) = aged_instance();
    let store = ml.store();
    compact_older_than_days(store.as_ref(), ml.now_ms(), 30).unwrap();
    // Ten more days pass; compact again.
    clock.advance(10 * MS_PER_DAY);
    let report = compact_older_than_days(store.as_ref(), ml.now_ms(), 30).unwrap();
    assert_eq!(report.runs_compacted, 10);
    let cmds = Commands::new(&ml);
    let h = cmds.history("etl", 100).unwrap();
    assert_eq!(h.entries.len(), 20);
    assert_eq!(h.compacted.len(), 40);
}

#[test]
fn gdpr_deletion_through_the_pipeline() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(800, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    p.ingest_and_serve(200, Incident::None, ServeOptions::default())
        .unwrap();
    let store = p.ml().store();
    let before = store.stats().unwrap();

    // A client's raw batch must be purged: everything derived from
    // clean_trips-0.csv (featurization, splits, model, predictions).
    let closure = forward_closure(store.as_ref(), &["clean_trips-0.csv".to_string()]).unwrap();
    assert!(
        closure.pointers.iter().any(|p| p.starts_with("tip_model")),
        "model derives from client data: {:?}",
        closure.pointers
    );
    assert!(closure.runs.len() >= 3);

    let report = delete_derived(store.as_ref(), &["clean_trips-0.csv".to_string()], true).unwrap();
    assert!(report.runs_deleted >= 3);
    assert!(
        report.components_needing_rerun.contains("train"),
        "caller is told production will break without a rerun: {:?}",
        report.components_needing_rerun
    );
    let after = store.stats().unwrap();
    assert!(after.runs < before.runs);
    // Root kept; derived artifacts gone.
    assert!(store.io_pointer("clean_trips-0.csv").unwrap().is_some());
    assert!(store.io_pointer("tip_model-0.json").unwrap().is_none());
    // Untainted components survive (ingest produced, never consumed).
    assert!(!store.runs_for_component("ingest").unwrap().is_empty());

    // The lineage graph rebuilds cleanly after the deletion.
    let mut cmds = Commands::new(p.ml());
    assert!(cmds.trace("tip_model-0.json").is_err());
}

#[test]
fn wal_rewrite_reclaims_space_after_retention() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("retained.wal");
    let store = mltrace::store::WalStore::open(&path).unwrap();
    for i in 0..200u64 {
        store
            .log_run(mltrace::store::ComponentRunRecord {
                component: "etl".into(),
                start_ms: i * MS_PER_DAY / 10,
                end_ms: i * MS_PER_DAY / 10 + 5,
                outputs: vec![format!("out-{i}")],
                ..Default::default()
            })
            .unwrap();
    }
    store
        .register_component(mltrace::store::ComponentRecord::named("etl"))
        .unwrap();
    compact_older_than_days(&store, 200 * MS_PER_DAY / 10, 2).unwrap();
    let (before, after) = store.rewrite().unwrap();
    assert!(after < before, "rewrite shrinks: {before} → {after}");
    drop(store);
    // Replay after rewrite preserves summaries and surviving runs.
    let store = mltrace::store::WalStore::open(&path).unwrap();
    let stats = store.stats().unwrap();
    assert!(stats.runs < 200);
    assert!(stats.summaries > 0);
}
