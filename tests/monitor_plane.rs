//! End-to-end drift loop through the monitoring plane (ISSUE 7 /
//! EXPERIMENTS E15): injected distribution shift → window roll-over →
//! `drift_scored` journal event → deduped incident → row in the
//! `summaries` SQL table → identical plane state after a WAL reopen.

use mltrace::query::execute;
use mltrace::store::{
    EventFilter, EventKind, EventSeverity, IncidentState, MetricRecord, Store, Value, WalStore,
};

/// `n` points of a uniform-ish regime centred near `base + 0.5`, with
/// strictly increasing timestamps starting at `ts0`.
fn points(component: &str, metric: &str, base: f64, n: usize, ts0: u64) -> Vec<MetricRecord> {
    (0..n)
        .map(|i| MetricRecord {
            component: component.to_string(),
            run_id: None,
            name: metric.to_string(),
            value: base + (i % 100) as f64 / 100.0,
            ts_ms: ts0 + i as u64,
        })
        .collect()
}

fn drift_events(store: &WalStore) -> Vec<mltrace::store::ObservabilityEvent> {
    store
        .scan_events(
            None,
            &EventFilter::all().with_kind(EventKind::DriftScored),
            None,
        )
        .unwrap()
}

#[test]
fn drift_loop_end_to_end() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("drift.wal");
    let summaries_online;
    {
        let store = WalStore::open(&path).unwrap();

        // Window 1: the baseline regime fills the default 256-point window
        // and is frozen as the drift reference — nothing is scored yet.
        store
            .log_metrics(points("inference", "prediction", 0.0, 256, 0))
            .unwrap();
        let summaries = store.monitor_summaries().unwrap();
        let s = &summaries[0];
        assert_eq!((s.windows, s.reference_points), (1, 256));
        assert_eq!(s.drift_score, 0.0);
        assert!(
            drift_events(&store).is_empty(),
            "reference freeze is silent"
        );

        // Window 2: a +10 mean shift. The roll-over scores against the
        // reference, journals a paged drift_scored event, and opens an
        // incident keyed drift:<component>/<metric>.
        store
            .log_metrics(points("inference", "prediction", 10.0, 256, 1_000))
            .unwrap();
        let events = drift_events(&store);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, EventSeverity::Page);
        assert_eq!(events[0].component, "inference");
        assert!(
            matches!(events[0].payload.get("score"), Some(Value::Float(f)) if *f > 0.0),
            "payload: {:?}",
            events[0].payload
        );
        let drift: Vec<_> = store
            .incidents()
            .unwrap()
            .into_iter()
            .filter(|i| i.key.starts_with("drift:"))
            .collect();
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].key, "drift:inference/prediction");
        assert_eq!(drift[0].state, IncidentState::Open);
        assert_eq!(drift[0].fire_count, 1);

        // Window 3: still shifted — the re-fire folds into the existing
        // incident instead of opening a second one.
        store
            .log_metrics(points("inference", "prediction", 10.0, 256, 2_000))
            .unwrap();
        assert_eq!(drift_events(&store).len(), 2);
        let drift: Vec<_> = store
            .incidents()
            .unwrap()
            .into_iter()
            .filter(|i| i.key.starts_with("drift:"))
            .collect();
        assert_eq!(drift.len(), 1, "refire dedups into the open incident");
        assert_eq!(drift[0].fire_count, 2);

        // The SQL surface sees the scored key.
        let r = execute(
            &store,
            "SELECT component, metric, drift_score, drift_method FROM summaries WHERE drift_score > 0",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::from("inference"));
        assert_eq!(r.rows[0][1], Value::from("prediction"));
        assert!(matches!(r.rows[0][2], Value::Float(f) if f > 0.0));
        assert!(matches!(&r.rows[0][3], Value::Str(m) if !m.is_empty()));

        summaries_online = store.monitor_summaries().unwrap();
        store.sync().unwrap();
    }

    // Cold open: replay rebuilds the identical plane state without
    // re-journaling the drift events, and the re-armed dedup folds a
    // post-restart breach into the persisted incident.
    let store = WalStore::open(&path).unwrap();
    assert_eq!(store.monitor_summaries().unwrap(), summaries_online);
    assert_eq!(
        drift_events(&store).len(),
        2,
        "replay must not duplicate drift events"
    );
    store
        .log_metrics(points("inference", "prediction", 10.0, 256, 3_000))
        .unwrap();
    assert_eq!(drift_events(&store).len(), 3);
    let drift: Vec<_> = store
        .incidents()
        .unwrap()
        .into_iter()
        .filter(|i| i.key.starts_with("drift:"))
        .collect();
    assert_eq!(
        drift.len(),
        1,
        "restart re-arms dedup, no duplicate incident"
    );
    assert_eq!(drift[0].state, IncidentState::Open);
    assert_eq!(drift[0].fire_count, 3);
}

#[test]
fn plane_state_survives_checkpoint_and_segmented_replay() {
    // Same replay invariant when the history is split across a snapshot
    // (imported state) and post-checkpoint log records.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("ckpt.wal");
    let online;
    {
        let store = WalStore::open(&path).unwrap();
        store
            .log_metrics(points("etl", "rows", 0.0, 300, 0))
            .unwrap();
        store.checkpoint().unwrap();
        store
            .log_metrics(points("etl", "rows", 4.0, 300, 5_000))
            .unwrap();
        online = store.monitor_summaries().unwrap();
        store.sync().unwrap();
    }
    let replayed = WalStore::open(&path).unwrap();
    assert_eq!(replayed.monitor_summaries().unwrap(), online);
}
