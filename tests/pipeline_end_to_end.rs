//! F1: the full Figure-1 pipeline, instantiated and observed end to end,
//! including durability (WAL restart) of the observability log itself.

use mltrace::core::{build_graph, Commands, Mltrace, RunSpec};
use mltrace::provenance::{component_summary, topo_order};
use mltrace::store::{Store, WalStore};
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline, COMPONENTS};
use std::sync::Arc;

#[test]
fn full_lifecycle_logs_every_component() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(1500, Incident::None).unwrap();
    let train = p.train(&df, true).unwrap();
    assert!(train.train_accuracy > 0.6);
    for _ in 0..3 {
        p.ingest_and_serve(300, Incident::None, ServeOptions::default())
            .unwrap();
    }
    p.monitor().unwrap();

    let store = p.ml().store();
    for c in COMPONENTS {
        assert!(
            !store.runs_for_component(c).unwrap().is_empty(),
            "component {c} has no runs"
        );
    }
    let stats = store.stats().unwrap();
    assert_eq!(stats.components, COMPONENTS.len());
    assert!(
        stats.runs >= 14,
        "ingest+clean ×4, featurize+split+train, serve ×3 ×2, monitor"
    );
    assert!(stats.io_pointers > 10);
    assert!(stats.metric_points > 5);
}

#[test]
fn provenance_graph_is_a_dag_spanning_the_pipeline() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(1000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    p.ingest_and_serve(300, Incident::None, ServeOptions::default())
        .unwrap();

    let graph = build_graph(p.ml().store().as_ref()).unwrap();
    assert!(graph.run_count() >= 8);
    // Dependency edges form a DAG.
    let order = topo_order(&graph).expect("execution-layer deps are acyclic");
    assert_eq!(order.len(), graph.run_count());
    // Summaries see every component that ran.
    let summary = component_summary(&graph);
    assert!(summary.contains_key("inference"));
    assert!(summary.contains_key("ingest"));
    assert_eq!(summary["inference"].failures, 0);
}

#[test]
fn observability_log_survives_restart() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("mltrace.wal");
    let run_id;
    {
        let ml = Mltrace::open(&path).unwrap();
        let report = ml
            .run(
                "etl",
                RunSpec::new().output("raw.csv").capture("rows", 10i64),
                |ctx| {
                    ctx.log_metric("rows", 10.0);
                    Ok(())
                },
            )
            .unwrap();
        run_id = report.run_id;
        ml.run(
            "clean",
            RunSpec::new().input("raw.csv").output("clean.csv"),
            |_| Ok(()),
        )
        .unwrap();
    }
    // Restart: a new process opens the same WAL.
    let ml = Mltrace::open(&path).unwrap();
    let store = ml.store();
    assert_eq!(store.stats().unwrap().runs, 2);
    let run = store.run(run_id).unwrap().unwrap();
    assert_eq!(run.component, "etl");
    assert_eq!(store.metrics("etl", "rows").unwrap().len(), 1);
    // Lineage still reconstructs after restart.
    let mut cmds = Commands::new(&ml);
    let trace = cmds.trace("clean.csv").unwrap();
    assert_eq!(trace.depth(), 2);
    // And new runs append with fresh ids.
    let next = ml
        .run("etl", RunSpec::new().output("raw.csv"), |_| Ok(()))
        .unwrap();
    assert!(next.run_id > run_id);
}

#[test]
fn wal_backed_pipeline_store_can_be_shared() {
    // The paper: "the MLTRACE database can be hosted on a remote server so
    // that artifacts, logs, and metrics can be accessed by anyone" — here,
    // one store serving a writer and a concurrent reader.
    let dir = tempfile::tempdir().unwrap();
    let store: Arc<dyn Store> = Arc::new(WalStore::open(dir.path().join("shared.wal")).unwrap());
    let ml = Mltrace::with_store(Arc::clone(&store), Arc::new(mltrace::store::SystemClock));

    let writer = {
        let ml = &ml;
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                for i in 0..20 {
                    ml.run(
                        "producer",
                        RunSpec::new().output(format!("artifact-{i}")),
                        |_| Ok(()),
                    )
                    .unwrap();
                }
            });
            // Concurrent reader polls the shared store.
            let mut seen = 0;
            while seen < 20 {
                seen = store.runs_for_component("producer").unwrap().len();
                std::thread::yield_now();
            }
            h.join().unwrap();
            seen
        })
    };
    assert_eq!(writer, 20);
}

#[test]
fn failures_are_first_class_observability_events() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    // Serving before training fails — but the failure itself is logged
    // nowhere (rejected before any component ran), while a failing body
    // *is* logged.
    let ml = p.ml();
    let err = ml.run("flaky", RunSpec::new(), |_| {
        Err::<(), _>("upstream timeout".into())
    });
    assert!(err.is_err());
    let run = ml.store().latest_run("flaky").unwrap().unwrap();
    assert_eq!(run.status, mltrace::store::RunStatus::Failed);

    // The problematic-component summary surfaces it.
    let df = p.ingest(500, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    let graph = build_graph(p.ml().store().as_ref()).unwrap();
    let now = p.ml().now_ms();
    let top = mltrace::provenance::most_problematic(&graph, now, 10 * 24 * 3600 * 1000, 3);
    assert_eq!(top[0].0.component, "flaky");
}
