//! E8: §4.1's alert-fatigue argument, quantified — per-feature threshold
//! alerting vs SLA-gated alerting over the same faulty pipeline stream.

use mltrace::metrics::{AlertManager, AlertRule, Comparator, Severity, Sla, SlaStatus};
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};

/// Run the same 20-batch stream (2 real incidents) through both alerting
/// philosophies and compare page volume.
#[test]
fn sla_gated_alerting_beats_per_feature_fatigue() {
    // Ambient covariate drift: feature means wander while the model's
    // accuracy barely moves — exactly the regime where per-feature
    // alarms mislead (§4.1: "what would a user do if ... one of their
    // thousand features' mean value dropped by 50%?").
    let mut p = TaxiPipeline::new(TaxiConfig {
        accuracy_floor: 0.80,
        drift: mltrace::taxi::DriftProfile {
            distance_shift_per_trip: 5e-5,
            ..Default::default()
        },
        ..Default::default()
    });
    let df = p.ingest(2000, Incident::None).unwrap();
    p.train(&df, true).unwrap();

    // Per-feature alerting: a threshold rule on every numeric feature's
    // batch mean (the "what would a user do with this?" alarm).
    let features = ["distance_km", "duration_min", "fare", "passengers", "hour"];
    let mut per_feature = AlertManager::new();
    for f in &features {
        per_feature.add_rule(AlertRule {
            id: format!("feature-mean-{f}"),
            metric: format!("mean:{f}"),
            comparator: Comparator::Lte,
            // Deliberately tight: ±5% of the training mean, the kind of
            // threshold teams set "to be safe".
            threshold: 1.05,
            severity: Severity::Page,
            cooldown_ms: 0,
        });
        per_feature.add_rule(AlertRule {
            id: format!("feature-mean-lo-{f}"),
            metric: format!("mean_ratio_lo:{f}"),
            comparator: Comparator::Gte,
            threshold: 0.95,
            severity: Severity::Page,
            cooldown_ms: 0,
        });
    }

    // SLA-gated alerting: one business rule, set below the healthy
    // operating point (~0.73) but above the broken one (~0.51).
    let sla = Sla::mean_at_least("accuracy-sla", "accuracy", 0.65, 3);
    let mut gated = AlertManager::new();

    // Training means as the reference.
    let train_means: Vec<f64> = features
        .iter()
        .map(|f| {
            let v = df.float_column(f).unwrap();
            v.iter().sum::<f64>() / v.len() as f64
        })
        .collect();

    let mut accuracy_series = Vec::new();
    let mut real_incidents = 0;
    for batch in 0..20u64 {
        let incident = if (7..=8).contains(&batch) || (14..=15).contains(&batch) {
            real_incidents += 1;
            Incident::ServeSkew { scale: -50.0 }
        } else {
            Incident::None
        };
        let frame = p.ingest(300, Incident::None).unwrap();
        let report = p
            .serve(
                &frame,
                ServeOptions {
                    incident,
                    per_trip_outputs: false,
                },
            )
            .unwrap();
        accuracy_series.push(report.accuracy);

        // Feed per-feature monitors with batch means (relative to train).
        for (f, &train_mean) in features.iter().zip(train_means.iter()) {
            let v = frame.float_column(f).unwrap();
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let ratio = mean / train_mean;
            per_feature.observe(&format!("mean:{f}"), ratio, batch);
            per_feature.observe(&format!("mean_ratio_lo:{f}"), ratio, batch);
        }
        // Feed the SLA monitor.
        if let Some(alert) = gated.observe_sla(&sla, &accuracy_series, batch) {
            assert_eq!(alert.severity, Severity::Page);
        }
    }

    let noisy_pages = per_feature.stats().pages;
    let gated_pages = gated.stats().pages;
    assert_eq!(real_incidents, 4, "two incidents of two batches each");
    assert!(
        gated_pages >= 1,
        "the SLA monitor must catch the incident window"
    );
    assert!(
        gated_pages <= 10,
        "gated paging stays near the incident windows, got {gated_pages}"
    );
    assert!(
        noisy_pages >= gated_pages * 3,
        "per-feature fatigue: {noisy_pages} pages vs {gated_pages} gated"
    );
}

#[test]
fn sla_evaluation_states() {
    let sla = Sla::mean_at_least("recall-90", "recall", 0.9, 4);
    assert!(matches!(
        sla.evaluate(&[]),
        SlaStatus::InsufficientData { .. }
    ));
    assert!(!sla.evaluate(&[0.92, 0.91, 0.95, 0.93]).is_violated());
    assert!(sla.evaluate(&[0.92, 0.5, 0.5, 0.5]).is_violated());
}

#[test]
fn cooldown_compresses_alert_storms_end_to_end() {
    let mut m = AlertManager::new();
    m.add_rule(AlertRule {
        id: "acc".into(),
        metric: "accuracy".into(),
        comparator: Comparator::Gte,
        threshold: 0.9,
        severity: Severity::Page,
        cooldown_ms: 60_000,
    });
    // A 30-minute outage sampled every 30 s: 60 violations.
    let mut fired = 0;
    for i in 0..60u64 {
        fired += m.observe("accuracy", 0.4, i * 30_000).len();
    }
    assert_eq!(fired, 30, "one page per cooldown window");
    assert_eq!(m.stats().suppressed, 30);
}
