//! Extending the demo pipeline with a user-defined component, as the
//! paper intends ("users can create their own types of components if they
//! want to have finer-grained control", §3.2): a random-forest challenger
//! trained beside the logistic champion, with the comparison flowing
//! through the observability layer (metrics + SQL + artifacts).

use mltrace::core::RunSpec;
use mltrace::metrics::{roc_auc, ConfusionMatrix};
use mltrace::pipeline::{ForestConfig, RandomForest};
use mltrace::query::execute;
use mltrace::store::Value;
use mltrace::taxi::{labels, Featurizer, Incident, TaxiConfig, TaxiPipeline};

#[test]
fn challenger_model_trains_through_the_same_observability_layer() {
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(2500, Incident::None).unwrap();
    let champion = p.train(&df, true).unwrap();

    // The user's own component: featurize + fit a forest, logged like any
    // built-in stage. The featurizer artifact is shared with the champion
    // path via its pointer name.
    let featurizer_bytes = {
        let pointer = p
            .ml()
            .store()
            .io_pointer("featurizer.json")
            .unwrap()
            .unwrap();
        p.ml()
            .artifacts()
            .get(&pointer.artifact.expect("featurizer stored"))
            .unwrap()
    };
    let featurizer: Featurizer = serde_json::from_slice(&featurizer_bytes).unwrap();
    let matrix = featurizer.transform(&df).unwrap();
    let truth = labels(&df).unwrap();

    let ml = p.ml();
    let report = ml
        .run(
            "train_challenger",
            RunSpec::new()
                .input("featurizer.json")
                .input("clean_trips-0.csv")
                .output("challenger_model.json")
                .code("forest-v1"),
            |ctx| {
                let split = matrix.len() * 3 / 4;
                let forest = RandomForest::fit(
                    &matrix[..split],
                    &truth[..split],
                    ForestConfig {
                        trees: 10,
                        ..Default::default()
                    },
                )
                .map_err(|e| e.to_string())?;
                let probs = forest
                    .predict_proba(&matrix[split..])
                    .map_err(|e| e.to_string())?;
                let preds: Vec<bool> = probs.iter().map(|&x| x >= 0.5).collect();
                let acc = ConfusionMatrix::from_pairs(&preds, &truth[split..]).accuracy();
                let auc = roc_auc(&probs, &truth[split..]);
                ctx.log_metric("test_accuracy", acc);
                ctx.log_metric("auc", auc);
                ctx.save_artifact(
                    "challenger_model.json",
                    &serde_json::to_vec(&forest).unwrap(),
                );
                Ok((acc, auc))
            },
        )
        .unwrap();
    let (challenger_acc, challenger_auc) = report.value;
    assert!(challenger_acc > 0.6, "challenger learns: {challenger_acc}");
    assert!(challenger_auc > 0.6);

    // Lineage: the challenger depends on the featurizer run.
    let run = p.ml().store().run(report.run_id).unwrap().unwrap();
    assert!(
        !run.dependencies.is_empty(),
        "featurizer dependency inferred"
    );

    // The comparison is a SQL query over the shared metric log.
    let result = execute(
        p.ml().store().as_ref(),
        "SELECT component, max(value) AS acc FROM metrics \
         WHERE name = 'test_accuracy' GROUP BY component ORDER BY component",
    )
    .unwrap();
    assert_eq!(result.rows.len(), 2, "champion and challenger both logged");
    let acc_of = |component: &str| -> f64 {
        result
            .rows
            .iter()
            .find(|r| r[0] == Value::from(component))
            .and_then(|r| r[1].as_f64())
            .unwrap()
    };
    assert!((acc_of("train") - champion.test_accuracy).abs() < 1e-9);
    assert!((acc_of("train_challenger") - challenger_acc).abs() < 1e-9);

    // Both model artifacts live in the dedup store.
    let stats = p.ml().artifacts().stats();
    assert!(stats.artifacts >= 3, "featurizer + champion + challenger");
}
