//! E7 accuracy assertions (§5.2): false-positive rates under no drift and
//! detection rates per drift shape, as hard test bounds (the table form
//! lives in `examples/detector_study.rs`).

use mltrace::metrics::{DriftConfig, DriftDetector, DriftMethod};

fn uniform(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn rate(
    detector: &DriftDetector,
    method: DriftMethod,
    transform: impl Fn(&[f64]) -> Vec<f64>,
    trials: u64,
) -> f64 {
    let mut hits = 0u64;
    for t in 0..trials {
        let window = transform(&uniform(2000, 40_000 + t * 13));
        if detector.check(method, &window).drifted {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn detector() -> DriftDetector {
    DriftDetector::fit(&uniform(20_000, 1), DriftConfig::default())
}

#[test]
fn false_positive_rates_stay_near_alpha() {
    let d = detector();
    for method in DriftMethod::ALL {
        let fp = rate(&d, method, |w| w.to_vec(), 100);
        assert!(
            fp <= 0.06,
            "{:?}: FP rate {fp} exceeds tolerance around α=0.01",
            method
        );
    }
}

#[test]
fn every_method_catches_location_drift() {
    let d = detector();
    for method in DriftMethod::ALL {
        let det = rate(&d, method, |w| w.iter().map(|x| x + 0.25).collect(), 50);
        assert!(det >= 0.95, "{method:?}: location detection {det}");
    }
}

#[test]
fn distribution_methods_catch_scale_drift_simple_stats_miss_it() {
    let d = detector();
    let squeeze = |w: &[f64]| -> Vec<f64> {
        let m = w.iter().sum::<f64>() / w.len() as f64;
        w.iter().map(|x| m + (x - m) * 0.4).collect()
    };
    for method in [DriftMethod::Ks, DriftMethod::Psi, DriftMethod::Kl] {
        let det = rate(&d, method, squeeze, 50);
        assert!(det >= 0.95, "{method:?}: scale detection {det}");
    }
    let median_det = rate(&d, DriftMethod::MedianShift, squeeze, 50);
    assert!(
        median_det <= 0.05,
        "median should be blind to a symmetric squeeze, fired {median_det}"
    );
    // Welch-t fires occasionally on a squeeze (its variance estimate
    // shifts) but far below the distribution tests.
    let mean_det = rate(&d, DriftMethod::MeanShift, squeeze, 50);
    assert!(mean_det <= 0.5, "mean test largely blind, fired {mean_det}");
}

#[test]
fn shape_only_drift_is_the_simple_stat_blind_spot() {
    // The paper's skew/kurtosis failure mode: same mean and near-same
    // median, different shape.
    let d = detector();
    let reshape = |w: &[f64]| -> Vec<f64> {
        let m = w.iter().sum::<f64>() / w.len() as f64;
        let out: Vec<f64> = w
            .iter()
            .map(|x| m + (x - m) * (x - m).abs() * 2.0)
            .collect();
        let m2 = out.iter().sum::<f64>() / out.len() as f64;
        out.iter().map(|x| x - m2 + m).collect()
    };
    for method in [DriftMethod::Ks, DriftMethod::Psi, DriftMethod::Kl] {
        let det = rate(&d, method, reshape, 50);
        assert!(det >= 0.95, "{method:?}: shape detection {det}");
    }
    let mean_det = rate(&d, DriftMethod::MeanShift, reshape, 50);
    assert!(
        mean_det <= 0.6,
        "mean test substantially blind to shape drift, fired {mean_det}"
    );
}
