//! Model-based testing of the storage layer: random operation sequences
//! are applied both to the real stores (MemoryStore, and WAL-backed with
//! a mid-sequence crash/reopen) and to a naive reference model; all
//! observable state must agree afterwards.

use mltrace::store::{
    CheckpointPolicy, ComponentRecord, ComponentRunRecord, DurabilityPolicy, IoPointerRecord,
    MemoryStore, MetricRecord, RunId, Store, WalOptions, WalStore,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// The operations the model covers.
#[derive(Debug, Clone)]
enum Op {
    RegisterComponent(u8),
    LogRun {
        component: u8,
        inputs: Vec<u8>,
        outputs: Vec<u8>,
    },
    UpsertPointer(u8),
    SetFlag(u8, bool),
    LogMetric {
        component: u8,
        metric: u8,
        value: i16,
    },
    DeleteNthRun(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5).prop_map(Op::RegisterComponent),
        (
            0u8..5,
            prop::collection::vec(0u8..10, 0..3),
            prop::collection::vec(0u8..10, 0..3)
        )
            .prop_map(|(component, inputs, outputs)| Op::LogRun {
                component,
                inputs,
                outputs
            }),
        (0u8..10).prop_map(Op::UpsertPointer),
        (0u8..10, any::<bool>()).prop_map(|(io, f)| Op::SetFlag(io, f)),
        (0u8..5, 0u8..3, any::<i16>()).prop_map(|(component, metric, value)| Op::LogMetric {
            component,
            metric,
            value
        }),
        (0u8..20).prop_map(Op::DeleteNthRun),
    ]
}

/// Naive reference model of the store.
#[derive(Default)]
struct Model {
    components: BTreeSet<String>,
    /// (id, component, inputs, outputs) in log order.
    runs: Vec<(u64, String, Vec<String>, Vec<String>)>,
    deleted: BTreeSet<u64>,
    pointers: BTreeMap<String, bool>, // name → flag
    metrics: Vec<(String, String, f64)>,
}

impl Model {
    fn live_runs(&self) -> Vec<&(u64, String, Vec<String>, Vec<String>)> {
        self.runs
            .iter()
            .filter(|r| !self.deleted.contains(&r.0))
            .collect()
    }

    fn producers_of(&self, io: &str) -> Vec<u64> {
        self.live_runs()
            .iter()
            .filter(|(_, _, _, outs)| outs.iter().any(|o| o == io))
            .map(|r| r.0)
            .collect()
    }

    fn consumers_of(&self, io: &str) -> Vec<u64> {
        self.live_runs()
            .iter()
            .filter(|(_, _, ins, _)| ins.iter().any(|i| i == io))
            .map(|r| r.0)
            .collect()
    }
}

fn apply(store: &dyn Store, model: &mut Model, op: &Op, tick: u64) {
    match op {
        Op::RegisterComponent(c) => {
            let name = format!("comp-{c}");
            store
                .register_component(ComponentRecord::named(&name))
                .unwrap();
            model.components.insert(name);
        }
        Op::LogRun {
            component,
            inputs,
            outputs,
        } => {
            let component = format!("comp-{component}");
            let inputs: Vec<String> = inputs.iter().map(|i| format!("io-{i}")).collect();
            let outputs: Vec<String> = outputs.iter().map(|o| format!("io-{o}")).collect();
            let id = store
                .log_run(ComponentRunRecord {
                    component: component.clone(),
                    start_ms: tick,
                    end_ms: tick + 1,
                    inputs: inputs.clone(),
                    outputs: outputs.clone(),
                    ..Default::default()
                })
                .unwrap();
            model.runs.push((id.0, component, inputs, outputs));
        }
        Op::UpsertPointer(io) => {
            let name = format!("io-{io}");
            store
                .upsert_io_pointer(IoPointerRecord::new(&name, tick))
                .unwrap();
            model.pointers.entry(name).or_insert(false);
        }
        Op::SetFlag(io, flag) => {
            let name = format!("io-{io}");
            let result = store.set_flag(&name, *flag);
            match model.pointers.get_mut(&name) {
                Some(state) => {
                    assert!(result.is_ok(), "flag on known pointer");
                    *state = *flag;
                }
                None => assert!(result.is_err(), "flag on unknown pointer must error"),
            }
        }
        Op::LogMetric {
            component,
            metric,
            value,
        } => {
            let component = format!("comp-{component}");
            let metric = format!("metric-{metric}");
            store
                .log_metric(MetricRecord {
                    component: component.clone(),
                    run_id: None,
                    name: metric.clone(),
                    value: f64::from(*value),
                    ts_ms: tick,
                })
                .unwrap();
            model.metrics.push((component, metric, f64::from(*value)));
        }
        Op::DeleteNthRun(n) => {
            let live: Vec<u64> = model
                .runs
                .iter()
                .filter(|r| !model.deleted.contains(&r.0))
                .map(|r| r.0)
                .collect();
            if live.is_empty() {
                return;
            }
            let victim = live[*n as usize % live.len()];
            let removed = store.delete_runs(&[RunId(victim)]).unwrap();
            assert_eq!(removed, 1);
            model.deleted.insert(victim);
        }
    }
}

fn check_agreement(store: &dyn Store, model: &Model) {
    // Run counts and per-run contents.
    let live = model.live_runs();
    assert_eq!(store.stats().unwrap().runs, live.len());
    for (id, component, inputs, outputs) in &live {
        let run = store.run(RunId(*id)).unwrap().expect("live run present");
        assert_eq!(&run.component, component);
        assert_eq!(&run.inputs, inputs);
        assert_eq!(&run.outputs, outputs);
    }
    for id in &model.deleted {
        assert!(store.run(RunId(*id)).unwrap().is_none());
    }
    // Producer/consumer indexes.
    for io in 0..10u8 {
        let name = format!("io-{io}");
        let got: Vec<u64> = store
            .producers_of(&name)
            .unwrap()
            .iter()
            .map(|r| r.0)
            .collect();
        assert_eq!(got, model.producers_of(&name), "producers of {name}");
        let got: Vec<u64> = store
            .consumers_of(&name)
            .unwrap()
            .iter()
            .map(|r| r.0)
            .collect();
        assert_eq!(got, model.consumers_of(&name), "consumers of {name}");
    }
    // Flags.
    let expected_flagged: Vec<String> = model
        .pointers
        .iter()
        .filter(|(_, &f)| f)
        .map(|(n, _)| n.clone())
        .collect();
    assert_eq!(store.flagged().unwrap(), expected_flagged);
    // Metrics per (component, name) series.
    for c in 0..5u8 {
        let component = format!("comp-{c}");
        for m in 0..3u8 {
            let metric = format!("metric-{m}");
            let got: Vec<f64> = store
                .metrics(&component, &metric)
                .unwrap()
                .iter()
                .map(|p| p.value)
                .collect();
            let expected: Vec<f64> = model
                .metrics
                .iter()
                .filter(|(mc, mm, _)| mc == &component && mm == &metric)
                .map(|(_, _, v)| *v)
                .collect();
            assert_eq!(got, expected, "{component}/{metric}");
        }
    }
    // Per-component run lists are ascending and complete.
    for c in 0..5u8 {
        let component = format!("comp-{c}");
        let got: Vec<u64> = store
            .runs_for_component(&component)
            .unwrap()
            .iter()
            .map(|r| r.0)
            .collect();
        let expected: Vec<u64> = live
            .iter()
            .filter(|(_, rc, _, _)| rc == &component)
            .map(|r| r.0)
            .collect();
        assert_eq!(got, expected, "runs of {component}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MemoryStore agrees with the reference model under arbitrary op
    /// sequences.
    #[test]
    fn memory_store_matches_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let store = MemoryStore::new();
        let mut model = Model::default();
        for (tick, op) in ops.iter().enumerate() {
            apply(&store, &mut model, op, tick as u64);
        }
        check_agreement(&store, &model);
    }

    /// The WAL store agrees too — including across a crash/reopen placed
    /// mid-sequence (durability of every op class), under every durability
    /// policy: `sync()` must remain a strict barrier whether events were
    /// flushed eagerly or group-committed.
    #[test]
    fn wal_store_survives_reopen_mid_sequence(
        ops in prop::collection::vec(arb_op(), 1..40),
        cut in 0usize..40,
        policy in prop::sample::select(vec![
            DurabilityPolicy::EveryEvent,
            DurabilityPolicy::Batch(4),
            DurabilityPolicy::Interval(10),
            DurabilityPolicy::OnSync,
        ]),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("model.wal");
        let mut model = Model::default();
        let cut = cut.min(ops.len());
        {
            let store = WalStore::open_with(&path, policy).unwrap();
            for (tick, op) in ops[..cut].iter().enumerate() {
                apply(&store, &mut model, op, tick as u64);
            }
            store.sync().unwrap();
            // Drop without any graceful shutdown beyond sync.
        }
        let store = WalStore::open_with(&path, policy).unwrap();
        for (tick, op) in ops[cut..].iter().enumerate() {
            apply(&store, &mut model, op, (cut + tick) as u64);
        }
        store.sync().unwrap();
        check_agreement(&store, &model);
    }

    /// Checkpointed recovery is observationally equal to full-log replay:
    /// a store that snapshots mid-sequence (optionally compacting the
    /// superseded segments, optionally suffering a torn tail afterwards)
    /// must agree with a store that replays every event from the original
    /// log — including after deletions, which a naive "fold then replay"
    /// scheme gets wrong if id watermarks are lost with the folded state.
    #[test]
    fn checkpointed_replay_matches_full_replay(
        ops in prop::collection::vec(arb_op(), 1..40),
        cut in 0usize..40,
        compact in any::<bool>(),
        torn in any::<bool>(),
        policy in prop::sample::select(vec![
            DurabilityPolicy::EveryEvent,
            DurabilityPolicy::Batch(4),
            DurabilityPolicy::OnSync,
        ]),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let ck_path = dir.path().join("ck.wal");
        let full_path = dir.path().join("full.wal");
        // Explicit checkpoints only: the automatic thresholds must not fire
        // and desynchronise the two stores.
        let options = WalOptions {
            durability: policy,
            checkpoint: CheckpointPolicy::disabled(),
            ..Default::default()
        };
        let cut = cut.min(ops.len());
        let mut ck_model = Model::default();
        let mut full_model = Model::default();
        {
            let ck = WalStore::open_with_options(&ck_path, options).unwrap();
            let full = WalStore::open_with_options(&full_path, options).unwrap();
            for (tick, op) in ops[..cut].iter().enumerate() {
                apply(&ck, &mut ck_model, op, tick as u64);
                apply(&full, &mut full_model, op, tick as u64);
            }
            // Snapshot + seal on one store only; the other keeps its full log.
            ck.checkpoint().unwrap();
            if compact {
                ck.compact_segments().unwrap();
            }
            for (tick, op) in ops[cut..].iter().enumerate() {
                apply(&ck, &mut ck_model, op, (cut + tick) as u64);
                apply(&full, &mut full_model, op, (cut + tick) as u64);
            }
            ck.sync().unwrap();
            full.sync().unwrap();
        }
        if torn {
            // Simulate a crash mid-append: a partial record with no newline
            // at the end of each active log. Recovery must truncate it.
            use std::io::Write as _;
            for path in [&ck_path, &full_path] {
                let mut f = std::fs::OpenOptions::new().append(true).open(path).unwrap();
                f.write_all(b"{\"event\":\"Run\",\"rec\":{").unwrap();
            }
        }
        let ck = WalStore::open_with_options(&ck_path, options).unwrap();
        let full = WalStore::open_with_options(&full_path, options).unwrap();
        if torn {
            prop_assert!(ck.recovered(), "torn tail on the checkpointed store");
            prop_assert!(full.recovered(), "torn tail on the full-log store");
        }
        check_agreement(&ck, &ck_model);
        check_agreement(&full, &full_model);
        // Fresh writes after recovery must allocate identical run ids on
        // both stores: the id watermark travels in the snapshot header.
        let a = ck
            .log_run(ComponentRunRecord {
                component: "comp-0".into(),
                ..Default::default()
            })
            .unwrap();
        let b = full
            .log_run(ComponentRunRecord {
                component: "comp-0".into(),
                ..Default::default()
            })
            .unwrap();
        prop_assert_eq!(a, b, "post-recovery id watermarks diverged");
    }
}
