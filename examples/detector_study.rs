//! E7 — the §5.2 accuracy claims, measured: false-positive rates of each
//! drift method under no drift (the "too many false positive alerts"
//! claim for KS at scale) and detection rates under location-, scale- and
//! shape-only drift (the "mean and median ... fail when skew and kurtosis
//! changes" claim).
//!
//! Run with: `cargo run --release --example detector_study`

use mltrace::metrics::{DriftConfig, DriftDetector, DriftMethod};

/// Deterministic pseudo-uniform in [0,1).
fn uniform(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

/// Approximate standard normal via sum of 12 uniforms.
fn normal(n: usize, seed: u64) -> Vec<f64> {
    let u = uniform(n * 12, seed);
    u.chunks(12).map(|c| c.iter().sum::<f64>() - 6.0).collect()
}

type Transform = fn(&[f64]) -> Vec<f64>;

fn identity(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
fn location(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| x + 0.25).collect()
}
fn scale(xs: &[f64]) -> Vec<f64> {
    // Same mean, 40% of the spread.
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| m + (x - m) * 0.4).collect()
}
fn shape(xs: &[f64]) -> Vec<f64> {
    // Same-ish location, changed skew/kurtosis: reflect-square transform.
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    let out: Vec<f64> = xs.iter().map(|x| m + (x - m) * (x - m).abs()).collect();
    let m2 = out.iter().sum::<f64>() / out.len() as f64;
    out.iter().map(|x| x - m2 + m).collect()
}

fn rate(
    detector: &DriftDetector,
    method: DriftMethod,
    gen: fn(usize, u64) -> Vec<f64>,
    transform: Transform,
    n: usize,
    trials: u64,
) -> f64 {
    let mut hits = 0u64;
    for t in 0..trials {
        let window = transform(&gen(n, 10_000 + t * 7));
        if detector.check(method, &window).drifted {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn study(dist_name: &str, gen: fn(usize, u64) -> Vec<f64>) {
    let n = 2_000;
    let trials = 200;
    let reference = gen(20_000, 1);
    let detector = DriftDetector::fit(&reference, DriftConfig::default());

    println!("\n== {dist_name} reference, window n = {n}, {trials} trials ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "method", "FP(none)", "det(loc)", "det(scale)", "det(shape)"
    );
    let cases: [(&str, Transform); 4] = [
        ("none", identity),
        ("loc", location),
        ("scale", scale),
        ("shape", shape),
    ];
    for method in DriftMethod::ALL {
        let mut row = format!("{:<14}", method.name());
        for (_, transform) in cases {
            let r = rate(&detector, method, gen, transform, n, trials);
            row.push_str(&format!(" {:>9.1}%", r * 100.0));
        }
        println!("{row}");
    }
}

fn main() {
    println!("drift-method accuracy study (paper §5.2)");
    println!("FP(none): alerts under no drift — lower is better");
    println!("det(...): detection under location/scale/shape drift — higher is better");
    study("uniform", uniform);
    study("normal", normal);
    println!(
        "\nreading: mean/median are quiet under no-drift AND under scale/shape \
         drift\n(the paper's blind spot); KS detects everything but pays the \
         highest compute\ncost (see `cargo bench --bench drift_metrics`)."
    );
}
