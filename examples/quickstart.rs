//! Quickstart: wrap an existing pipeline step in mltrace (the Figure 3
//! integration shape) and ask post-hoc questions about it.
//!
//! Run with: `cargo run --example quickstart`

use mltrace::core::library::{NoMissingTrigger, OutlierTrigger};
use mltrace::core::{Commands, ComponentDef, Mltrace, RunSpec};
use mltrace::store::Value;

fn main() {
    // 1. Create an mltrace instance (use `Mltrace::open(path)` for a
    //    durable, WAL-backed log).
    let ml = Mltrace::in_memory();

    // 2. Define a component once — outside the application, as the paper
    //    recommends — with checks to run before and after every run.
    ml.register(
        ComponentDef::builder("preprocessing")
            .description("cleans raw feature vectors")
            .owner("ml-platform")
            .before_run(NoMissingTrigger {
                var: "features".into(),
                max_null_fraction: 0.05,
            })
            .after_run(OutlierTrigger {
                var: "scaled".into(),
                max_abs_z: 5.0,
            })
            .build(),
    )
    .expect("register");

    // 3. Wrap the existing step. Inputs/outputs are just identifiers —
    //    mltrace infers run dependencies from them at runtime.
    let raw: Vec<f64> = (0..100).map(|i| (i % 17) as f64).collect();
    let report = ml
        .run(
            "preprocessing",
            RunSpec::new()
                .input("raw_features.csv")
                .output("clean_features.csv")
                .capture(
                    "features",
                    Value::List(raw.iter().map(|&v| Value::Float(v)).collect()),
                )
                .code("fn preprocess(raw) { scale(raw) }"),
            |ctx| {
                // ... the user's existing code, unchanged ...
                let mean = raw.iter().sum::<f64>() / raw.len() as f64;
                let scaled: Vec<f64> = raw.iter().map(|v| v - mean).collect();
                ctx.capture(
                    "scaled",
                    Value::List(scaled.iter().map(|&v| Value::Float(v)).collect()),
                );
                ctx.log_metric("rows", scaled.len() as f64);
                Ok(scaled)
            },
        )
        .expect("run succeeds");
    println!(
        "ran preprocessing as {} [{:?}]",
        report.run_id, report.status
    );

    // A downstream step that consumes the output — its dependency on the
    // preprocessing run is inferred, never declared.
    ml.run(
        "train",
        RunSpec::new()
            .input("clean_features.csv")
            .output("model.json"),
        |ctx| {
            ctx.log_metric("accuracy", 0.93);
            Ok(())
        },
    )
    .expect("train");

    // 4. Ask questions.
    let mut cmds = Commands::new(&ml);
    println!("\n$ trace model.json");
    println!("{}", cmds.trace("model.json").unwrap().render());
    println!("$ history preprocessing");
    println!("{}", cmds.history("preprocessing", 5).unwrap().render());
    println!("$ inspect 1");
    let run = cmds.inspect(1).unwrap();
    println!("{}", cmds.render_inspect(&run));
}
