//! E7/E8: the §5.2 monitoring trade-offs, measured.
//!
//! Part 1 — detector comparison: cheap statistics (mean/median) vs
//! distribution tests (KS/PSI/KL) across drift shapes, including the
//! paper's claim that mean/median "can fail when skew and kurtosis
//! changes".
//!
//! Part 2 — alert fatigue: per-feature threshold paging vs SLA-gated
//! paging over the same stream.
//!
//! Run with: `cargo run --example drift_monitoring`

use mltrace::metrics::{
    AlertManager, AlertRule, Comparator, DriftConfig, DriftDetector, DriftMethod, Severity, Sla,
};

fn uniform(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn main() {
    detector_comparison();
    alert_fatigue();
}

fn detector_comparison() {
    println!("=== drift detectors vs drift shapes (n = 5000/window) ===\n");
    let reference = uniform(5000, 1);
    let detector = DriftDetector::fit(&reference, DriftConfig::default());

    let shapes: Vec<(&str, Vec<f64>)> = vec![
        ("none        ", uniform(5000, 999)),
        (
            "location+0.3",
            uniform(5000, 999).iter().map(|x| x + 0.3).collect(),
        ),
        (
            "scale ×0.3  ",
            uniform(5000, 999)
                .iter()
                .map(|x| 0.5 + (x - 0.5) * 0.3)
                .collect(),
        ),
        (
            "skew (x²)   ",
            uniform(5000, 999).iter().map(|x| x * x).collect(),
        ),
    ];

    print!("{:<14}", "drift shape");
    for m in DriftMethod::ALL {
        print!("{:>14}", m.name());
    }
    println!();
    for (name, window) in &shapes {
        print!("{name:<14}");
        for m in DriftMethod::ALL {
            let f = detector.check(m, window);
            print!(
                "{:>12}{}",
                format!("{:.3}", f.score),
                if f.drifted { "!" } else { " " }
            );
        }
        println!();
    }
    println!("\n('!' = threshold crossed; note mean/median staying silent on");
    println!(" the scale-only change — the paper's §5.2 failure mode.)\n");
}

fn alert_fatigue() {
    println!("=== alert fatigue: per-feature vs SLA-gated (§4.1) ===\n");
    // 100 features wander ±; accuracy has two genuine incidents.
    let mut per_feature = AlertManager::new();
    for f in 0..100 {
        per_feature.add_rule(AlertRule {
            id: format!("f{f}"),
            metric: format!("feature_{f}"),
            comparator: Comparator::Lte,
            threshold: 0.75,
            severity: Severity::Page,
            cooldown_ms: 0,
        });
    }
    let sla = Sla::mean_at_least("accuracy-sla", "accuracy", 0.8, 3);
    let mut gated = AlertManager::new();

    let mut noise = uniform(100 * 200, 9).into_iter();
    let mut accuracy_series = Vec::new();
    for tick in 0..200u64 {
        for f in 0..100 {
            let wander = 0.5 + 0.4 * noise.next().unwrap();
            per_feature.observe(&format!("feature_{f}"), wander, tick);
        }
        let acc = if (60..65).contains(&tick) || (140..145).contains(&tick) {
            0.55
        } else {
            0.92
        };
        accuracy_series.push(acc);
        gated.observe_sla(&sla, &accuracy_series, tick);
    }
    let noisy = per_feature.stats();
    let clean = gated.stats();
    println!("200 ticks, 100 features, 2 real incidents:");
    println!(
        "  per-feature paging : {:>6} pages  ({:.1} per tick)",
        noisy.pages,
        noisy.pages as f64 / 200.0
    );
    println!("  SLA-gated paging   : {:>6} pages", clean.pages);
    println!(
        "  noise ratio        : {:>6.0}x",
        noisy.pages as f64 / clean.pages.max(1) as f64
    );
}
