//! A narrated debugging session reproducing all four of the paper's
//! observability query patterns (§4.2, Examples 4.1–4.4) against scripted
//! incidents.
//!
//! Run with: `cargo run --example debugging_session`

use mltrace::core::Commands;
use mltrace::store::{Value, MS_PER_DAY};
use mltrace::taxi::{DriftProfile, Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn main() {
    example_4_1();
    example_4_2();
    example_4_3();
    example_4_4();
}

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

/// "Why is there a large, sudden drop in accuracy?"
fn example_4_1() {
    banner("Example 4.1: sudden accuracy drop → run-level query");
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(2000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    let report = p
        .ingest_and_serve(
            400,
            Incident::NullSpike { fraction: 0.45 },
            ServeOptions::default(),
        )
        .unwrap();
    println!("inference batch accuracy: {:.3}", report.accuracy);

    let mut cmds = Commands::new(p.ml());
    let trace = cmds.trace(&report.outputs[0]).unwrap();
    println!("$ trace {}\n{}", report.outputs[0], trace.render());
    trace.visit(&mut |node| {
        if let Ok(run) = cmds.inspect(node.run_id) {
            for t in run.triggers.iter().filter(|t| !t.passed) {
                println!(
                    "finding: {}:{} failed — {} {:?}",
                    run.component, t.trigger, t.detail, t.values
                );
            }
        }
    });
}

/// "When should I retrain my model?"
fn example_4_2() {
    banner("Example 4.2: when to retrain → component history query");
    let mut p = TaxiPipeline::new(TaxiConfig {
        drift: DriftProfile {
            distance_shift_per_trip: 8e-5,
            tip_shift_per_trip: 1e-4,
            ..Default::default()
        },
        ..Default::default()
    });
    let df = p.ingest(2000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    for week in 0..8 {
        let r = p
            .ingest_and_serve(800, Incident::None, ServeOptions::default())
            .unwrap();
        println!("week {week}: accuracy {:.3}", r.accuracy);
        p.clock().advance(7 * MS_PER_DAY);
    }
    let drift: Vec<f64> = p
        .ml()
        .store()
        .metrics("inference", "drift_ks:predictions")
        .unwrap()
        .iter()
        .map(|m| m.value)
        .collect();
    println!("prediction drift (KS) over the weeks: {drift:.2?}");
    let fresh = p.ingest(2000, Incident::None).unwrap();
    p.train(&fresh, true).unwrap();
    let after = p
        .ingest_and_serve(800, Incident::None, ServeOptions::default())
        .unwrap();
    println!("after retraining: accuracy {:.3}", after.accuracy);
}

/// "Why is the accuracy much lower than expected right after deployment?"
fn example_4_3() {
    banner("Example 4.3: post-deploy gap → cross-component query");
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(2000, Incident::None).unwrap();
    let train = p.train(&df, true).unwrap();
    let serve_df = p.ingest(600, Incident::None).unwrap();
    let deployed = p
        .serve(
            &serve_df,
            ServeOptions {
                incident: Incident::ServeSkew { scale: 500.0 },
                per_trip_outputs: false,
            },
        )
        .unwrap();
    println!(
        "offline test accuracy {:.3} vs deployed accuracy {:.3}",
        train.test_accuracy, deployed.accuracy
    );
    let online = p
        .ml()
        .store()
        .latest_run("featurize_online")
        .unwrap()
        .unwrap();
    for t in online.triggers.iter().filter(|t| !t.passed) {
        println!(
            "finding: featurize_online:{} — {} (gap {:?})",
            t.trigger,
            t.detail,
            t.values.get("gap").and_then(Value::as_f64)
        );
    }
}

/// "Why are these clients complaining about predictions from the last
/// several months?"
fn example_4_4() {
    banner("Example 4.4: complaining clients → slice lineage query");
    let mut p = TaxiPipeline::new(TaxiConfig {
        drift: DriftProfile {
            distance_shift_per_trip: 6e-5,
            ..Default::default()
        },
        ..Default::default()
    });
    let df = p.ingest(2000, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    // Six weeks of weekly model retrains — but the featurizer is never
    // refit.
    for _ in 0..6 {
        p.clock().advance(7 * MS_PER_DAY);
        let df = p.ingest(1000, Incident::None).unwrap();
        p.train(&df, false).unwrap();
    }
    let served = p
        .ingest_and_serve(
            25,
            Incident::None,
            ServeOptions {
                incident: Incident::None,
                per_trip_outputs: true,
            },
        )
        .unwrap();
    let mut cmds = Commands::new(p.ml());
    for out in &served.outputs[..8] {
        cmds.flag(out).unwrap();
    }
    let review = cmds.review_flagged().unwrap();
    println!("$ review_flagged\n{}", review.render());
    let stale = cmds.stale(None).unwrap();
    println!("$ stale\n{}", cmds.render_stale(&stale));
}
