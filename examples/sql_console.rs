//! An interactive-style SQL console over the observability log (§4.2's
//! "query the logs and metadata via SQL"), run against a freshly
//! simulated pipeline. Pass a query as the first argument, or get the
//! canned tour.
//!
//! Run with:
//!   cargo run --example sql_console
//!   cargo run --example sql_console -- "SELECT * FROM components"

use mltrace::query::execute;
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn main() {
    // Simulate some pipeline history to query.
    let mut p = TaxiPipeline::new(TaxiConfig::default());
    let df = p.ingest(1500, Incident::None).unwrap();
    p.train(&df, true).unwrap();
    for i in 0..4 {
        let incident = if i == 2 {
            Incident::NullSpike { fraction: 0.5 }
        } else {
            Incident::None
        };
        p.ingest_and_serve(300, incident, ServeOptions::default())
            .unwrap();
        p.monitor().unwrap();
    }
    let store = p.ml().store();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        [
            "SELECT name, owner, description FROM components ORDER BY name",
            "SELECT component, count(*) AS runs, avg(duration_ms) AS avg_ms \
             FROM component_runs GROUP BY component ORDER BY runs DESC",
            "SELECT id, component, status, trigger_failures FROM component_runs \
             WHERE status != 'success' ORDER BY id",
            "SELECT name, count(*) AS points, min(value) AS lo, max(value) AS hi \
             FROM metrics GROUP BY name ORDER BY name",
            "SELECT name, ptype, flag FROM io_pointers WHERE artifact IS NOT NULL",
            "SELECT component, count(*) AS n FROM component_runs \
             WHERE start_ms > 0 GROUP BY component HAVING count(*) >= 4 ORDER BY n DESC",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };

    for q in queries {
        println!("sql> {q}");
        match execute(store.as_ref(), &q) {
            Ok(result) => println!("{}", result.render()),
            Err(e) => println!("error: {e}\n"),
        }
    }
}
