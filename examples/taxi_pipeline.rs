//! The paper's §5 demo end to end: an eight-component pipeline predicting
//! whether a NYC taxi rider tips at least 20% of the fare, fully wrapped
//! in mltrace — Figure 1 instantiated.
//!
//! Run with: `cargo run --example taxi_pipeline`

use mltrace::core::Commands;
use mltrace::query::execute;
use mltrace::taxi::{Incident, ServeOptions, TaxiConfig, TaxiPipeline};

fn main() {
    let mut pipeline = TaxiPipeline::new(TaxiConfig::default());

    // Train: ingest → clean → featurize → split → train.
    println!("== training cycle ==");
    let df = pipeline.ingest(3000, Incident::None).expect("ingest");
    let train = pipeline.train(&df, true).expect("train");
    println!(
        "model trained: train acc {:.3}, test acc {:.3}, auc {:.3} ({})",
        train.train_accuracy, train.test_accuracy, train.auc, train.run_id
    );

    // Serve a week of batches, one with a data-quality incident.
    println!("\n== serving ==");
    for day in 0..7 {
        let incident = if day == 4 {
            Incident::NullSpike { fraction: 0.4 }
        } else {
            Incident::None
        };
        let report = pipeline
            .ingest_and_serve(400, incident, ServeOptions::default())
            .expect("serve");
        println!(
            "day {day}: batch {} accuracy {:.3}{}",
            report.batch,
            report.accuracy,
            if day == 4 {
                "   ← NULL-spike incident"
            } else {
                ""
            }
        );
        let monitor = pipeline.monitor().expect("monitor");
        if monitor.sla_violated {
            println!(
                "        SLA VIOLATED (window mean {:?})",
                monitor.observed_accuracy
            );
        }
    }

    // Observability: what actually happened?
    let ml = pipeline.ml();
    let mut cmds = Commands::new(ml);

    println!("\n== pipeline state ==");
    let stats = ml.store().stats().expect("stats");
    println!(
        "{} components, {} runs, {} pointers, {} metric points",
        stats.components, stats.runs, stats.io_pointers, stats.metric_points
    );
    let artifacts = ml.artifacts().stats();
    println!(
        "artifacts: {} stored, dedup {:.2}x ({} → {} bytes)",
        artifacts.artifacts,
        artifacts.dedup_ratio(),
        artifacts.logical_bytes,
        artifacts.stored_bytes
    );

    println!("\n$ trace predictions-4.csv      # the incident batch");
    println!("{}", cmds.trace("predictions-4.csv").unwrap().render());

    println!("$ sql: failed runs");
    let result = execute(
        ml.store().as_ref(),
        "SELECT id, component, status, trigger_failures FROM component_runs \
         WHERE status != 'success' ORDER BY id",
    )
    .unwrap();
    println!("{}", result.render());

    println!("$ sql: accuracy history");
    let result = execute(
        ml.store().as_ref(),
        "SELECT ts_ms, value FROM metrics WHERE name = 'accuracy' ORDER BY ts_ms",
    )
    .unwrap();
    println!("{}", result.render());

    // Observing the observer: what did the instrumentation itself cost?
    println!("$ telemetry");
    println!("{}", ml.telemetry().snapshot().render_human());
}
